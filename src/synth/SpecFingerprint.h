//===- SpecFingerprint.h - Content fingerprints for caching ------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stable content fingerprints for the persistent synthesis cache: a
/// goal's semantic spec is fingerprinted by symbolically evaluating its
/// precondition and postcondition into Z3 terms and hashing their
/// printed forms, so a cache entry is invalidated exactly when the
/// instruction's SMT semantics change — not merely when its name does.
/// SynthesisOptions are fingerprinted over every field that can change
/// the synthesized pattern set; time budgets and solver timeouts are
/// deliberately excluded because only *complete* results are ever
/// cached, and a complete result is independent of them.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SYNTH_SPECFINGERPRINT_H
#define SELGEN_SYNTH_SPECFINGERPRINT_H

#include "synth/Synthesizer.h"

#include <string>

namespace selgen {

/// Version tag of the synthesis encoder, mixed into every cache key.
/// Bump whenever synth/Encoding, synth/Cegis, or the Synthesizer search
/// loop change in a way that can alter synthesized pattern sets.
extern const char *const EncoderVersionTag;

/// Hex fingerprint of \p Spec's SMT semantics at data width \p Width:
/// interface sorts, argument roles, precondition, result expressions,
/// and memory range conditions.
std::string instrSpecFingerprint(SmtContext &Smt, const InstrSpec &Spec,
                                 unsigned Width);

/// Hex fingerprint of the result-relevant SynthesisOptions fields.
std::string synthesisOptionsFingerprint(const SynthesisOptions &Options);

/// The full cache key for synthesizing \p Spec under \p Options:
/// goal name + spec fingerprint + width + options fingerprint +
/// encoder version, hashed to one hex string.
std::string synthesisCacheKey(SmtContext &Smt, const InstrSpec &Spec,
                              const SynthesisOptions &Options);

} // namespace selgen

#endif // SELGEN_SYNTH_SPECFINGERPRINT_H
