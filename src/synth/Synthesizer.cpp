//===- Synthesizer.cpp - Iterative CEGIS driver ------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/Synthesizer.h"

#include "support/Multicombination.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <map>
#include <set>

using namespace selgen;

const char *selgen::incompleteCauseName(IncompleteCause Cause) {
  switch (Cause) {
  case IncompleteCause::None:
    return "none";
  case IncompleteCause::Budget:
    return "budget";
  case IncompleteCause::Timeout:
    return "timeout";
  case IncompleteCause::Deadline:
    return "deadline";
  case IncompleteCause::Rlimit:
    return "rlimit";
  case IncompleteCause::Exception:
    return "exception";
  }
  return "none";
}

IncompleteCause selgen::incompleteCauseFromFailure(SmtFailure Failure) {
  switch (Failure) {
  case SmtFailure::None:
    return IncompleteCause::None;
  case SmtFailure::Timeout:
    return IncompleteCause::Timeout;
  case SmtFailure::Rlimit:
    return IncompleteCause::Rlimit;
  case SmtFailure::Exception:
    return IncompleteCause::Exception;
  case SmtFailure::Deadline:
    return IncompleteCause::Deadline;
  }
  return IncompleteCause::None;
}

SynthesisOptions::SynthesisOptions() : Alphabet(allTemplateOpcodes()) {}

Synthesizer::Synthesizer(SmtContext &Smt, SynthesisOptions Options)
    : Smt(Smt), Options(std::move(Options)) {}

std::vector<Opcode> Synthesizer::requiredMemoryOps(const InstrSpec &Goal) {
  if (!Goal.accessesMemory())
    return {};

  // Locate the memory argument and the memory result.
  int MemoryArg = -1, MemoryResult = -1;
  for (unsigned I = 0; I < Goal.argSorts().size(); ++I)
    if (Goal.argSorts()[I].isMemory())
      MemoryArg = static_cast<int>(I);
  for (unsigned I = 0; I < Goal.resultSorts().size(); ++I)
    if (Goal.resultSorts()[I].isMemory())
      MemoryResult = static_cast<int>(I);
  if (MemoryArg < 0 || MemoryResult < 0)
    return {};

  // Symbolic arguments and the goal's results over them.
  std::vector<z3::expr> Args;
  std::vector<unsigned> MemoryArgIndices;
  for (unsigned I = 0; I < Goal.argSorts().size(); ++I) {
    const Sort &S = Goal.argSorts()[I];
    if (S.isMemory()) {
      MemoryArgIndices.push_back(I);
      Args.push_back(Smt.ctx().bv_val(0, 1)); // Placeholder.
    } else {
      Args.push_back(
          Smt.bvConst("memq_a" + std::to_string(I), S.Width));
    }
  }
  MemoryModel Memory(Smt,
                     Goal.validPointers(Smt, Options.Width, Args));
  for (unsigned I : MemoryArgIndices)
    Args[I] =
        Smt.bvConst("memq_a" + std::to_string(I), Memory.mvalueWidth());

  SemanticsContext Context{Smt, Options.Width, &Memory, {}};
  std::vector<z3::expr> Results = Goal.computeResults(Context, Args, {});

  z3::expr Difference = Results[MemoryResult] ^ Args[MemoryArg];

  // "By checking whether va[m] and vr[m'] differ in memory contents or
  // in an access flag, we can even find out whether g requires a load,
  // store, or both operations." (Section 5.4)
  auto differsUnder = [&](const BitValue &Mask) {
    SmtSolver Solver(Smt);
    SolverPolicy Policy;
    Policy.TimeoutMs = Options.QueryTimeoutMs;
    Policy.RlimitPerQuery = Options.QueryRlimit;
    Policy.RetryScale = Options.QueryRetryScale;
    Solver.applyPolicy(Policy);
    Solver.add((Difference & Smt.literal(Mask)) !=
               Smt.ctx().bv_val(0, Memory.mvalueWidth()));
    return Solver.check() == SmtResult::Sat;
  };

  std::vector<Opcode> Required;
  if (differsUnder(Memory.flagsMask()))
    Required.push_back(Opcode::Load);
  if (differsUnder(Memory.contentsMask()))
    Required.push_back(Opcode::Store);
  return Required;
}

bool Synthesizer::shouldSkipMultiset(const InstrSpec &Goal,
                                     const std::vector<Opcode> &Multiset,
                                     unsigned Width) {
  // Gather the sorts in play. Comparing by Sort works because all
  // template operations use Value(Width), Bool, and Memory only.
  auto sortsOf = [Width](Opcode Op) {
    return std::make_pair(opcodeArgSorts(Op, Width),
                          opcodeResultSorts(Op, Width));
  };

  // Criterion 1: more single-result producers of a sort than there are
  // consumers of that sort means at least one result necessarily
  // dangles, and the pattern would already have been found with a
  // smaller multiset.
  {
    std::map<std::string, unsigned> SingleProducers, Consumers;
    for (Opcode Op : Multiset) {
      auto [ArgSorts, ResultSorts] = sortsOf(Op);
      if (ResultSorts.size() == 1)
        ++SingleProducers[ResultSorts[0].str()];
      for (const Sort &S : ArgSorts)
        ++Consumers[S.str()];
    }
    for (const Sort &S : Goal.resultSorts())
      ++Consumers[S.str()];
    for (const auto &[SortName, Count] : SingleProducers)
      if (Count > Consumers[SortName])
        return true;
  }

  // Criterion 2: every sort some operation consumes needs a source: a
  // pattern argument of that sort, or an operation producing it
  // without consuming it.
  {
    std::set<std::string> Needed, Available;
    for (Opcode Op : Multiset) {
      auto [ArgSorts, ResultSorts] = sortsOf(Op);
      std::set<std::string> OpConsumes;
      for (const Sort &S : ArgSorts) {
        Needed.insert(S.str());
        OpConsumes.insert(S.str());
      }
      for (const Sort &S : ResultSorts)
        if (!OpConsumes.count(S.str()))
          Available.insert(S.str());
    }
    for (const Sort &S : Goal.argSorts())
      Available.insert(S.str());
    for (const std::string &SortName : Needed)
      if (!Available.count(SortName))
        return true;
  }

  // Goal-result variant of criterion 2: every goal result sort must be
  // producible (by an argument or by some operation's result).
  {
    std::set<std::string> Producible;
    for (const Sort &S : Goal.argSorts())
      Producible.insert(S.str());
    for (Opcode Op : Multiset)
      for (const Sort &S : opcodeResultSorts(Op, Width))
        Producible.insert(S.str());
    for (const Sort &S : Goal.resultSorts())
      if (!Producible.count(S.str()))
        return true;
  }

  return false;
}

namespace {

/// Appends a CEGIS outcome to a result, deduplicating patterns.
void absorbOutcome(GoalSynthesisResult &Result,
                   std::set<std::string> &Fingerprints,
                   CegisOutcome &&Outcome, unsigned MaxPatterns) {
  Result.SynthesisQueries += Outcome.SynthesisQueries;
  Result.VerificationQueries += Outcome.VerificationQueries;
  Result.Counterexamples += Outcome.Counterexamples;
  Result.PrescreenKills += Outcome.PrescreenKills;
  Result.PrescreenInconclusive += Outcome.PrescreenInconclusive;
  for (Graph &Pattern : Outcome.Patterns) {
    if (Result.Patterns.size() >= MaxPatterns)
      break;
    if (Fingerprints.insert(Pattern.fingerprint()).second)
      Result.Patterns.push_back(std::move(Pattern));
  }
  if (!Outcome.Exhausted) {
    Result.Complete = false;
    IncompleteCause Cause = incompleteCauseFromFailure(Outcome.Failure);
    if (Cause == IncompleteCause::None)
      Cause = IncompleteCause::Budget;
    Result.Cause = mergeIncompleteCause(Result.Cause, Cause);
  }
}

} // namespace

SynthesisPlan Synthesizer::plan(const InstrSpec &Goal) {
  SynthesisPlan Plan;

  // Memory pre-analysis: fixed multiset prefix O.
  if (Options.UseMemoryRefinement)
    Plan.Prefix = requiredMemoryOps(Goal);

  // The enumerated alphabet excludes the fixed prefix operations; for
  // goals without memory access the source criterion would drop
  // Load/Store anyway, the prefix refinement just never enumerates
  // them ("we instead take O as the fixed first members of I'").
  Plan.Alphabet = Options.Alphabet;
  if (Options.UseMemoryRefinement && Goal.accessesMemory()) {
    Plan.Alphabet.erase(std::remove_if(Plan.Alphabet.begin(),
                                       Plan.Alphabet.end(),
                                       [](Opcode Op) {
                                         return opcodeTouchesMemory(Op);
                                       }),
                        Plan.Alphabet.end());
  }

  Plan.MinSize = Plan.Prefix.size();
  Plan.MaxSize =
      std::max(Options.MaxPatternSize, unsigned(Plan.Prefix.size()));
  return Plan;
}

uint64_t Synthesizer::numMultisets(const SynthesisPlan &Plan, unsigned Size) {
  unsigned EnumeratedSize = Size - Plan.MinSize;
  if (EnumeratedSize == 0)
    return 1; // The prefix itself is the only multiset.
  return multisetCount(Plan.Alphabet.size(), EnumeratedSize);
}

RangeOutcome Synthesizer::synthesizeRange(const InstrSpec &Goal,
                                          const SynthesisPlan &Plan,
                                          unsigned Size, uint64_t BeginRank,
                                          uint64_t EndRank,
                                          TestCorpus &Corpus,
                                          double BudgetSeconds) {
  Timer Clock;
  RangeOutcome Result;
  std::set<std::string> Fingerprints;

  CegisOptions CegisOpts;
  CegisOpts.QueryTimeoutMs = Options.QueryTimeoutMs;
  CegisOpts.QueryRlimit = Options.QueryRlimit;
  CegisOpts.QueryRetryScale = Options.QueryRetryScale;
  CegisOpts.MaxPatterns = Options.MaxPatternsPerMultiset;
  CegisOpts.RequireTotalPatterns = Options.RequireTotalPatterns;
  CegisOpts.UsePrescreen = Options.UsePrescreen;
  // A positive range budget arms a hard deadline on every solver in
  // the range: an in-flight query is interrupted when it passes, so
  // one stuck query cannot pin this worker far beyond the budget.
  if (BudgetSeconds > 0)
    CegisOpts.Deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(BudgetSeconds));

  // The evaluator and the verification solver (with the goal's
  // symbolic semantics already asserted) are shared by every multiset
  // of this range.
  std::optional<ConcreteGoalEval> Eval;
  if (Options.UsePrescreen)
    Eval.emplace(Smt, Options.Width, Goal);
  PatternVerifier Verifier(Smt, Options.Width, Goal, Options.QueryTimeoutMs,
                           Options.RequireTotalPatterns);
  SolverPolicy VerifierPolicy;
  VerifierPolicy.TimeoutMs = Options.QueryTimeoutMs;
  VerifierPolicy.RlimitPerQuery = Options.QueryRlimit;
  VerifierPolicy.RetryScale = Options.QueryRetryScale;
  Verifier.applyPolicy(VerifierPolicy);
  if (CegisOpts.Deadline)
    Verifier.setDeadline(*CegisOpts.Deadline);

  auto overBudget = [&] {
    return BudgetSeconds > 0 && Clock.elapsedSeconds() > BudgetSeconds;
  };

  auto runMultiset = [&](std::vector<Opcode> Multiset) {
    ++Result.MultisetsConsidered;
    if (Options.UseSkipCriteria &&
        shouldSkipMultiset(Goal, Multiset, Options.Width)) {
      ++Result.MultisetsSkipped;
      Statistics::get().add("synth.multisets_skipped");
      return;
    }
    ++Result.MultisetsRun;
    Statistics::get().add("synth.multisets_run");
    // Bound each CEGIS run by the remaining budget, so one slow
    // multiset cannot blow far past it.
    if (BudgetSeconds > 0)
      CegisOpts.TimeBudgetSeconds =
          std::max(1.0, BudgetSeconds - Clock.elapsedSeconds());
    CegisOutcome Outcome = runCegisAllPatterns(
        Smt, Options.Width, Goal, Multiset, Corpus, CegisOpts,
        Eval ? &*Eval : nullptr, &Verifier);
    Result.SynthesisQueries += Outcome.SynthesisQueries;
    Result.VerificationQueries += Outcome.VerificationQueries;
    Result.Counterexamples += Outcome.Counterexamples;
    Result.PrescreenKills += Outcome.PrescreenKills;
    Result.PrescreenInconclusive += Outcome.PrescreenInconclusive;
    if (!Outcome.Patterns.empty())
      Result.FoundAny = true;
    if (!Outcome.Exhausted) {
      Result.Complete = false;
      // A query-level failure names its cause; otherwise the run-level
      // budget (time or iteration cap) is what stopped the multiset.
      IncompleteCause Cause = incompleteCauseFromFailure(Outcome.Failure);
      if (Cause == IncompleteCause::None)
        Cause = IncompleteCause::Budget;
      Result.Cause = mergeIncompleteCause(Result.Cause, Cause);
    }
    for (Graph &Pattern : Outcome.Patterns) {
      if (Result.Patterns.size() >= Options.MaxPatternsPerGoal)
        break;
      if (Fingerprints.insert(Pattern.fingerprint()).second)
        Result.Patterns.push_back(std::move(Pattern));
    }
  };

  unsigned EnumeratedSize = Size - Plan.MinSize;
  if (EnumeratedSize == 0) {
    if (BeginRank == 0 && EndRank > 0)
      runMultiset(Plan.Prefix);
  } else {
    MulticombinationEnumerator Enumerator(Plan.Alphabet.size(),
                                          EnumeratedSize, BeginRank);
    for (uint64_t Rank = BeginRank; Rank < EndRank && !Enumerator.atEnd();
         ++Rank) {
      if (overBudget()) {
        Result.Complete = false;
        Result.Cause = mergeIncompleteCause(Result.Cause,
                                            IncompleteCause::Budget);
        break;
      }
      std::vector<Opcode> Multiset = Plan.Prefix;
      for (unsigned Index : Enumerator.current())
        Multiset.push_back(Plan.Alphabet[Index]);
      runMultiset(std::move(Multiset));
      if (!Enumerator.next())
        break;
    }
  }

  Result.Seconds = Clock.elapsedSeconds();
  return Result;
}

void selgen::absorbRangeOutcome(GoalSynthesisResult &Result,
                                std::set<std::string> &Fingerprints,
                                RangeOutcome &&Outcome,
                                unsigned MaxPatternsPerGoal) {
  Result.MultisetsConsidered += Outcome.MultisetsConsidered;
  Result.MultisetsSkipped += Outcome.MultisetsSkipped;
  Result.MultisetsRun += Outcome.MultisetsRun;
  Result.Counterexamples += Outcome.Counterexamples;
  Result.SynthesisQueries += Outcome.SynthesisQueries;
  Result.VerificationQueries += Outcome.VerificationQueries;
  Result.PrescreenKills += Outcome.PrescreenKills;
  Result.PrescreenInconclusive += Outcome.PrescreenInconclusive;
  if (!Outcome.Complete) {
    Result.Complete = false;
    Result.Cause = mergeIncompleteCause(
        Result.Cause, Outcome.Cause == IncompleteCause::None
                          ? IncompleteCause::Budget
                          : Outcome.Cause);
  }
  for (Graph &Pattern : Outcome.Patterns) {
    if (Result.Patterns.size() >= MaxPatternsPerGoal)
      break;
    if (Fingerprints.insert(Pattern.fingerprint()).second)
      Result.Patterns.push_back(std::move(Pattern));
  }
}

GoalSynthesisResult Synthesizer::synthesize(const InstrSpec &Goal) {
  Timer Clock;
  GoalSynthesisResult Result;
  Result.GoalName = Goal.name();

  SynthesisPlan Plan = this->plan(Goal);
  TestCorpus Corpus(Options.CorpusCapacity);
  std::set<std::string> Fingerprints;

  auto overBudget = [&] {
    return Options.TimeBudgetSeconds > 0 &&
           Clock.elapsedSeconds() > Options.TimeBudgetSeconds;
  };

  for (unsigned Size = Plan.MinSize; Size <= Plan.MaxSize; ++Size) {
    double Remaining = 0;
    if (Options.TimeBudgetSeconds > 0)
      Remaining =
          std::max(0.001, Options.TimeBudgetSeconds - Clock.elapsedSeconds());
    RangeOutcome Outcome =
        synthesizeRange(Goal, Plan, Size, 0, numMultisets(Plan, Size),
                        Corpus, Remaining);
    bool FoundThisSize = Outcome.FoundAny;
    absorbRangeOutcome(Result, Fingerprints, std::move(Outcome),
                       Options.MaxPatternsPerGoal);
    if (FoundThisSize) {
      Result.MinimalSize = Size;
      if (Options.FindAllMinimal)
        break;
    }
    if (overBudget()) {
      Result.Complete = false;
      Result.Cause =
          mergeIncompleteCause(Result.Cause, IncompleteCause::Budget);
      break;
    }
  }

  Result.Seconds = Clock.elapsedSeconds();
  return Result;
}

GoalSynthesisResult Synthesizer::synthesizeClassic(const InstrSpec &Goal,
                                                   unsigned Copies) {
  Timer Clock;
  GoalSynthesisResult Result;
  Result.GoalName = Goal.name() + " (classic)";

  std::vector<Opcode> Multiset;
  for (unsigned C = 0; C < Copies; ++C)
    for (Opcode Op : Options.Alphabet)
      Multiset.push_back(Op);

  // Without the source criterion, memory operations in the template
  // set of a memory-free goal make the encoding unsatisfiable-by-
  // construction, exactly as in the original algorithm.
  std::vector<TestCase> SharedTests;
  std::set<std::string> Fingerprints;
  CegisOptions CegisOpts;
  CegisOpts.QueryTimeoutMs = Options.QueryTimeoutMs;
  CegisOpts.QueryRlimit = Options.QueryRlimit;
  CegisOpts.QueryRetryScale = Options.QueryRetryScale;
  CegisOpts.MaxPatterns = 1; // The baseline searches for any program.
  CegisOpts.RequireAllUsed = false;
  CegisOpts.TimeBudgetSeconds = Options.TimeBudgetSeconds;
  CegisOpts.UsePrescreen = Options.UsePrescreen;

  Result.MultisetsConsidered = Result.MultisetsRun = 1;
  CegisOutcome Outcome = runCegisAllPatterns(
      Smt, Options.Width, Goal, Multiset, SharedTests, CegisOpts);
  absorbOutcome(Result, Fingerprints, std::move(Outcome),
                Options.MaxPatternsPerGoal);
  if (!Result.Patterns.empty())
    Result.MinimalSize = Result.Patterns.front().numOperations();
  Result.Seconds = Clock.elapsedSeconds();
  return Result;
}
