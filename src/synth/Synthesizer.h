//===- Synthesizer.h - Iterative CEGIS driver --------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The iterative CEGIS algorithm of paper Section 5.4 (Algorithm 2):
/// enumerate l-multicombinations of the IR operation alphabet with
/// increasing l, run CEGISAllPatterns on each, and return all patterns
/// of minimal size. Includes the paper's refinements:
///
/// * memory-requirement analysis: a pre-analysis on the goal's
///   postcondition decides whether the pattern must contain a load, a
///   store, or both, and those operations become a fixed prefix of
///   every multiset (reducing ((|I|, l)) to ((|I|, l - |O|)));
/// * skip criteria: multisets that provably admit no new minimal
///   pattern (dangling single-sort results; missing source of a
///   required sort) are skipped without touching the solver.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SYNTH_SYNTHESIZER_H
#define SELGEN_SYNTH_SYNTHESIZER_H

#include "synth/Cegis.h"

#include <set>
#include <string>
#include <vector>

namespace selgen {

/// Why a goal (or a range of its enumeration) ended incomplete,
/// ordered by severity: when several causes occur over one goal, the
/// most severe one is reported (mergeIncompleteCause).
enum class IncompleteCause {
  None,      ///< Complete.
  Budget,    ///< The goal/range wall-clock or iteration budget ran out.
  Timeout,   ///< A solver query hit its wall-clock timeout.
  Deadline,  ///< A query was cut at the hard deadline (interrupted).
  Rlimit,    ///< A query exhausted its deterministic Z3 rlimit.
  Exception, ///< A contained z3::exception / allocation failure.
};

/// Stable lowercase name ("budget", "timeout", ...).
const char *incompleteCauseName(IncompleteCause Cause);

/// Maps a solver-level failure into the goal-level taxonomy.
IncompleteCause incompleteCauseFromFailure(SmtFailure Failure);

/// The more severe of the two causes.
inline IncompleteCause mergeIncompleteCause(IncompleteCause A,
                                            IncompleteCause B) {
  return A < B ? B : A;
}

/// Configuration of an iterative CEGIS run.
struct SynthesisOptions {
  unsigned Width = 8;
  /// The operation alphabet I (each operation once).
  std::vector<Opcode> Alphabet;
  /// Cap on the iterative deepening (overridden per goal by
  /// GoalInstruction::MaxPatternSize when driven from a GoalLibrary).
  unsigned MaxPatternSize = 4;
  bool UseMemoryRefinement = true;
  bool UseSkipCriteria = true;
  /// Stop after the smallest l that produced patterns (the paper's
  /// semantics); otherwise keep deepening to MaxPatternSize.
  bool FindAllMinimal = true;
  /// Require patterns to be defined wherever the goal is (ablation;
  /// see CegisOptions::RequireTotalPatterns).
  bool RequireTotalPatterns = false;
  unsigned MaxPatternsPerGoal = 512;
  unsigned MaxPatternsPerMultiset = 32;
  unsigned QueryTimeoutMs = 60000;
  /// Deterministic Z3 resource budget per solver query; 0 = none.
  /// Unlike the wall-clock timeout, rlimit-bounded outcomes replay
  /// identically across machines (see SolverPolicy).
  uint64_t QueryRlimit = 0;
  /// Escalation ladder for inconclusive queries: one attempt per
  /// entry, budgets scaled by it (e.g. {1, 4, 16}).
  std::vector<unsigned> QueryRetryScale = {1};
  /// Wall-clock budget for one goal; 0 = unlimited.
  double TimeBudgetSeconds = 0;
  /// Screen candidates against the concrete counterexample corpus
  /// before symbolic verification (see CegisOptions::UsePrescreen).
  bool UsePrescreen = true;
  /// Counterexample-corpus size bound per goal (LRU-evicted beyond).
  unsigned CorpusCapacity = TestCorpus::DefaultCapacity;

  SynthesisOptions();
};

/// Outcome of synthesizing one goal.
struct GoalSynthesisResult {
  std::string GoalName;
  std::vector<Graph> Patterns; ///< Deduplicated by fingerprint.
  unsigned MinimalSize = 0;    ///< l of the patterns found.
  bool Complete = true;  ///< False on budget/timeout/solver trouble.
  /// Most severe reason for incompleteness (None when Complete).
  IncompleteCause Cause = IncompleteCause::None;
  double Seconds = 0;
  uint64_t MultisetsConsidered = 0;
  uint64_t MultisetsSkipped = 0; ///< By the skip criteria.
  uint64_t MultisetsRun = 0;     ///< Actually handed to CEGIS.
  uint64_t Counterexamples = 0;
  uint64_t SynthesisQueries = 0;
  uint64_t VerificationQueries = 0;
  uint64_t PrescreenKills = 0;
  uint64_t PrescreenInconclusive = 0;
  /// Cost vector of the goal's emission recipe (cost/CostModel.h),
  /// derived once per goal when the library is built and cached with
  /// the result. HasCost distinguishes a derived zero vector from a
  /// result predating cost derivation (an old cache shard).
  bool HasCost = false;
  uint32_t CostInstructions = 0;
  uint32_t CostLatency = 0;
  uint32_t CostSize = 0;
};

/// The per-goal enumeration plan of Algorithm 2: the fixed memory-op
/// prefix O and the enumerated alphabet I' (paper Section 5.4). The
/// plan is what makes one goal's search divisible: for a fixed pattern
/// size, the multicombination ranks over Alphabet form a contiguous
/// range that workers can process in independent sub-ranges.
struct SynthesisPlan {
  std::vector<Opcode> Prefix;   ///< Required memory operations.
  std::vector<Opcode> Alphabet; ///< Enumerated operations.
  unsigned MinSize = 0;         ///< Prefix.size().
  unsigned MaxSize = 0;         ///< Iterative-deepening cap.
};

/// Result of running one contiguous rank sub-range of one size's
/// enumeration (see Synthesizer::synthesizeRange). Patterns are kept
/// in enumeration order and deduplicated only within the range; the
/// caller merges ranges in rank order so the final pattern set matches
/// a sequential run exactly.
struct RangeOutcome {
  std::vector<Graph> Patterns;
  bool FoundAny = false;
  bool Complete = true;
  /// Most severe reason for incompleteness (None when Complete).
  IncompleteCause Cause = IncompleteCause::None;
  uint64_t MultisetsConsidered = 0;
  uint64_t MultisetsSkipped = 0;
  uint64_t MultisetsRun = 0;
  uint64_t Counterexamples = 0;
  uint64_t SynthesisQueries = 0;
  uint64_t VerificationQueries = 0;
  uint64_t PrescreenKills = 0;
  uint64_t PrescreenInconclusive = 0;
  double Seconds = 0;
};

/// Drives iterative CEGIS for individual goals.
class Synthesizer {
public:
  Synthesizer(SmtContext &Smt, SynthesisOptions Options);

  const SynthesisOptions &options() const { return Options; }

  /// Runs Algorithm 2 for \p Goal.
  GoalSynthesisResult synthesize(const InstrSpec &Goal);

  /// Computes the enumeration plan for \p Goal (memory pre-analysis;
  /// issues solver queries for memory-accessing goals).
  SynthesisPlan plan(const InstrSpec &Goal);

  /// Number of multisets enumerated at pattern size \p Size under
  /// \p Plan (1 for the prefix-only size).
  static uint64_t numMultisets(const SynthesisPlan &Plan, unsigned Size);

  /// Runs the multisets with lexicographic rank in [BeginRank, EndRank)
  /// of pattern size \p Size. \p Corpus seeds the CEGIS test set and
  /// receives newly found counterexamples; it is internally locked, so
  /// callers running ranges concurrently share one corpus per goal
  /// (the parallel builder's CorpusStore). A positive \p BudgetSeconds
  /// caps this range's wall clock; expiry marks the outcome
  /// incomplete.
  RangeOutcome synthesizeRange(const InstrSpec &Goal,
                               const SynthesisPlan &Plan, unsigned Size,
                               uint64_t BeginRank, uint64_t EndRank,
                               TestCorpus &Corpus,
                               double BudgetSeconds = 0);

  /// Runs one classical (non-iterative) CEGIS with an oversupplied
  /// template multiset containing \p Copies copies of every alphabet
  /// operation — the baseline of the paper's Section 7.2 comparison.
  GoalSynthesisResult synthesizeClassic(const InstrSpec &Goal,
                                        unsigned Copies);

  /// The memory-requirement pre-analysis (Section 5.4): returns the
  /// subset of {Load, Store} every pattern for \p Goal must contain.
  std::vector<Opcode> requiredMemoryOps(const InstrSpec &Goal);

  /// The two skip criteria (Section 5.4) plus the goal-result variant
  /// of the source criterion. Returns true if the multiset cannot
  /// yield a new minimal pattern.
  static bool shouldSkipMultiset(const InstrSpec &Goal,
                                 const std::vector<Opcode> &Multiset,
                                 unsigned Width);

private:
  SmtContext &Smt;
  SynthesisOptions Options;
};

/// Merges one range outcome into \p Result, deduplicating patterns by
/// fingerprint across ranges and enforcing the MaxPatternsPerGoal cap.
/// Ranges of one size must be absorbed in ascending rank order for the
/// final pattern set to equal a sequential run's.
void absorbRangeOutcome(GoalSynthesisResult &Result,
                        std::set<std::string> &Fingerprints,
                        RangeOutcome &&Outcome, unsigned MaxPatternsPerGoal);

} // namespace selgen

#endif // SELGEN_SYNTH_SYNTHESIZER_H
