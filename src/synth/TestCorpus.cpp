//===- TestCorpus.cpp - Shared counterexample corpus -------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/TestCorpus.h"

#include "support/Statistics.h"

#include <algorithm>

using namespace selgen;

std::string selgen::testCaseKey(const TestCase &Test) {
  std::string Key;
  for (const BitValue &Value : Test) {
    Key += std::to_string(Value.width());
    Key += ':';
    Key += Value.toUnsignedString();
    Key += ';';
  }
  return Key;
}

TestCorpus::TestCorpus(size_t Capacity)
    : Capacity(std::max<size_t>(Capacity, 1)) {}

size_t TestCorpus::size() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Slots.size();
}

uint64_t TestCorpus::evictions() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Evictions;
}

bool TestCorpus::insert(TestCase Test,
                        std::optional<ConcreteGoalOutcome> GoalOutcome) {
  std::string Key = testCaseKey(Test);
  std::lock_guard<std::mutex> Guard(Lock);
  if (!Keys.insert(Key).second) {
    Statistics::get().add("corpus.duplicates_rejected");
    return false;
  }
  if (Slots.size() >= Capacity) {
    auto Victim = std::min_element(
        Slots.begin(), Slots.end(),
        [](const Slot &A, const Slot &B) { return A.LastUse < B.LastUse; });
    Keys.erase(testCaseKey(Victim->E->Test));
    Slots.erase(Victim);
    ++Evictions;
    Statistics::get().add("corpus.evictions");
  }
  Slot New;
  New.E = std::make_shared<const Entry>(
      Entry{std::move(Test), std::move(GoalOutcome)});
  New.LastUse = ++Tick;
  Slots.push_back(std::move(New));
  Statistics::get().add("corpus.insertions");
  return true;
}

std::vector<TestCorpus::EntryPtr> TestCorpus::snapshot() const {
  std::lock_guard<std::mutex> Guard(Lock);
  std::vector<EntryPtr> Entries;
  Entries.reserve(Slots.size());
  for (const Slot &S : Slots)
    Entries.push_back(S.E);
  return Entries;
}

void TestCorpus::recordKill(const EntryPtr &Killer) {
  std::lock_guard<std::mutex> Guard(Lock);
  for (Slot &S : Slots)
    if (S.E == Killer) {
      S.LastUse = ++Tick;
      return;
    }
  // The killer may already have been evicted by a concurrent insert;
  // nothing to refresh then.
}

std::vector<TestCase> TestCorpus::allTests() const {
  std::lock_guard<std::mutex> Guard(Lock);
  std::vector<TestCase> Tests;
  Tests.reserve(Slots.size());
  for (const Slot &S : Slots)
    Tests.push_back(S.E->Test);
  return Tests;
}

std::shared_ptr<TestCorpus> CorpusStore::getOrCreate(
    const std::string &Fingerprint, size_t Capacity) {
  std::lock_guard<std::mutex> Guard(Lock);
  std::shared_ptr<TestCorpus> &Corpus = Corpora[Fingerprint];
  if (!Corpus)
    Corpus = std::make_shared<TestCorpus>(Capacity);
  return Corpus;
}
