//===- TestCorpus.h - Shared counterexample corpus ---------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-goal counterexample corpus behind CEGIS pre-screening: every
/// test case ever discovered for a goal — the deterministic seeds plus
/// each verification counterexample — collected across template
/// multisets and, in the parallel builder, across work-stealing chunks
/// of the same goal. Entries are immutable and carry the goal's cached
/// concrete outcome, so screening a candidate costs one interpreter
/// run per test and zero solver work.
///
/// The corpus is internally locked; readers take value snapshots of
/// shared_ptr entries, so chunks on different SmtContexts can screen
/// concurrently while others insert (BitValue data is context-free).
/// Duplicates are rejected by value, and a full corpus evicts the test
/// that least recently killed a candidate — both logged through
/// Statistics (corpus.duplicates_rejected, corpus.evictions), never
/// silently.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SYNTH_TESTCORPUS_H
#define SELGEN_SYNTH_TESTCORPUS_H

#include "synth/ConcreteGoalEval.h"

#include <map>
#include <mutex>
#include <set>

namespace selgen {

/// A stable value key for a test case (widths + values), used for
/// dedupe and for tracking which tests a solver has asserted.
std::string testCaseKey(const TestCase &Test);

/// One goal's counterexample corpus. Thread-safe.
class TestCorpus {
public:
  static constexpr size_t DefaultCapacity = 512;

  struct Entry {
    TestCase Test;
    /// The goal's concrete behaviour on Test; nullopt when concrete
    /// evaluation was inconclusive (or pre-screening is disabled), in
    /// which case screening skips this entry.
    std::optional<ConcreteGoalOutcome> GoalOutcome;
  };
  using EntryPtr = std::shared_ptr<const Entry>;

  explicit TestCorpus(size_t Capacity = DefaultCapacity);

  size_t size() const;
  bool empty() const { return size() == 0; }
  uint64_t evictions() const;

  /// Inserts a test with its cached goal outcome. Returns false for a
  /// duplicate (by value). A full corpus first evicts the entry that
  /// least recently killed a candidate.
  bool insert(TestCase Test, std::optional<ConcreteGoalOutcome> GoalOutcome);

  /// A point-in-time view for screening, in insertion order. Entries
  /// are immutable; concurrent inserts/evictions do not disturb them.
  std::vector<EntryPtr> snapshot() const;

  /// Records that \p Killer just killed a candidate, refreshing its
  /// eviction priority.
  void recordKill(const EntryPtr &Killer);

  /// All tests in insertion order (the vector-of-TestCase view used by
  /// the compatibility overload of runCegisAllPatterns).
  std::vector<TestCase> allTests() const;

private:
  struct Slot {
    EntryPtr E;
    uint64_t LastUse = 0;
  };

  mutable std::mutex Lock;
  size_t Capacity;
  uint64_t Tick = 0;
  uint64_t Evictions = 0;
  std::vector<Slot> Slots;
  std::set<std::string> Keys;
};

/// Mutex-guarded map from goal fingerprint to that goal's shared
/// corpus; the parallel builder hands all chunks of one goal the same
/// TestCorpus through this store.
class CorpusStore {
public:
  std::shared_ptr<TestCorpus> getOrCreate(const std::string &Fingerprint,
                                          size_t Capacity);

private:
  std::mutex Lock;
  std::map<std::string, std::shared_ptr<TestCorpus>> Corpora;
};

} // namespace selgen

#endif // SELGEN_SYNTH_TESTCORPUS_H
