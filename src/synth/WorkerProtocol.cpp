//===- WorkerProtocol.cpp - Solver worker request encoding --------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "synth/WorkerProtocol.h"

#include "ir/Opcode.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "smt/SolverPool.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <iomanip>
#include <sstream>

using namespace selgen;

namespace {

constexpr const char *MagicLine = "selgen-worker v1";
constexpr const char *EndLine = "end";

std::string fail(std::string *Error, const std::string &Message) {
  if (Error)
    *Error = Message;
  return Message;
}

/// Doubles round-trip exactly at 17 significant digits.
std::string encodeDouble(double Value) {
  std::ostringstream Out;
  Out << std::setprecision(17) << Value;
  return Out.str();
}

/// "width:hexdigits", e.g. "8:ff". toHexString() renders "0x..."; the
/// prefix is stripped so the field splits on ':' alone.
std::string encodeBits(const BitValue &Value) {
  std::string Hex = Value.toHexString();
  if (startsWith(Hex, "0x"))
    Hex = Hex.substr(2);
  return std::to_string(Value.width()) + ":" + Hex;
}

std::optional<BitValue> decodeBits(const std::string &Field) {
  size_t Colon = Field.find(':');
  if (Colon == 0 || Colon == std::string::npos || Colon + 1 == Field.size())
    return std::nullopt;
  char *End = nullptr;
  unsigned long Width = std::strtoul(Field.c_str(), &End, 10);
  if (End != Field.c_str() + Colon || Width == 0 || Width > 1u << 20)
    return std::nullopt;
  std::string Digits = Field.substr(Colon + 1);
  for (char C : Digits)
    if (!std::isxdigit(static_cast<unsigned char>(C)))
      return std::nullopt; // fromString asserts on malformed input.
  return BitValue::fromString(static_cast<unsigned>(Width), Digits, 16);
}

std::string encodeOpcodes(const std::vector<Opcode> &Ops) {
  std::string Out;
  for (Opcode Op : Ops) {
    if (!Out.empty())
      Out += ' ';
    Out += opcodeName(Op);
  }
  return Out;
}

std::optional<std::vector<Opcode>> decodeOpcodes(const std::string &Text) {
  std::vector<Opcode> Ops;
  std::istringstream Fields(Text);
  std::string Name;
  while (Fields >> Name) {
    std::optional<Opcode> Op = tryOpcodeFromName(Name);
    if (!Op)
      return std::nullopt;
    Ops.push_back(*Op);
  }
  return Ops;
}

std::optional<IncompleteCause> causeFromName(const std::string &Name) {
  static const IncompleteCause All[] = {
      IncompleteCause::None,     IncompleteCause::Budget,
      IncompleteCause::Timeout,  IncompleteCause::Deadline,
      IncompleteCause::Rlimit,   IncompleteCause::Exception};
  for (IncompleteCause Cause : All)
    if (Name == incompleteCauseName(Cause))
      return Cause;
  return std::nullopt;
}

std::optional<SmtFailure> failureFromName(const std::string &Name) {
  static const SmtFailure All[] = {SmtFailure::None, SmtFailure::Timeout,
                                   SmtFailure::Rlimit, SmtFailure::Exception,
                                   SmtFailure::Deadline};
  for (SmtFailure Failure : All)
    if (Name == smtFailureName(Failure))
      return Failure;
  return std::nullopt;
}

void encodeCorpus(std::ostream &Out,
                  const std::vector<TestCorpus::Entry> &Entries) {
  Out << "tests " << Entries.size() << "\n";
  for (const TestCorpus::Entry &E : Entries) {
    Out << "test";
    for (const BitValue &V : E.Test)
      Out << " " << encodeBits(V);
    Out << "\n";
    if (!E.GoalOutcome) {
      Out << "goal-outcome unknown\n";
    } else if (!E.GoalOutcome->Defined) {
      Out << "goal-outcome undefined\n";
    } else {
      Out << "goal-outcome defined";
      for (const BitValue &V : E.GoalOutcome->Results)
        Out << " " << encodeBits(V);
      Out << "\n";
    }
  }
}

/// Splits a field line's remainder into BitValues.
std::optional<std::vector<BitValue>> decodeBitsList(const std::string &Text) {
  std::vector<BitValue> Values;
  std::istringstream Fields(Text);
  std::string Field;
  while (Fields >> Field) {
    std::optional<BitValue> V = decodeBits(Field);
    if (!V)
      return std::nullopt;
    Values.push_back(std::move(*V));
  }
  return Values;
}

bool decodeCorpus(std::istream &Stream, const std::string &CountLine,
                  std::vector<TestCorpus::Entry> &Entries) {
  size_t Count = static_cast<size_t>(std::atoll(CountLine.c_str()));
  if (Count > 1u << 20)
    return false;
  std::string Line;
  for (size_t I = 0; I < Count; ++I) {
    if (!std::getline(Stream, Line))
      return false;
    std::string Trimmed = trimString(Line);
    if (Trimmed != "test" && !startsWith(Trimmed, "test "))
      return false;
    std::optional<std::vector<BitValue>> Test =
        decodeBitsList(Trimmed.size() > 4 ? Trimmed.substr(5) : "");
    if (!Test)
      return false;
    if (!std::getline(Stream, Line))
      return false;
    Trimmed = trimString(Line);
    TestCorpus::Entry Entry;
    Entry.Test = std::move(*Test);
    if (Trimmed == "goal-outcome unknown") {
      Entry.GoalOutcome = std::nullopt;
    } else if (Trimmed == "goal-outcome undefined") {
      ConcreteGoalOutcome Outcome;
      Outcome.Defined = false;
      Entry.GoalOutcome = std::move(Outcome);
    } else if (Trimmed == "goal-outcome defined" ||
               startsWith(Trimmed, "goal-outcome defined ")) {
      std::optional<std::vector<BitValue>> Results = decodeBitsList(
          Trimmed.size() > 20 ? Trimmed.substr(21) : "");
      if (!Results)
        return false;
      ConcreteGoalOutcome Outcome;
      Outcome.Defined = true;
      Outcome.Results = std::move(*Results);
      Entry.GoalOutcome = std::move(Outcome);
    } else {
      return false;
    }
    Entries.push_back(std::move(Entry));
  }
  return true;
}

void encodePatterns(std::ostream &Out, const std::vector<Graph> &Patterns) {
  Out << "patterns " << Patterns.size() << "\n";
  for (const Graph &Pattern : Patterns) {
    Out << "pattern\n";
    Out << printGraph(Pattern);
    Out << "endpattern\n";
  }
}

bool decodePatterns(std::istream &Stream, const std::string &CountLine,
                    std::vector<Graph> &Patterns) {
  size_t Count = static_cast<size_t>(std::atoll(CountLine.c_str()));
  if (Count > 1u << 20)
    return false;
  std::string Line;
  for (size_t I = 0; I < Count; ++I) {
    if (!std::getline(Stream, Line) || trimString(Line) != "pattern")
      return false;
    std::string GraphText;
    bool Terminated = false;
    while (std::getline(Stream, Line)) {
      if (trimString(Line) == "endpattern") {
        Terminated = true;
        break;
      }
      GraphText += Line + "\n";
    }
    if (!Terminated)
      return false;
    std::optional<Graph> Pattern = parseGraph(GraphText);
    if (!Pattern)
      return false;
    Patterns.push_back(std::move(*Pattern));
  }
  return true;
}

/// Consumes magic + `kind <Expected>`; false on mismatch.
bool expectHeader(std::istream &Stream, const std::string &Expected) {
  std::string Line;
  if (!std::getline(Stream, Line) || trimString(Line) != MagicLine)
    return false;
  if (!std::getline(Stream, Line) || trimString(Line) != "kind " + Expected)
    return false;
  return true;
}

} // namespace

WorkerRequestKind selgen::peekRequestKind(const std::string &Payload) {
  std::istringstream Stream(Payload);
  std::string Line;
  if (!std::getline(Stream, Line) || trimString(Line) != MagicLine)
    return WorkerRequestKind::Unknown;
  if (!std::getline(Stream, Line))
    return WorkerRequestKind::Unknown;
  std::string Kind = trimString(Line);
  if (Kind == "kind range")
    return WorkerRequestKind::Range;
  if (Kind == "kind smt")
    return WorkerRequestKind::SmtQuery;
  return WorkerRequestKind::Unknown;
}

std::string selgen::encodeRangeRequest(const RangeRequest &Request) {
  std::ostringstream Out;
  Out << MagicLine << "\n";
  Out << "kind range\n";
  Out << "goal " << Request.GoalName << "\n";
  const SynthesisOptions &O = Request.Options;
  Out << "width " << O.Width << "\n";
  Out << "alphabet " << encodeOpcodes(O.Alphabet) << "\n";
  Out << "max-pattern-size " << O.MaxPatternSize << "\n";
  Out << "flags " << O.UseMemoryRefinement << " " << O.UseSkipCriteria << " "
      << O.FindAllMinimal << " " << O.RequireTotalPatterns << " "
      << O.UsePrescreen << "\n";
  Out << "caps " << O.MaxPatternsPerGoal << " " << O.MaxPatternsPerMultiset
      << " " << O.CorpusCapacity << "\n";
  Out << "timeout-ms " << O.QueryTimeoutMs << "\n";
  Out << "rlimit " << O.QueryRlimit << "\n";
  Out << "retry-scale";
  for (unsigned Scale : O.QueryRetryScale)
    Out << " " << Scale;
  Out << "\n";
  Out << "goal-budget " << encodeDouble(O.TimeBudgetSeconds) << "\n";
  Out << "plan-prefix " << encodeOpcodes(Request.Plan.Prefix) << "\n";
  Out << "plan-alphabet " << encodeOpcodes(Request.Plan.Alphabet) << "\n";
  Out << "plan-sizes " << Request.Plan.MinSize << " " << Request.Plan.MaxSize
      << "\n";
  Out << "range " << Request.Size << " " << Request.BeginRank << " "
      << Request.EndRank << "\n";
  Out << "chunk-budget " << encodeDouble(Request.BudgetSeconds) << "\n";
  encodeCorpus(Out, Request.CorpusSeed);
  Out << EndLine << "\n";
  return Out.str();
}

std::optional<RangeRequest>
selgen::decodeRangeRequest(const std::string &Payload, std::string *Error) {
  std::istringstream Stream(Payload);
  if (!expectHeader(Stream, "range")) {
    fail(Error, "bad header");
    return std::nullopt;
  }

  RangeRequest Request;
  std::string Line;
  bool SawEnd = false;
  while (std::getline(Stream, Line)) {
    std::string Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    if (Trimmed == EndLine) {
      SawEnd = true;
      break;
    }
    if (startsWith(Trimmed, "goal ")) {
      Request.GoalName = trimString(Trimmed.substr(5));
    } else if (startsWith(Trimmed, "width ")) {
      Request.Options.Width =
          static_cast<unsigned>(std::atoll(Trimmed.substr(6).c_str()));
    } else if (Trimmed == "alphabet" || startsWith(Trimmed, "alphabet ")) {
      std::optional<std::vector<Opcode>> Ops =
          decodeOpcodes(Trimmed.size() > 8 ? Trimmed.substr(9) : "");
      if (!Ops) {
        fail(Error, "bad alphabet");
        return std::nullopt;
      }
      Request.Options.Alphabet = std::move(*Ops);
    } else if (startsWith(Trimmed, "max-pattern-size ")) {
      Request.Options.MaxPatternSize =
          static_cast<unsigned>(std::atoll(Trimmed.substr(17).c_str()));
    } else if (startsWith(Trimmed, "flags ")) {
      std::istringstream Fields(Trimmed.substr(6));
      int Mem = 0, Skip = 0, FindAll = 0, Total = 0, Prescreen = 0;
      if (!(Fields >> Mem >> Skip >> FindAll >> Total >> Prescreen)) {
        fail(Error, "bad flags");
        return std::nullopt;
      }
      Request.Options.UseMemoryRefinement = Mem != 0;
      Request.Options.UseSkipCriteria = Skip != 0;
      Request.Options.FindAllMinimal = FindAll != 0;
      Request.Options.RequireTotalPatterns = Total != 0;
      Request.Options.UsePrescreen = Prescreen != 0;
    } else if (startsWith(Trimmed, "caps ")) {
      std::istringstream Fields(Trimmed.substr(5));
      if (!(Fields >> Request.Options.MaxPatternsPerGoal >>
            Request.Options.MaxPatternsPerMultiset >>
            Request.Options.CorpusCapacity)) {
        fail(Error, "bad caps");
        return std::nullopt;
      }
    } else if (startsWith(Trimmed, "timeout-ms ")) {
      Request.Options.QueryTimeoutMs =
          static_cast<unsigned>(std::atoll(Trimmed.substr(11).c_str()));
    } else if (startsWith(Trimmed, "rlimit ")) {
      Request.Options.QueryRlimit =
          static_cast<uint64_t>(std::atoll(Trimmed.substr(7).c_str()));
    } else if (Trimmed == "retry-scale" ||
               startsWith(Trimmed, "retry-scale ")) {
      std::istringstream Fields(
          Trimmed.size() > 11 ? Trimmed.substr(12) : "");
      std::vector<unsigned> Scale;
      unsigned Value = 0;
      while (Fields >> Value)
        Scale.push_back(Value);
      Request.Options.QueryRetryScale = std::move(Scale);
    } else if (startsWith(Trimmed, "goal-budget ")) {
      Request.Options.TimeBudgetSeconds =
          std::strtod(Trimmed.substr(12).c_str(), nullptr);
    } else if (Trimmed == "plan-prefix" ||
               startsWith(Trimmed, "plan-prefix ")) {
      std::optional<std::vector<Opcode>> Ops =
          decodeOpcodes(Trimmed.size() > 11 ? Trimmed.substr(12) : "");
      if (!Ops) {
        fail(Error, "bad plan-prefix");
        return std::nullopt;
      }
      Request.Plan.Prefix = std::move(*Ops);
    } else if (Trimmed == "plan-alphabet" ||
               startsWith(Trimmed, "plan-alphabet ")) {
      std::optional<std::vector<Opcode>> Ops =
          decodeOpcodes(Trimmed.size() > 13 ? Trimmed.substr(14) : "");
      if (!Ops) {
        fail(Error, "bad plan-alphabet");
        return std::nullopt;
      }
      Request.Plan.Alphabet = std::move(*Ops);
    } else if (startsWith(Trimmed, "plan-sizes ")) {
      std::istringstream Fields(Trimmed.substr(11));
      if (!(Fields >> Request.Plan.MinSize >> Request.Plan.MaxSize)) {
        fail(Error, "bad plan-sizes");
        return std::nullopt;
      }
    } else if (startsWith(Trimmed, "range ")) {
      std::istringstream Fields(Trimmed.substr(6));
      if (!(Fields >> Request.Size >> Request.BeginRank >> Request.EndRank)) {
        fail(Error, "bad range");
        return std::nullopt;
      }
    } else if (startsWith(Trimmed, "chunk-budget ")) {
      Request.BudgetSeconds = std::strtod(Trimmed.substr(13).c_str(), nullptr);
    } else if (startsWith(Trimmed, "tests ")) {
      if (!decodeCorpus(Stream, Trimmed.substr(6), Request.CorpusSeed)) {
        fail(Error, "bad corpus");
        return std::nullopt;
      }
    } else {
      fail(Error, "unknown field: " + Trimmed);
      return std::nullopt;
    }
  }
  if (!SawEnd || Request.GoalName.empty()) {
    fail(Error, "truncated request");
    return std::nullopt;
  }
  return Request;
}

std::string selgen::encodeRangeReply(const RangeReply &Reply) {
  std::ostringstream Out;
  const RangeOutcome &R = Reply.Outcome;
  Out << MagicLine << "\n";
  Out << "kind range-reply\n";
  Out << "found " << R.FoundAny << "\n";
  Out << "complete " << R.Complete << "\n";
  Out << "cause " << incompleteCauseName(R.Cause) << "\n";
  Out << "counters " << R.MultisetsConsidered << " " << R.MultisetsSkipped
      << " " << R.MultisetsRun << " " << R.Counterexamples << " "
      << R.SynthesisQueries << " " << R.VerificationQueries << " "
      << R.PrescreenKills << " " << R.PrescreenInconclusive << "\n";
  Out << "seconds " << encodeDouble(R.Seconds) << "\n";
  encodePatterns(Out, R.Patterns);
  encodeCorpus(Out, Reply.CorpusEntries);
  Out << EndLine << "\n";
  return Out.str();
}

std::optional<RangeReply> selgen::decodeRangeReply(const std::string &Payload,
                                                   std::string *Error) {
  std::istringstream Stream(Payload);
  if (!expectHeader(Stream, "range-reply")) {
    fail(Error, "bad header");
    return std::nullopt;
  }

  RangeReply Reply;
  std::string Line;
  bool SawEnd = false;
  while (std::getline(Stream, Line)) {
    std::string Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    if (Trimmed == EndLine) {
      SawEnd = true;
      break;
    }
    if (startsWith(Trimmed, "found ")) {
      Reply.Outcome.FoundAny = std::atoi(Trimmed.substr(6).c_str()) != 0;
    } else if (startsWith(Trimmed, "complete ")) {
      Reply.Outcome.Complete = std::atoi(Trimmed.substr(9).c_str()) != 0;
    } else if (startsWith(Trimmed, "cause ")) {
      std::optional<IncompleteCause> Cause =
          causeFromName(trimString(Trimmed.substr(6)));
      if (!Cause) {
        fail(Error, "bad cause");
        return std::nullopt;
      }
      Reply.Outcome.Cause = *Cause;
    } else if (startsWith(Trimmed, "counters ")) {
      std::istringstream Fields(Trimmed.substr(9));
      RangeOutcome &R = Reply.Outcome;
      if (!(Fields >> R.MultisetsConsidered >> R.MultisetsSkipped >>
            R.MultisetsRun >> R.Counterexamples >> R.SynthesisQueries >>
            R.VerificationQueries >> R.PrescreenKills >>
            R.PrescreenInconclusive)) {
        fail(Error, "bad counters");
        return std::nullopt;
      }
    } else if (startsWith(Trimmed, "seconds ")) {
      Reply.Outcome.Seconds = std::strtod(Trimmed.substr(8).c_str(), nullptr);
    } else if (startsWith(Trimmed, "patterns ")) {
      if (!decodePatterns(Stream, Trimmed.substr(9), Reply.Outcome.Patterns)) {
        fail(Error, "bad patterns");
        return std::nullopt;
      }
    } else if (startsWith(Trimmed, "tests ")) {
      if (!decodeCorpus(Stream, Trimmed.substr(6), Reply.CorpusEntries)) {
        fail(Error, "bad corpus");
        return std::nullopt;
      }
    } else {
      fail(Error, "unknown field: " + Trimmed);
      return std::nullopt;
    }
  }
  if (!SawEnd) {
    fail(Error, "truncated reply");
    return std::nullopt;
  }
  return Reply;
}

std::string selgen::encodeSmtQueryRequest(const SmtQueryRequest &Request) {
  std::ostringstream Out;
  Out << MagicLine << "\n";
  Out << "kind smt\n";
  Out << "policy " << Request.Policy.TimeoutMs << " "
      << Request.Policy.RlimitPerQuery << " "
      << encodeDouble(Request.Policy.DeadlineSeconds) << "\n";
  Out << "retry-scale";
  for (unsigned Scale : Request.Policy.RetryScale)
    Out << " " << Scale;
  Out << "\n";
  for (const auto &[Name, Width] : Request.Eval)
    Out << "eval " << Name << " " << Width << "\n";
  // Raw SMT-LIB2 lines, length-prefixed so they need no escaping.
  size_t Lines = 0;
  for (char C : Request.Smt2)
    if (C == '\n')
      ++Lines;
  if (!Request.Smt2.empty() && Request.Smt2.back() != '\n')
    ++Lines;
  Out << "smt2-lines " << Lines << "\n";
  Out << Request.Smt2;
  if (!Request.Smt2.empty() && Request.Smt2.back() != '\n')
    Out << "\n";
  Out << EndLine << "\n";
  return Out.str();
}

std::optional<SmtQueryRequest>
selgen::decodeSmtQueryRequest(const std::string &Payload, std::string *Error) {
  std::istringstream Stream(Payload);
  if (!expectHeader(Stream, "smt")) {
    fail(Error, "bad header");
    return std::nullopt;
  }

  SmtQueryRequest Request;
  std::string Line;
  bool SawEnd = false;
  while (std::getline(Stream, Line)) {
    std::string Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    if (Trimmed == EndLine) {
      SawEnd = true;
      break;
    }
    if (startsWith(Trimmed, "policy ")) {
      std::istringstream Fields(Trimmed.substr(7));
      if (!(Fields >> Request.Policy.TimeoutMs >>
            Request.Policy.RlimitPerQuery >> Request.Policy.DeadlineSeconds)) {
        fail(Error, "bad policy");
        return std::nullopt;
      }
    } else if (Trimmed == "retry-scale" ||
               startsWith(Trimmed, "retry-scale ")) {
      std::istringstream Fields(
          Trimmed.size() > 11 ? Trimmed.substr(12) : "");
      std::vector<unsigned> Scale;
      unsigned Value = 0;
      while (Fields >> Value)
        Scale.push_back(Value);
      Request.Policy.RetryScale = std::move(Scale);
    } else if (startsWith(Trimmed, "eval ")) {
      std::istringstream Fields(Trimmed.substr(5));
      std::string Name;
      unsigned Width = 0;
      if (!(Fields >> Name >> Width) || Width == 0) {
        fail(Error, "bad eval");
        return std::nullopt;
      }
      Request.Eval.emplace_back(Name, Width);
    } else if (startsWith(Trimmed, "smt2-lines ")) {
      size_t Lines = static_cast<size_t>(std::atoll(Trimmed.substr(11).c_str()));
      if (Lines > 1u << 20) {
        fail(Error, "bad smt2 length");
        return std::nullopt;
      }
      for (size_t I = 0; I < Lines; ++I) {
        if (!std::getline(Stream, Line)) {
          fail(Error, "truncated smt2");
          return std::nullopt;
        }
        Request.Smt2 += Line + "\n";
      }
    } else {
      fail(Error, "unknown field: " + Trimmed);
      return std::nullopt;
    }
  }
  if (!SawEnd) {
    fail(Error, "truncated request");
    return std::nullopt;
  }
  return Request;
}

std::string selgen::encodeSmtQueryReply(const SmtQueryReply &Reply) {
  std::ostringstream Out;
  Out << MagicLine << "\n";
  Out << "kind smt-reply\n";
  Out << "result "
      << (Reply.Result == SmtResult::Sat
              ? "sat"
              : Reply.Result == SmtResult::Unsat ? "unsat" : "unknown")
      << "\n";
  Out << "failure " << smtFailureName(Reply.Failure) << "\n";
  Out << "model";
  for (const BitValue &V : Reply.Model)
    Out << " " << encodeBits(V);
  Out << "\n";
  Out << EndLine << "\n";
  return Out.str();
}

std::optional<SmtQueryReply>
selgen::decodeSmtQueryReply(const std::string &Payload, std::string *Error) {
  std::istringstream Stream(Payload);
  if (!expectHeader(Stream, "smt-reply")) {
    fail(Error, "bad header");
    return std::nullopt;
  }

  SmtQueryReply Reply;
  std::string Line;
  bool SawEnd = false;
  while (std::getline(Stream, Line)) {
    std::string Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    if (Trimmed == EndLine) {
      SawEnd = true;
      break;
    }
    if (startsWith(Trimmed, "result ")) {
      std::string Name = trimString(Trimmed.substr(7));
      if (Name == "sat")
        Reply.Result = SmtResult::Sat;
      else if (Name == "unsat")
        Reply.Result = SmtResult::Unsat;
      else if (Name == "unknown")
        Reply.Result = SmtResult::Unknown;
      else {
        fail(Error, "bad result");
        return std::nullopt;
      }
    } else if (startsWith(Trimmed, "failure ")) {
      std::optional<SmtFailure> Failure =
          failureFromName(trimString(Trimmed.substr(8)));
      if (!Failure) {
        fail(Error, "bad failure");
        return std::nullopt;
      }
      Reply.Failure = *Failure;
    } else if (Trimmed == "model" || startsWith(Trimmed, "model ")) {
      std::optional<std::vector<BitValue>> Model =
          decodeBitsList(Trimmed.size() > 5 ? Trimmed.substr(6) : "");
      if (!Model) {
        fail(Error, "bad model");
        return std::nullopt;
      }
      Reply.Model = std::move(*Model);
    } else {
      fail(Error, "unknown field: " + Trimmed);
      return std::nullopt;
    }
  }
  if (!SawEnd) {
    fail(Error, "truncated reply");
    return std::nullopt;
  }
  return Reply;
}

RangeOutcome selgen::remoteSynthesizeRange(SolverPool &Pool,
                                           RangeRequest Request,
                                           TestCorpus &Corpus,
                                           double *StalledSeconds) {
  // Snapshot the shared corpus into the request. The corpus only
  // drives concrete pre-screening — it affects how fast candidates
  // die, never which patterns survive — so shipping a point-in-time
  // snapshot keeps the result bit-exact while other chunks of the
  // goal keep inserting.
  for (const TestCorpus::EntryPtr &E : Corpus.snapshot())
    Request.CorpusSeed.push_back(*E);

  PoolReply Reply =
      Pool.run(encodeRangeRequest(Request), Request.BudgetSeconds);
  if (StalledSeconds)
    *StalledSeconds = Reply.StalledSeconds;

  RangeOutcome Outcome;
  if (!Reply.Ok) {
    Outcome.Complete = false;
    Outcome.Cause = incompleteCauseFromFailure(Reply.Failure);
    return Outcome;
  }
  std::optional<RangeReply> Decoded = decodeRangeReply(Reply.Payload);
  if (!Decoded) {
    // The frame passed its CRC but the payload does not parse: a
    // worker-side bug or version skew. Same containment as a crash.
    Outcome.Complete = false;
    Outcome.Cause = incompleteCauseFromFailure(SmtFailure::Exception);
    return Outcome;
  }
  for (TestCorpus::Entry &E : Decoded->CorpusEntries)
    Corpus.insert(std::move(E.Test), std::move(E.GoalOutcome));
  return std::move(Decoded->Outcome);
}
