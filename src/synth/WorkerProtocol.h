//===- WorkerProtocol.h - Solver worker request encoding ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Payload encoding for the out-of-process solver pool: what travels
/// inside the wire frames of smt/SolverPool between the scheduler and
/// `selgen-solverd` workers. Two request kinds exist:
///
/// * `range` — one enumeration chunk of one goal, the scheduler's own
///   work-stealing granularity (Synthesizer::synthesizeRange). A chunk
///   runs on a fresh SmtContext in-process and the worker replays it on
///   a fresh context too, so the outcome — and therefore the final
///   library — is bit-exact either way. The request carries the goal
///   *name* (both sides build the same GoalLibrary), the effective
///   options, the enumeration plan, the rank range, and a snapshot of
///   the goal's counterexample corpus; the reply carries the
///   RangeOutcome plus the worker's corpus so new counterexamples flow
///   back into the shared pool.
///
/// * `smt` — one standalone solver query: SMT-LIB2 assertions, a
///   SolverPolicy, and the names of bit-vector constants to evaluate
///   under a sat model. This is the protocol's "serialized query" form
///   used by the protocol tests and available for future query-level
///   offload.
///
/// The format follows the SynthesisCache text conventions (field
/// lines, `pattern`/`endpattern` graph blocks, `end` trailer). Framing
/// integrity (length, CRC) is the wire layer's job, so payloads carry
/// no checksum of their own; decoders are still total functions —
/// malformed input yields nullopt, never an abort — because a worker
/// must survive any bytes a fuzzer or fault injector throws at it.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_SYNTH_WORKERPROTOCOL_H
#define SELGEN_SYNTH_WORKERPROTOCOL_H

#include "synth/Synthesizer.h"
#include "synth/TestCorpus.h"

#include <optional>
#include <string>
#include <vector>

namespace selgen {

class SolverPool;

/// Distinguishes the request kinds without fully decoding the payload.
enum class WorkerRequestKind { Range, SmtQuery, Unknown };
WorkerRequestKind peekRequestKind(const std::string &Payload);

/// One enumeration chunk of one goal, shipped to a worker.
struct RangeRequest {
  std::string GoalName;
  SynthesisOptions Options; ///< Effective (per-goal) options.
  SynthesisPlan Plan;
  unsigned Size = 0;
  uint64_t BeginRank = 0;
  uint64_t EndRank = 0;
  /// Wall-clock cap for this chunk; 0 = unlimited. Also drives the
  /// pool's SIGKILL deadline (budget + grace).
  double BudgetSeconds = 0;
  /// Snapshot of the goal's counterexample corpus at dispatch time.
  std::vector<TestCorpus::Entry> CorpusSeed;
};

/// A worker's answer to a RangeRequest.
struct RangeReply {
  RangeOutcome Outcome;
  /// The worker's full corpus after the run; the client inserts these
  /// into the shared corpus (duplicates are rejected by value there).
  std::vector<TestCorpus::Entry> CorpusEntries;
};

std::string encodeRangeRequest(const RangeRequest &Request);
std::optional<RangeRequest> decodeRangeRequest(const std::string &Payload,
                                               std::string *Error = nullptr);
std::string encodeRangeReply(const RangeReply &Reply);
std::optional<RangeReply> decodeRangeReply(const std::string &Payload,
                                           std::string *Error = nullptr);

/// One standalone solver query in SMT-LIB2 form.
struct SmtQueryRequest {
  /// Assertions, parseable by Z3's SMT-LIB2 front end.
  std::string Smt2;
  SolverPolicy Policy;
  /// Bit-vector constants (name, width) to evaluate under a sat model.
  std::vector<std::pair<std::string, unsigned>> Eval;
};

/// The worker's verdict on an SmtQueryRequest.
struct SmtQueryReply {
  SmtResult Result = SmtResult::Unknown;
  SmtFailure Failure = SmtFailure::None;
  /// Model values of the requested constants, in request order
  /// (sat only).
  std::vector<BitValue> Model;
};

std::string encodeSmtQueryRequest(const SmtQueryRequest &Request);
std::optional<SmtQueryRequest>
decodeSmtQueryRequest(const std::string &Payload, std::string *Error = nullptr);
std::string encodeSmtQueryReply(const SmtQueryReply &Reply);
std::optional<SmtQueryReply> decodeSmtQueryReply(const std::string &Payload,
                                                 std::string *Error = nullptr);

/// Runs one chunk remotely: snapshots \p Corpus into the request,
/// round-trips it through \p Pool, merges returned counterexamples
/// back into \p Corpus, and returns the outcome. Pool-level failures
/// (worker crashed / hung past all retries, malformed reply) surface
/// as an incomplete RangeOutcome whose Cause maps the SmtFailure
/// through incompleteCauseFromFailure — exactly the shape an
/// in-process contained failure has, so the scheduler needs no new
/// error paths. When \p StalledSeconds is non-null it receives the
/// wall time the pool burned on condemned worker attempts (crashes,
/// deadline kills) — overhead the caller should refund from its own
/// wall-budget accounting (see PoolReply::StalledSeconds).
RangeOutcome remoteSynthesizeRange(SolverPool &Pool, RangeRequest Request,
                                   TestCorpus &Corpus,
                                   double *StalledSeconds = nullptr);

} // namespace selgen

#endif // SELGEN_SYNTH_WORKERPROTOCOL_H
