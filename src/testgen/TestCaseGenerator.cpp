//===- TestCaseGenerator.cpp - Test programs from patterns ---------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "testgen/TestCaseGenerator.h"

#include "ir/Printer.h"
#include "support/Error.h"
#include "support/Rng.h"
#include "x86/Emulator.h"

#include <algorithm>
#include <map>

using namespace selgen;

namespace {

/// The C operator for a relation; signedness is handled by the caller.
const char *cRelationOperator(Relation Rel) {
  switch (Rel) {
  case Relation::Eq:
    return "==";
  case Relation::Ne:
    return "!=";
  case Relation::Ult:
  case Relation::Slt:
    return "<";
  case Relation::Ule:
  case Relation::Sle:
    return "<=";
  case Relation::Ugt:
  case Relation::Sgt:
    return ">";
  case Relation::Uge:
  case Relation::Sge:
    return ">=";
  }
  SELGEN_UNREACHABLE("bad relation");
}

bool isSignedRelation(Relation Rel) {
  switch (Rel) {
  case Relation::Slt:
  case Relation::Sle:
  case Relation::Sgt:
  case Relation::Sge:
    return true;
  default:
    return false;
  }
}

/// Clones \p Pattern into \p Body, mapping the pattern's arguments to
/// the block's arguments: the pattern's memory argument (if any) maps
/// to block argument 0, value arguments to the following slots in
/// order. Returns the pattern-result values in the new graph.
std::vector<NodeRef> inlinePattern(const Graph &Pattern, Graph &Body) {
  std::map<const Node *, Node *> Mapping;
  unsigned NextValueArg = 1;
  for (const auto &N : Pattern.nodes()) {
    if (N->opcode() != Opcode::Arg)
      continue;
    NodeRef Target = N->resultSort(0).isMemory()
                         ? Body.arg(0)
                         : Body.arg(NextValueArg++);
    Mapping[N.get()] = Target.Def;
  }
  for (Node *N : Pattern.liveNodes()) {
    if (N->opcode() == Opcode::Arg)
      continue;
    std::vector<NodeRef> Operands;
    for (const NodeRef &Operand : N->operands())
      Operands.emplace_back(Mapping.at(Operand.Def), Operand.Index);
    Node *Clone = Body.createNode(N->opcode(), Operands);
    if (N->opcode() == Opcode::Const)
      Clone->setConstValue(N->constValue());
    if (N->opcode() == Opcode::Cmp)
      Clone->setRelation(N->relation());
    Mapping[N] = Clone;
  }
  std::vector<NodeRef> Results;
  for (const NodeRef &Ref : Pattern.results())
    Results.emplace_back(Mapping.at(Ref.Def), Ref.Index);
  return Results;
}

} // namespace

Function selgen::buildPatternTestFunction(const Rule &RuleToTest,
                                          unsigned Width,
                                          const std::string &Name) {
  const Graph &Pattern = RuleToTest.Pattern;
  Function F(Name, Width);

  std::vector<Sort> BlockArgs = {Sort::memory()};
  for (unsigned I = 0; I < Pattern.numArgs(); ++I)
    if (!Pattern.argSort(I).isMemory())
      BlockArgs.push_back(Pattern.argSort(I));

  BasicBlock *Entry = F.createBlock("entry", BlockArgs);
  Graph &Body = Entry->body();
  std::vector<NodeRef> Results = inlinePattern(Pattern, Body);

  // Split the results by sort.
  NodeRef FinalMemory = Body.arg(0);
  std::vector<NodeRef> ValueResults;
  NodeRef BoolResult;
  const Node *CondNode = nullptr;
  for (const NodeRef &Ref : Results) {
    if (Ref.sort().isMemory()) {
      FinalMemory = Ref;
    } else if (Ref.sort().isBool()) {
      if (Ref.Def->opcode() == Opcode::Cond)
        CondNode = Ref.Def;
      else if (!BoolResult.isValid())
        BoolResult = Ref;
    } else {
      ValueResults.push_back(Ref);
    }
  }

  if (!CondNode && !BoolResult.isValid()) {
    std::vector<NodeRef> ReturnValues = {FinalMemory};
    ReturnValues.insert(ReturnValues.end(), ValueResults.begin(),
                        ValueResults.end());
    Entry->setReturn(ReturnValues);
    return F;
  }

  // Compare-and-jump pattern: branch on the condition, return 1/0.
  NodeRef Condition = CondNode
                          ? CondNode->operands()[0]
                          : BoolResult;
  BasicBlock *Taken = F.createBlock("taken", {Sort::memory()});
  BasicBlock *NotTaken = F.createBlock("nottaken", {Sort::memory()});
  Entry->setBranch(Condition, Taken, {FinalMemory}, NotTaken, {FinalMemory});
  {
    Graph &G = Taken->body();
    Taken->setReturn({G.arg(0), G.createConst(BitValue(Width, 1))});
  }
  {
    Graph &G = NotTaken->body();
    NotTaken->setReturn({G.arg(0), G.createConst(BitValue::zero(Width))});
  }
  return F;
}

std::string selgen::emitCTestProgram(const Rule &RuleToTest, unsigned Width,
                                     const std::string &FunctionName) {
  const Graph &Pattern = RuleToTest.Pattern;
  std::string UType = "uint" + std::to_string(Width) + "_t";
  std::string SType = "int" + std::to_string(Width) + "_t";

  std::string Params;
  for (unsigned I = 0; I < Pattern.numArgs(); ++I) {
    if (!Params.empty())
      Params += ", ";
    if (Pattern.argSort(I).isMemory())
      Params += "volatile " + UType + " *mem" + std::to_string(I);
    else
      Params += UType + " a" + std::to_string(I);
  }

  std::map<std::pair<const Node *, unsigned>, std::string> Names;
  for (const auto &N : Pattern.nodes())
    if (N->opcode() == Opcode::Arg)
      Names[{N.get(), 0}] = "a" + std::to_string(N->argIndex());

  std::string Body;
  unsigned NextTemp = 0;
  auto temp = [&NextTemp] { return "t" + std::to_string(NextTemp++); };
  auto use = [&Names](NodeRef Ref) {
    return Names.at({Ref.Def, Ref.Index});
  };

  for (Node *N : Pattern.liveNodes()) {
    std::string Value;
    switch (N->opcode()) {
    case Opcode::Arg:
      continue;
    case Opcode::Const:
      Value = "(" + UType + ")" + N->constValue().toUnsignedString() + "u";
      break;
    case Opcode::Add:
      Value = use(N->operand(0)) + " + " + use(N->operand(1));
      break;
    case Opcode::Sub:
      Value = use(N->operand(0)) + " - " + use(N->operand(1));
      break;
    case Opcode::Mul:
      Value = use(N->operand(0)) + " * " + use(N->operand(1));
      break;
    case Opcode::And:
      Value = use(N->operand(0)) + " & " + use(N->operand(1));
      break;
    case Opcode::Or:
      Value = use(N->operand(0)) + " | " + use(N->operand(1));
      break;
    case Opcode::Xor:
      Value = use(N->operand(0)) + " ^ " + use(N->operand(1));
      break;
    case Opcode::Not:
      Value = "~" + use(N->operand(0));
      break;
    case Opcode::Minus:
      Value = "-" + use(N->operand(0));
      break;
    case Opcode::Shl:
      Value = use(N->operand(0)) + " << " + use(N->operand(1));
      break;
    case Opcode::Shr:
      Value = use(N->operand(0)) + " >> " + use(N->operand(1));
      break;
    case Opcode::Shrs:
      Value = "(" + UType + ")((" + SType + ")" + use(N->operand(0)) +
              " >> " + use(N->operand(1)) + ")";
      break;
    case Opcode::Cmp: {
      std::string Lhs = use(N->operand(0));
      std::string Rhs = use(N->operand(1));
      if (isSignedRelation(N->relation())) {
        Lhs = "(" + SType + ")" + Lhs;
        Rhs = "(" + SType + ")" + Rhs;
      }
      Value = Lhs + " " + cRelationOperator(N->relation()) + " " + Rhs;
      break;
    }
    case Opcode::Mux:
      Value = use(N->operand(0)) + " ? " + use(N->operand(1)) + " : " +
              use(N->operand(2));
      break;
    case Opcode::Load: {
      std::string Name = temp();
      Body += "  " + UType + " " + Name + " = *(volatile " + UType +
              " *)(uintptr_t)(" + use(N->operand(1)) + ");\n";
      Names[{N, 0}] = "mem";
      Names[{N, 1}] = Name;
      continue;
    }
    case Opcode::Store:
      Body += "  *(volatile " + UType + " *)(uintptr_t)(" +
              use(N->operand(1)) + ") = " + use(N->operand(2)) + ";\n";
      Names[{N, 0}] = "mem";
      continue;
    case Opcode::Cond:
      Names[{N, 0}] = use(N->operand(0));
      Names[{N, 1}] = "!(" + use(N->operand(0)) + ")";
      continue;
    }
    std::string Name = temp();
    std::string Type = N->resultSort(0).isBool() ? "int" : UType;
    Body += "  " + Type + " " + Name + " = (" + Type + ")(" + Value +
            ");\n";
    Names[{N, 0}] = Name;
  }

  // Return the first value-ish result (or a branch for jump patterns).
  std::string Return = "  return 0;\n";
  for (const NodeRef &Ref : Pattern.results()) {
    if (Ref.sort().isValue()) {
      Return = "  return " + use(Ref) + ";\n";
      break;
    }
    if (Ref.sort().isBool()) {
      Return = "  return (" + use(Ref) + ") ? 1 : 0;\n";
      break;
    }
  }

  std::string Comment =
      "/* goal: " + RuleToTest.GoalName +
      "; pattern: " + printGraphExpression(Pattern) + " */\n";
  return "#include <stdint.h>\n\n" + Comment + UType + " " + FunctionName +
         "(" + Params + ") {\n" + Body + Return + "}\n";
}

namespace {

/// Compares one compiled function against the IR interpreter.
bool behavesLikeInterpreter(const Function &F, const MachineFunction &MF,
                            unsigned Width, unsigned Runs, Rng &Random) {
  for (unsigned Run = 0; Run < Runs; ++Run) {
    std::vector<BitValue> Args;
    unsigned NumValueArgs = F.entry()->body().numArgs() - 1;
    for (unsigned I = 0; I < NumValueArgs; ++I)
      Args.push_back(Random.nextInterestingBitValue(Width));
    MemoryState Memory;
    for (unsigned I = 0; I < 8; ++I)
      Memory.storeByte(Random.nextBelow(1u << Width),
                       static_cast<uint8_t>(Random.nextBelow(256)));

    FunctionResult Reference = runFunction(F, Args, Memory);
    if (Reference.Undefined)
      continue; // Nothing to check on undefined executions.

    std::map<MReg, BitValue> Regs;
    const auto &ArgRegs = MF.entry()->ArgRegs;
    for (size_t I = 0; I < ArgRegs.size(); ++I)
      Regs[ArgRegs[I]] = Args[I];
    MachineRunResult Machine = runMachineFunction(MF, Regs, Memory);

    if (Machine.ReturnValues.size() != Reference.ReturnValues.size())
      return false;
    for (size_t I = 0; I < Reference.ReturnValues.size(); ++I)
      if (Machine.ReturnValues[I] != Reference.ReturnValues[I])
        return false;
    if (Reference.FinalMemory)
      for (const auto &[Address, Value] : Reference.FinalMemory->bytes())
        if (Machine.Memory.peekByte(Address) != Value)
          return false;
  }
  return true;
}

} // namespace

MissingPatternReport selgen::runMissingPatternExperiment(
    const PatternDatabase &Database, unsigned Width,
    const std::vector<InstructionSelector *> &Compilers,
    unsigned ValidationRuns, uint64_t Seed) {
  MissingPatternReport Report;
  for (InstructionSelector *Compiler : Compilers)
    Report.CompilerNames.push_back(Compiler->name());
  Report.TotalMissing.assign(Compilers.size(), 0);
  Rng Random(Seed);

  unsigned Index = 0;
  for (const Rule &R : Database.rules()) {
    Function F = buildPatternTestFunction(
        R, Width, "test" + std::to_string(Index++));

    MissingPatternRow Row;
    Row.GoalName = R.GoalName;
    Row.PatternExpression = printGraphExpression(R.Pattern);

    for (InstructionSelector *Compiler : Compilers) {
      SelectionResult Selected = Compiler->select(F);
      Row.InstructionCounts.push_back(Selected.MF->numInstructions());
      if (ValidationRuns > 0 &&
          !behavesLikeInterpreter(F, *Selected.MF, Width, ValidationRuns,
                                  Random))
        Row.BehaviourMismatch = true;
    }

    unsigned Best = *std::min_element(Row.InstructionCounts.begin(),
                                      Row.InstructionCounts.end());
    bool AllReferencesMiss = Compilers.size() > 1;
    for (size_t I = 0; I < Compilers.size(); ++I) {
      bool Misses = Row.InstructionCounts[I] > Best;
      Row.Missing.push_back(Misses);
      if (Misses)
        ++Report.TotalMissing[I];
      if (I >= 1 && !Misses)
        AllReferencesMiss = false;
    }
    if (AllReferencesMiss)
      ++Report.MissingInAllReferences;

    ++Report.TotalTests;
    Report.Rows.push_back(std::move(Row));
  }
  return Report;
}
