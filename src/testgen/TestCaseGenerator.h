//===- TestCaseGenerator.h - Test programs from patterns ---------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The test-case generator of paper Sections 5.7/7.4: every rule in
/// the pattern database becomes (a) a runnable IR function that can be
/// compiled by any of the project's instruction selectors, and (b) a
/// C program, like the artifact's run-tests.sh emits. The
/// missing-pattern experiment compiles each test function with a set
/// of compilers, counts emitted instructions, and flags the compilers
/// that need more instructions than the best one — the paper's
/// "unsupported pattern" criterion.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_TESTGEN_TESTCASEGENERATOR_H
#define SELGEN_TESTGEN_TESTCASEGENERATOR_H

#include "isel/Selector.h"
#include "pattern/PatternDatabase.h"

#include <string>
#include <vector>

namespace selgen {

/// Wraps a rule's pattern into a complete runnable Function. Value and
/// memory results are returned; boolean results (compare-and-jump
/// patterns) become a two-way branch returning 1 or 0.
Function buildPatternTestFunction(const Rule &RuleToTest, unsigned Width,
                                  const std::string &Name);

/// Emits a self-contained C translation unit for the pattern — the
/// shape of program the artifact feeds to GCC and Clang.
std::string emitCTestProgram(const Rule &RuleToTest, unsigned Width,
                             const std::string &FunctionName);

/// One row of the Section 7.4 comparison.
struct MissingPatternRow {
  std::string GoalName;
  std::string PatternExpression;
  std::vector<unsigned> InstructionCounts; ///< Per compiler.
  std::vector<bool> Missing;               ///< Count exceeds the best.
  bool BehaviourMismatch = false; ///< Differential test failed somewhere.
};

/// Aggregated report.
struct MissingPatternReport {
  std::vector<std::string> CompilerNames;
  std::vector<MissingPatternRow> Rows;
  std::vector<unsigned> TotalMissing; ///< Per compiler.
  /// Patterns missing in every compiler except the best one's
  /// (the paper's "29 498 rules that both Clang and GCC miss" when run
  /// with [prototype, gnu-like, clang-like]).
  unsigned MissingInAllReferences = 0;
  unsigned TotalTests = 0;
};

/// Runs the comparison: each rule's test function is compiled with
/// every compiler; a compiler "misses" the pattern if it emits more
/// instructions than the minimum across compilers. Compilers at index
/// >= 1 are the references for MissingInAllReferences. If
/// \p ValidationRuns > 0, each compiled function is differentially
/// tested against the IR interpreter on that many random inputs.
MissingPatternReport
runMissingPatternExperiment(const PatternDatabase &Database, unsigned Width,
                            const std::vector<InstructionSelector *> &Compilers,
                            unsigned ValidationRuns = 0,
                            uint64_t Seed = 0xC0DE);

} // namespace selgen

#endif // SELGEN_TESTGEN_TESTCASEGENERATOR_H
