//===- AddressingMode.cpp - x86 addressing-mode descriptors ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "x86/AddressingMode.h"

#include <cassert>

using namespace selgen;

std::string AddressingMode::suffix() const {
  std::string Result;
  if (HasBase)
    Result += "b";
  if (HasIndex) {
    Result += "i";
    if (Scale != 1)
      Result += "s";
  }
  if (HasDisp)
    Result += "d";
  if (HasIndex && Scale != 1)
    Result += std::to_string(Scale);
  return Result;
}

void AddressingMode::appendArgs(std::vector<Sort> &Sorts,
                                std::vector<ArgRole> &Roles,
                                unsigned Width) const {
  if (HasBase) {
    Sorts.push_back(Sort::value(Width));
    Roles.push_back(ArgRole::Reg);
  }
  if (HasIndex) {
    Sorts.push_back(Sort::value(Width));
    Roles.push_back(ArgRole::Reg);
  }
  if (HasDisp) {
    Sorts.push_back(Sort::value(Width));
    Roles.push_back(ArgRole::Imm);
  }
}

z3::expr AddressingMode::addressExpr(SmtContext &Smt, unsigned Width,
                                     const std::vector<z3::expr> &Args,
                                     unsigned Offset) const {
  z3::expr Address = Smt.ctx().bv_val(0, Width);
  unsigned Index = Offset;
  if (HasBase)
    Address = Address + Args[Index++];
  if (HasIndex)
    Address = Address + Args[Index++] * Smt.ctx().bv_val(Scale, Width);
  if (HasDisp)
    Address = Address + Args[Index++];
  return Address.simplify();
}

BitValue AddressingMode::addressBits(unsigned Width,
                                     const std::vector<BitValue> &Args,
                                     unsigned Offset) const {
  BitValue Address(Width, 0);
  unsigned Index = Offset;
  if (HasBase)
    Address = Address.add(Args[Index++]);
  if (HasIndex)
    Address = Address.add(Args[Index++].mul(BitValue(Width, Scale)));
  if (HasDisp)
    Address = Address.add(Args[Index++]);
  return Address;
}

MemRef AddressingMode::memRef(const std::vector<MOperand> &Bound,
                              unsigned Offset) const {
  MemRef Ref;
  unsigned Index = Offset;
  if (HasBase) {
    assert(Bound[Index].isReg() && "base must be a register");
    Ref.Base = Bound[Index++].R;
  }
  if (HasIndex) {
    assert(Bound[Index].isReg() && "index must be a register");
    Ref.Index = Bound[Index++].R;
    Ref.Scale = Scale;
  }
  if (HasDisp) {
    assert(Bound[Index].isImm() && "displacement must be an immediate");
    Ref.Disp = Bound[Index++].Imm.sextValue();
  }
  return Ref;
}

const std::vector<AddressingMode> &AddressingMode::fullSet() {
  static const std::vector<AddressingMode> Modes = [] {
    std::vector<AddressingMode> Result;
    Result.push_back({true, false, 1, false}); // b
    Result.push_back({true, false, 1, true});  // bd
    Result.push_back({true, true, 1, false});  // bi
    Result.push_back({true, true, 1, true});   // bid
    for (unsigned Scale : {2u, 4u, 8u}) {
      Result.push_back({true, true, Scale, false}); // bis
      Result.push_back({true, true, Scale, true});  // bisd
    }
    return Result;
  }();
  return Modes;
}
