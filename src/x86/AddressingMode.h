//===- AddressingMode.h - x86 addressing-mode descriptors --------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptors for the x86 addressing modes
/// [base + index * scale + disp] ("the famous addressing modes",
/// paper Section 1). Each memory-accessing goal instruction is
/// expanded into one variant per addressing mode, exactly like the
/// artifact's --srcam/--destam switches: "an instruction's synthesis
/// takes longer the more components its addressing mode has"
/// (paper Appendix A.6).
///
/// The base and index are Reg-role goal arguments; the displacement is
/// an Imm-role argument (a symbolic immediate).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_X86_ADDRESSINGMODE_H
#define SELGEN_X86_ADDRESSINGMODE_H

#include "semantics/InstrSpec.h"
#include "x86/MachineIR.h"

#include <string>
#include <vector>

namespace selgen {

/// One addressing-mode shape.
struct AddressingMode {
  bool HasBase = true;
  bool HasIndex = false;
  unsigned Scale = 1; ///< 1, 2, 4, or 8; meaningful only with HasIndex.
  bool HasDisp = false;

  /// Short suffix used in goal names: "b", "bd", "bi", "bis4", ...
  std::string suffix() const;

  /// Number of goal arguments this mode contributes (base + index +
  /// disp as present).
  unsigned numArgs() const {
    return (HasBase ? 1 : 0) + (HasIndex ? 1 : 0) + (HasDisp ? 1 : 0);
  }

  /// Number of address components (the paper's complexity measure).
  unsigned numComponents() const {
    return (HasBase ? 1 : 0) + (HasIndex ? 1 : 0) + (Scale != 1 ? 1 : 0) +
           (HasDisp ? 1 : 0);
  }

  /// Appends this mode's argument sorts and roles to a goal interface.
  void appendArgs(std::vector<Sort> &Sorts, std::vector<ArgRole> &Roles,
                  unsigned Width) const;

  /// The address expression over goal arguments; \p Offset is the
  /// index of this mode's first argument within \p Args.
  z3::expr addressExpr(SmtContext &Smt, unsigned Width,
                       const std::vector<z3::expr> &Args,
                       unsigned Offset) const;

  /// Concrete twin of addressExpr over BitValue arguments, used by the
  /// CEGIS concrete pre-screen. Must mirror addressExpr exactly.
  BitValue addressBits(unsigned Width, const std::vector<BitValue> &Args,
                       unsigned Offset) const;

  /// Builds the machine memory operand from matched operand bindings;
  /// \p Offset as above. Reg-role bindings must be registers, the
  /// displacement binding an immediate.
  MemRef memRef(const std::vector<MOperand> &Bound, unsigned Offset) const;

  /// The standard set of source addressing modes used by the full
  /// setup: b, bd, bi, bid, bis{2,4,8}, bisd{2,4,8}.
  static const std::vector<AddressingMode> &fullSet();

  /// Just [base] — the basic setup's only mode.
  static AddressingMode baseOnly() { return {}; }
};

} // namespace selgen

#endif // SELGEN_X86_ADDRESSINGMODE_H
