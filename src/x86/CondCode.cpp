//===- CondCode.cpp - x86 condition codes ------------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "x86/CondCode.h"

#include "support/Error.h"

using namespace selgen;

CondCode selgen::condCodeForRelation(Relation Rel) {
  switch (Rel) {
  case Relation::Eq:
    return CondCode::E;
  case Relation::Ne:
    return CondCode::NE;
  case Relation::Ult:
    return CondCode::B;
  case Relation::Ule:
    return CondCode::BE;
  case Relation::Ugt:
    return CondCode::A;
  case Relation::Uge:
    return CondCode::AE;
  case Relation::Slt:
    return CondCode::L;
  case Relation::Sle:
    return CondCode::LE;
  case Relation::Sgt:
    return CondCode::G;
  case Relation::Sge:
    return CondCode::GE;
  }
  SELGEN_UNREACHABLE("bad relation");
}

Relation selgen::relationForCondCode(CondCode CC) {
  switch (CC) {
  case CondCode::E:
    return Relation::Eq;
  case CondCode::NE:
    return Relation::Ne;
  case CondCode::B:
    return Relation::Ult;
  case CondCode::BE:
    return Relation::Ule;
  case CondCode::A:
    return Relation::Ugt;
  case CondCode::AE:
    return Relation::Uge;
  case CondCode::L:
    return Relation::Slt;
  case CondCode::LE:
    return Relation::Sle;
  case CondCode::G:
    return Relation::Sgt;
  case CondCode::GE:
    return Relation::Sge;
  case CondCode::S:
  case CondCode::NS:
    SELGEN_UNREACHABLE("S/NS have no two-operand relation");
  }
  SELGEN_UNREACHABLE("bad condition code");
}

const char *selgen::condCodeName(CondCode CC) {
  switch (CC) {
  case CondCode::E:
    return "e";
  case CondCode::NE:
    return "ne";
  case CondCode::B:
    return "b";
  case CondCode::BE:
    return "be";
  case CondCode::A:
    return "a";
  case CondCode::AE:
    return "ae";
  case CondCode::L:
    return "l";
  case CondCode::LE:
    return "le";
  case CondCode::G:
    return "g";
  case CondCode::GE:
    return "ge";
  case CondCode::S:
    return "s";
  case CondCode::NS:
    return "ns";
  }
  SELGEN_UNREACHABLE("bad condition code");
}

const std::vector<CondCode> &selgen::relationCondCodes() {
  static const std::vector<CondCode> All = {
      CondCode::E, CondCode::NE, CondCode::B,  CondCode::BE,
      CondCode::A, CondCode::AE, CondCode::L,  CondCode::LE,
      CondCode::G, CondCode::GE};
  return All;
}
