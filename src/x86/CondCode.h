//===- CondCode.h - x86 condition codes ---------------------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// x86 condition codes and their correspondence with IR comparison
/// relations. The paper treats a compare-and-jump pair as one goal
/// instruction and synthesizes per condition code (Sections 4.2/5);
/// the mapping below drives that enumeration.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_X86_CONDCODE_H
#define SELGEN_X86_CONDCODE_H

#include "ir/Opcode.h"

namespace selgen {

/// The integer condition codes of the jcc/setcc/cmovcc families.
enum class CondCode {
  E,  ///< Equal (ZF).
  NE, ///< Not equal.
  B,  ///< Below (unsigned <, CF).
  BE, ///< Below or equal.
  A,  ///< Above (unsigned >).
  AE, ///< Above or equal.
  L,  ///< Less (signed <).
  LE, ///< Less or equal.
  G,  ///< Greater (signed >).
  GE, ///< Greater or equal.
  S,  ///< Sign (SF).
  NS, ///< No sign.
};

/// The condition code selecting on the result of "cmp a, b" that
/// realizes relation \p Rel.
CondCode condCodeForRelation(Relation Rel);

/// The relation computed by "cmp a, b; jcc" for \p CC. S/NS have no
/// two-operand relation (they test the sign of a subtraction) and
/// assert.
Relation relationForCondCode(CondCode CC);

/// Mnemonic suffix, e.g. "e", "ne", "b".
const char *condCodeName(CondCode CC);

/// The ten condition codes that mirror relations (excluding S/NS).
const std::vector<CondCode> &relationCondCodes();

} // namespace selgen

#endif // SELGEN_X86_CONDCODE_H
