//===- Emulator.cpp - x86-like machine code emulator --------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "x86/Emulator.h"

#include "support/Error.h"

using namespace selgen;

namespace {

/// EFLAGS subset.
struct Flags {
  bool ZF = false;
  bool SF = false;
  bool CF = false;
  bool OF = false;
};

/// Machine state during emulation.
class Machine {
public:
  Machine(const MachineFunction &MF, const std::map<MReg, BitValue> &InitialRegs,
          const MemoryState &InitialMemory, uint64_t MaxInstructions)
      : MF(MF), Regs(InitialRegs), MaxInstructions(MaxInstructions) {
    Result.Memory = InitialMemory;
  }

  MachineRunResult run() {
    const MachineBlock *Current = MF.entry();
    while (true) {
      for (const MachineInstr &Instr : Current->instructions()) {
        if (++Result.InstructionCount > MaxInstructions) {
          Result.StepLimitHit = true;
          return std::move(Result);
        }
        Result.Cycles += instructionCost(Instr);
        execute(Instr);
      }
      const MTerminator &Term = Current->terminator();
      switch (Term.TermKind) {
      case MTerminator::Kind::Ret:
        Result.Cycles += 1;
        for (const MOperand &Value : Term.ReturnValues)
          Result.ReturnValues.push_back(evalOperand(Value));
        return std::move(Result);
      case MTerminator::Kind::Jmp:
        if (++Result.InstructionCount > MaxInstructions) {
          Result.StepLimitHit = true;
          return std::move(Result);
        }
        Result.Cycles += 1 + Term.ThenMoves.size();
        applyMoves(Term.ThenMoves);
        Current = Term.Then;
        break;
      case MTerminator::Kind::Jcc: {
        if (++Result.InstructionCount > MaxInstructions) {
          Result.StepLimitHit = true;
          return std::move(Result);
        }
        bool Taken = evalCondCode(Term.CC);
        const auto &Moves = Taken ? Term.ThenMoves : Term.ElseMoves;
        Result.Cycles += 2 + Moves.size();
        applyMoves(Moves);
        Current = Taken ? Term.Then : Term.Else;
        break;
      }
      }
    }
  }

private:
  const MachineFunction &MF;
  std::map<MReg, BitValue> Regs;
  Flags F;
  uint64_t MaxInstructions;
  MachineRunResult Result;

  unsigned width() const { return MF.width(); }

  BitValue regValue(MReg R) const {
    auto It = Regs.find(R);
    assert(It != Regs.end() && "read of undefined virtual register");
    if (It == Regs.end())
      return BitValue::zero(width());
    return It->second;
  }

  uint64_t effectiveAddress(const MemRef &M) const {
    BitValue Address = BitValue::zero(width());
    if (M.Base)
      Address = Address.add(regValue(*M.Base));
    if (M.Index)
      Address = Address.add(
          regValue(*M.Index).mul(BitValue(width(), M.Scale)));
    Address = Address.add(
        BitValue(width(), static_cast<uint64_t>(M.Disp)));
    return Address.zextValue();
  }

  BitValue evalOperand(const MOperand &Op) {
    switch (Op.K) {
    case MOperand::Kind::Reg:
      return regValue(Op.R);
    case MOperand::Kind::Imm:
      assert(Op.Imm.width() == width() && "immediate width mismatch");
      return Op.Imm;
    case MOperand::Kind::Mem:
      return Result.Memory.loadValue(effectiveAddress(Op.M), width() / 8);
    case MOperand::Kind::None:
      break;
    }
    SELGEN_UNREACHABLE("bad source operand");
  }

  void writeDest(const MOperand &Dst, const BitValue &Value) {
    switch (Dst.K) {
    case MOperand::Kind::Reg:
      Regs[Dst.R] = Value;
      return;
    case MOperand::Kind::Mem:
      Result.Memory.storeValue(effectiveAddress(Dst.M), Value);
      return;
    default:
      SELGEN_UNREACHABLE("bad destination operand");
    }
  }

  void applyMoves(const std::vector<std::pair<MReg, MOperand>> &Moves) {
    // Parallel semantics: read all sources before writing.
    std::vector<BitValue> Values;
    Values.reserve(Moves.size());
    for (const auto &[Dst, Src] : Moves)
      Values.push_back(evalOperand(Src));
    for (unsigned I = 0; I < Moves.size(); ++I)
      Regs[Moves[I].first] = Values[I];
  }

  void setLogicFlags(const BitValue &Value) {
    F.ZF = Value.isZero();
    F.SF = Value.isNegative();
    F.CF = false;
    F.OF = false;
  }

  void setAddFlags(const BitValue &A, const BitValue &B,
                   const BitValue &Sum) {
    F.ZF = Sum.isZero();
    F.SF = Sum.isNegative();
    F.CF = Sum.ult(A);
    F.OF = (A.isNegative() == B.isNegative()) &&
           (Sum.isNegative() != A.isNegative());
  }

  void setSubFlags(const BitValue &A, const BitValue &B,
                   const BitValue &Difference) {
    F.ZF = Difference.isZero();
    F.SF = Difference.isNegative();
    F.CF = A.ult(B);
    F.OF = (A.isNegative() != B.isNegative()) &&
           (Difference.isNegative() != A.isNegative());
  }

  bool evalCondCode(CondCode CC) const {
    switch (CC) {
    case CondCode::E:
      return F.ZF;
    case CondCode::NE:
      return !F.ZF;
    case CondCode::B:
      return F.CF;
    case CondCode::BE:
      return F.CF || F.ZF;
    case CondCode::A:
      return !F.CF && !F.ZF;
    case CondCode::AE:
      return !F.CF;
    case CondCode::L:
      return F.SF != F.OF;
    case CondCode::LE:
      return F.ZF || (F.SF != F.OF);
    case CondCode::G:
      return !F.ZF && (F.SF == F.OF);
    case CondCode::GE:
      return F.SF == F.OF;
    case CondCode::S:
      return F.SF;
    case CondCode::NS:
      return !F.SF;
    }
    SELGEN_UNREACHABLE("bad condition code");
  }

  void execute(const MachineInstr &Instr) {
    switch (Instr.Op) {
    case MOpcode::Mov:
      writeDest(Instr.Dst, evalOperand(Instr.Src1));
      return;
    case MOpcode::Lea: {
      assert(Instr.Src1.isMem() && "lea needs a memory operand");
      writeDest(Instr.Dst,
                BitValue(width(), effectiveAddress(Instr.Src1.M)));
      return;
    }
    case MOpcode::Neg: {
      BitValue Src = evalOperand(Instr.Src1);
      BitValue Value = Src.neg();
      writeDest(Instr.Dst, Value);
      F.ZF = Value.isZero();
      F.SF = Value.isNegative();
      F.CF = !Src.isZero();
      F.OF = Src == BitValue::signBit(width());
      return;
    }
    case MOpcode::Not:
      // x86 not does not modify flags.
      writeDest(Instr.Dst, evalOperand(Instr.Src1).bitNot());
      return;
    case MOpcode::Inc: {
      BitValue Src = evalOperand(Instr.Src1);
      BitValue One(width(), 1);
      BitValue Value = Src.add(One);
      writeDest(Instr.Dst, Value);
      bool SavedCF = F.CF; // inc preserves CF.
      setAddFlags(Src, One, Value);
      F.CF = SavedCF;
      return;
    }
    case MOpcode::Dec: {
      BitValue Src = evalOperand(Instr.Src1);
      BitValue One(width(), 1);
      BitValue Value = Src.sub(One);
      writeDest(Instr.Dst, Value);
      bool SavedCF = F.CF; // dec preserves CF.
      setSubFlags(Src, One, Value);
      F.CF = SavedCF;
      return;
    }
    case MOpcode::Add: {
      BitValue A = evalOperand(Instr.Src1), B = evalOperand(Instr.Src2);
      BitValue Value = A.add(B);
      writeDest(Instr.Dst, Value);
      setAddFlags(A, B, Value);
      return;
    }
    case MOpcode::Sub: {
      BitValue A = evalOperand(Instr.Src1), B = evalOperand(Instr.Src2);
      BitValue Value = A.sub(B);
      writeDest(Instr.Dst, Value);
      setSubFlags(A, B, Value);
      return;
    }
    case MOpcode::Imul: {
      BitValue Value =
          evalOperand(Instr.Src1).mul(evalOperand(Instr.Src2));
      writeDest(Instr.Dst, Value);
      return;
    }
    case MOpcode::And:
    case MOpcode::Or:
    case MOpcode::Xor: {
      BitValue A = evalOperand(Instr.Src1), B = evalOperand(Instr.Src2);
      BitValue Value = Instr.Op == MOpcode::And  ? A.bitAnd(B)
                       : Instr.Op == MOpcode::Or ? A.bitOr(B)
                                                 : A.bitXor(B);
      writeDest(Instr.Dst, Value);
      setLogicFlags(Value);
      return;
    }
    case MOpcode::Shl:
    case MOpcode::Shr:
    case MOpcode::Sar:
    case MOpcode::Rol:
    case MOpcode::Ror: {
      BitValue A = evalOperand(Instr.Src1);
      // x86 masks the shift count to the operand width.
      unsigned Count = static_cast<unsigned>(
          evalOperand(Instr.Src2).zextValue() % width());
      BitValue Value = A;
      switch (Instr.Op) {
      case MOpcode::Shl:
        Value = A.shl(Count);
        break;
      case MOpcode::Shr:
        Value = A.lshr(Count);
        break;
      case MOpcode::Sar:
        Value = A.ashr(Count);
        break;
      case MOpcode::Rol:
        Value = A.rotl(Count);
        break;
      case MOpcode::Ror:
        Value = A.rotr(Count);
        break;
      default:
        SELGEN_UNREACHABLE("not a shift");
      }
      writeDest(Instr.Dst, Value);
      if (Count != 0) {
        F.ZF = Value.isZero();
        F.SF = Value.isNegative();
      }
      return;
    }
    case MOpcode::Andn: {
      BitValue Value =
          evalOperand(Instr.Src1).bitNot().bitAnd(evalOperand(Instr.Src2));
      writeDest(Instr.Dst, Value);
      setLogicFlags(Value);
      return;
    }
    case MOpcode::Blsr: {
      BitValue A = evalOperand(Instr.Src1);
      BitValue Value = A.bitAnd(A.sub(BitValue(width(), 1)));
      writeDest(Instr.Dst, Value);
      setLogicFlags(Value);
      return;
    }
    case MOpcode::Blsi: {
      BitValue A = evalOperand(Instr.Src1);
      BitValue Value = A.bitAnd(A.neg());
      writeDest(Instr.Dst, Value);
      setLogicFlags(Value);
      return;
    }
    case MOpcode::Blsmsk: {
      BitValue A = evalOperand(Instr.Src1);
      BitValue Value = A.bitXor(A.sub(BitValue(width(), 1)));
      writeDest(Instr.Dst, Value);
      setLogicFlags(Value);
      return;
    }
    case MOpcode::Cmp: {
      BitValue A = evalOperand(Instr.Src1), B = evalOperand(Instr.Src2);
      setSubFlags(A, B, A.sub(B));
      return;
    }
    case MOpcode::Test: {
      BitValue Value =
          evalOperand(Instr.Src1).bitAnd(evalOperand(Instr.Src2));
      setLogicFlags(Value);
      return;
    }
    case MOpcode::Cmov:
      writeDest(Instr.Dst, evalCondCode(Instr.CC)
                               ? evalOperand(Instr.Src1)
                               : evalOperand(Instr.Src2));
      return;
    case MOpcode::Setcc:
      writeDest(Instr.Dst,
                BitValue(width(), evalCondCode(Instr.CC) ? 1 : 0));
      return;
    }
    SELGEN_UNREACHABLE("bad machine opcode");
  }
};

} // namespace

uint64_t selgen::instructionCost(const MachineInstr &Instr) {
  uint64_t Cost = 1;
  switch (Instr.Op) {
  case MOpcode::Mov:
  case MOpcode::Lea:
  case MOpcode::Neg:
  case MOpcode::Not:
  case MOpcode::Inc:
  case MOpcode::Dec:
  case MOpcode::Add:
  case MOpcode::Sub:
  case MOpcode::And:
  case MOpcode::Or:
  case MOpcode::Xor:
  case MOpcode::Shl:
  case MOpcode::Shr:
  case MOpcode::Sar:
  case MOpcode::Rol:
  case MOpcode::Ror:
  case MOpcode::Andn:
  case MOpcode::Blsr:
  case MOpcode::Blsi:
  case MOpcode::Blsmsk:
  case MOpcode::Cmp:
  case MOpcode::Test:
    Cost = 1;
    break;
  case MOpcode::Imul:
    Cost = 3;
    break;
  case MOpcode::Cmov:
    Cost = 1;
    break;
  case MOpcode::Setcc:
    Cost = 2;
    break;
  }
  // Memory operands cost extra: a load on a source, a load+store on a
  // read-modify-write destination (Lea only computes the address).
  if (Instr.Op != MOpcode::Lea) {
    if (Instr.Src1.isMem() || Instr.Src2.isMem())
      Cost += 3;
    if (Instr.Dst.isMem())
      Cost += Instr.Op == MOpcode::Mov ? 3 : 4;
  }
  return Cost;
}

MachineRunResult
selgen::runMachineFunction(const MachineFunction &MF,
                           const std::map<MReg, BitValue> &InitialRegs,
                           const MemoryState &InitialMemory,
                           uint64_t MaxInstructions) {
  return Machine(MF, InitialRegs, InitialMemory, MaxInstructions).run();
}
