//===- Emulator.h - x86-like machine code emulator ---------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes MachineFunctions. This emulator substitutes for the
/// paper's hardware testbed: the evaluation harness measures dynamic,
/// cost-weighted instruction counts ("cycles") instead of wall-clock
/// seconds. The per-opcode cost table is a coarse micro-op model whose
/// purpose is to make better instruction selection (fewer, cheaper
/// instructions; folded addressing modes) visible in the totals.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_X86_EMULATOR_H
#define SELGEN_X86_EMULATOR_H

#include "ir/Memory.h"
#include "x86/MachineIR.h"

#include <map>

namespace selgen {

/// Result of running a machine function.
struct MachineRunResult {
  bool StepLimitHit = false;
  std::vector<BitValue> ReturnValues;
  MemoryState Memory;
  uint64_t InstructionCount = 0; ///< Dynamic instructions executed.
  uint64_t Cycles = 0;           ///< Cost-weighted dynamic count.
};

/// Runs \p MF. \p InitialRegs seeds virtual registers (the entry
/// block's ArgRegs are expected to be covered). \p MaxInstructions
/// bounds execution (loops!).
MachineRunResult
runMachineFunction(const MachineFunction &MF,
                   const std::map<MReg, BitValue> &InitialRegs,
                   const MemoryState &InitialMemory,
                   uint64_t MaxInstructions = 1u << 22);

/// The cost (in model cycles) of one instruction, including its
/// operand kinds (memory operands cost extra). Exposed so benches can
/// report static cost sums as well.
uint64_t instructionCost(const MachineInstr &Instr);

} // namespace selgen

#endif // SELGEN_X86_EMULATOR_H
