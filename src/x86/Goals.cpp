//===- Goals.cpp - The x86 goal-instruction library --------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "x86/Goals.h"

#include "ir/Interpreter.h"
#include "semantics/IrSemantics.h"
#include "support/Error.h"

#include <cassert>

using namespace selgen;

namespace {

/// Shorthands used by every goal builder below.
/// x86 masks shift counts to the operand width (taken from the
/// operand's sort).
static z3::expr maskCount(const z3::expr &Count) {
  unsigned Width = Count.get_sort().bv_size();
  assert((Width & (Width - 1)) == 0 && "width must be a power of two");
  return Count & Count.ctx().bv_val(Width - 1, Width);
}

/// Concrete twin of maskCount; returns the masked count as a host
/// integer (always < width, so it fits).
static unsigned maskCountBits(const BitValue &Count) {
  unsigned Width = Count.width();
  return static_cast<unsigned>(
      Count.bitAnd(BitValue(Width, Width - 1)).zextValue());
}

/// Booleans cross the concrete-evaluation boundary as width-1 values
/// (see InstrSpec::computeResultsConcrete).
static BitValue boolBits(bool Value) { return BitValue(1, Value ? 1 : 0); }

struct GoalBuilder {
  GoalLibrary &Library;
  unsigned Width;

  Sort V() const { return Sort::value(Width); }
  Sort B() const { return Sort::boolean(); }
  Sort M() const { return Sort::memory(); }


  void add(std::string Name, std::string Group, std::vector<Sort> ArgSorts,
           std::vector<ArgRole> Roles, std::vector<Sort> ResultSorts,
           LambdaSpec::ResultsFn Results, EmitFn Emit,
           unsigned MaxPatternSize,
           LambdaSpec::PointersFn Pointers = nullptr,
           LambdaSpec::ConcreteFn Concrete = nullptr) {
    GoalInstruction Goal;
    Goal.Name = Name;
    Goal.Group = std::move(Group);
    Goal.Spec = std::make_unique<LambdaSpec>(
        std::move(Name), std::move(ArgSorts), std::move(ResultSorts),
        std::move(Roles), std::move(Results), std::move(Pointers),
        std::move(Concrete));
    Goal.Emit = std::move(Emit);
    Goal.MaxPatternSize = MaxPatternSize;
    Library.add(std::move(Goal));
  }

  /// Valid pointers of one W-bit access at the address computed by
  /// \p AM over the arguments starting at \p Offset: every byte of the
  /// access is a valid pointer (paper Section 4.1, store32 example).
  LambdaSpec::PointersFn accessPointers(AddressingMode AM,
                                        unsigned Offset) const {
    unsigned NumBytes = Width / 8;
    return [AM, Offset, NumBytes](SmtContext &Smt, unsigned W,
                                  const std::vector<z3::expr> &Args) {
      z3::expr Address = AM.addressExpr(Smt, W, Args, Offset);
      std::vector<z3::expr> Pointers;
      for (unsigned I = 0; I < NumBytes; ++I)
        Pointers.push_back((Address + Smt.ctx().bv_val(I, W)).simplify());
      return Pointers;
    };
  }

  // ---- Group builders -------------------------------------------------
  void addBasic();
  void addLoadStore();
  void addUnary();
  void addBinary();
  void addFlags();
  void addBmi();

  // ---- Shared goal constructors ---------------------------------------
  void addBinaryRR(const std::string &Name, MOpcode Op,
                   const std::string &Group);
  void addBinaryRI(const std::string &Name, MOpcode Op,
                   const std::string &Group);
  void addBinaryRM(const std::string &Name, MOpcode Op,
                   const AddressingMode &AM, const std::string &Group);
  void addBinaryMR(const std::string &Name, MOpcode Op,
                   const AddressingMode &AM, const std::string &Group);
  void addShift(const std::string &Name, MOpcode Op, bool ImmediateCount,
                const std::string &Group);
  void addUnaryR(const std::string &Name, MOpcode Op,
                 const std::string &Group, unsigned MaxSize);
  void addUnaryM(const std::string &Name, MOpcode Op,
                 const AddressingMode &AM, const std::string &Group,
                 unsigned MaxSize);
  void addLea(const AddressingMode &AM, const std::string &Group);
  void addCmpJcc(CondCode CC, const std::string &Group);
  void addCmpImmJcc(CondCode CC, const std::string &Group);
  void addCmpMemJcc(CondCode CC, const AddressingMode &AM,
                    const std::string &Group);
  void addTestJcc(CondCode CC, const std::string &Group);
  void addSetcc(CondCode CC, const std::string &Group);
  void addCmov(CondCode CC, const std::string &Group);
  void addStoreImm(const AddressingMode &AM, const std::string &Group);

};

/// Semantic function of a plain binary machine operation.
static z3::expr binaryExpr(MOpcode Op, const z3::expr &Lhs,
                           const z3::expr &Rhs) {
    switch (Op) {
    case MOpcode::Add:
      return Lhs + Rhs;
    case MOpcode::Sub:
      return Lhs - Rhs;
    case MOpcode::Imul:
      return Lhs * Rhs;
    case MOpcode::And:
      return Lhs & Rhs;
    case MOpcode::Or:
      return Lhs | Rhs;
    case MOpcode::Xor:
      return Lhs ^ Rhs;
    default:
      SELGEN_UNREACHABLE("not a plain binary machine opcode");
    }
  }

/// Concrete twin of binaryExpr. Must agree bit-for-bit with the
/// symbolic version; the cross-validation test enforces this.
static BitValue binaryBits(MOpcode Op, const BitValue &Lhs,
                           const BitValue &Rhs) {
  switch (Op) {
  case MOpcode::Add:
    return Lhs.add(Rhs);
  case MOpcode::Sub:
    return Lhs.sub(Rhs);
  case MOpcode::Imul:
    return Lhs.mul(Rhs);
  case MOpcode::And:
    return Lhs.bitAnd(Rhs);
  case MOpcode::Or:
    return Lhs.bitOr(Rhs);
  case MOpcode::Xor:
    return Lhs.bitXor(Rhs);
  default:
    SELGEN_UNREACHABLE("not a plain binary machine opcode");
  }
}

/// Semantic function of a unary machine operation; the width comes
/// from the operand.
static z3::expr unaryExpr(MOpcode Op, const z3::expr &Src) {
  z3::context &Ctx = Src.ctx();
  unsigned Width = Src.get_sort().bv_size();
  switch (Op) {
  case MOpcode::Neg:
    return -Src;
  case MOpcode::Not:
    return ~Src;
  case MOpcode::Inc:
    return Src + Ctx.bv_val(1, Width);
  case MOpcode::Dec:
    return Src - Ctx.bv_val(1, Width);
  default:
    SELGEN_UNREACHABLE("not a unary machine opcode");
  }
}

/// Concrete twin of unaryExpr.
static BitValue unaryBits(MOpcode Op, const BitValue &Src) {
  switch (Op) {
  case MOpcode::Neg:
    return Src.neg();
  case MOpcode::Not:
    return Src.bitNot();
  case MOpcode::Inc:
    return Src.add(BitValue(Src.width(), 1));
  case MOpcode::Dec:
    return Src.sub(BitValue(Src.width(), 1));
  default:
    SELGEN_UNREACHABLE("not a unary machine opcode");
  }
}

void GoalBuilder::addBinaryRR(const std::string &Name, MOpcode Op,
                              const std::string &Group) {
  add(Name, Group, {V(), V()}, {ArgRole::Reg, ArgRole::Reg}, {V()},
      [Op](SemanticsContext &, const std::vector<z3::expr> &Args) {
        return std::vector<z3::expr>{binaryExpr(Op, Args[0], Args[1])};
      },
      [Op](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back(
            {Op, CondCode::E, MOperand::reg(Dst), Args[0], Args[1]});
        Out.Results = {MOperand::reg(Dst)};
        return Out;
      },
      /*MaxPatternSize=*/2, /*Pointers=*/nullptr,
      [Op](unsigned, const std::vector<BitValue> &Args) {
        return std::vector<BitValue>{binaryBits(Op, Args[0], Args[1])};
      });
}

void GoalBuilder::addBinaryRI(const std::string &Name, MOpcode Op,
                              const std::string &Group) {
  add(Name, Group, {V(), V()}, {ArgRole::Reg, ArgRole::Imm}, {V()},
      [Op](SemanticsContext &, const std::vector<z3::expr> &Args) {
        return std::vector<z3::expr>{binaryExpr(Op, Args[0], Args[1])};
      },
      [Op](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back(
            {Op, CondCode::E, MOperand::reg(Dst), Args[0], Args[1]});
        Out.Results = {MOperand::reg(Dst)};
        return Out;
      },
      /*MaxPatternSize=*/2, /*Pointers=*/nullptr,
      [Op](unsigned, const std::vector<BitValue> &Args) {
        return std::vector<BitValue>{binaryBits(Op, Args[0], Args[1])};
      });
}

void GoalBuilder::addBinaryRM(const std::string &Name, MOpcode Op,
                              const AddressingMode &AM,
                              const std::string &Group) {
  // Interface: [memory, AM args..., register operand] ->
  //            [memory', register op loaded].
  std::vector<Sort> Sorts = {M()};
  std::vector<ArgRole> Roles = {ArgRole::Mem};
  AM.appendArgs(Sorts, Roles, Width);
  Sorts.push_back(V());
  Roles.push_back(ArgRole::Reg);
  unsigned RegIndex = Sorts.size() - 1;

  add(Name, Group, std::move(Sorts), std::move(Roles), {M(), V()},
      [Op, AM, RegIndex](SemanticsContext &Context,
                               const std::vector<z3::expr> &Args) {
        z3::expr Address =
            AM.addressExpr(Context.Smt, Context.Width, Args, /*Offset=*/1);
        auto [Loaded, NewMemory] =
            Context.Memory->loadValue(Args[0], Address, Context.Width / 8);
        return std::vector<z3::expr>{
            NewMemory, binaryExpr(Op, Args[RegIndex], Loaded)};
      },
      [Op, AM, RegIndex](MachineFunction &MF,
                         const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back({Op, CondCode::E, MOperand::reg(Dst),
                              Args[RegIndex],
                              MOperand::mem(AM.memRef(Args, 1))});
        Out.Results = {MOperand::none(), MOperand::reg(Dst)};
        return Out;
      },
      /*MaxPatternSize=*/2 + AM.numArgs() + (AM.Scale != 1 ? 2 : 0),
      accessPointers(AM, /*Offset=*/1));
}

void GoalBuilder::addBinaryMR(const std::string &Name, MOpcode Op,
                              const AddressingMode &AM,
                              const std::string &Group) {
  // Destination addressing mode: [memory, AM args..., register] ->
  // [memory']; load-op-store ("an instruction using a destination
  // addressing mode needs one more IR operation", paper Appendix A.6).
  std::vector<Sort> Sorts = {M()};
  std::vector<ArgRole> Roles = {ArgRole::Mem};
  AM.appendArgs(Sorts, Roles, Width);
  Sorts.push_back(V());
  Roles.push_back(ArgRole::Reg);
  unsigned RegIndex = Sorts.size() - 1;

  add(Name, Group, std::move(Sorts), std::move(Roles), {M()},
      [Op, AM, RegIndex](SemanticsContext &Context,
                               const std::vector<z3::expr> &Args) {
        z3::expr Address =
            AM.addressExpr(Context.Smt, Context.Width, Args, /*Offset=*/1);
        auto [Loaded, Mem1] =
            Context.Memory->loadValue(Args[0], Address, Context.Width / 8);
        z3::expr Mem2 = Context.Memory->storeValue(
            Mem1, Address, binaryExpr(Op, Loaded, Args[RegIndex]));
        return std::vector<z3::expr>{Mem2};
      },
      [Op, AM, RegIndex](MachineFunction &MF,
                         const std::vector<MOperand> &Args) {
        (void)MF;
        EmittedGoal Out;
        MOperand Mem = MOperand::mem(AM.memRef(Args, 1));
        Out.Instrs.push_back({Op, CondCode::E, Mem, Mem, Args[RegIndex]});
        Out.Results = {MOperand::none()};
        return Out;
      },
      /*MaxPatternSize=*/3 + AM.numArgs() + (AM.Scale != 1 ? 2 : 0),
      accessPointers(AM, /*Offset=*/1));
}

void GoalBuilder::addShift(const std::string &Name, MOpcode Op,
                           bool ImmediateCount, const std::string &Group) {
  add(Name, Group, {V(), V()},
      {ArgRole::Reg, ImmediateCount ? ArgRole::Imm : ArgRole::Reg}, {V()},
      [Op](SemanticsContext &, const std::vector<z3::expr> &Args) {
        z3::expr Count = maskCount(Args[1]);
        z3::expr Value = Op == MOpcode::Shl   ? z3::shl(Args[0], Count)
                         : Op == MOpcode::Shr ? z3::lshr(Args[0], Count)
                                              : z3::ashr(Args[0], Count);
        return std::vector<z3::expr>{Value};
      },
      [Op](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back(
            {Op, CondCode::E, MOperand::reg(Dst), Args[0], Args[1]});
        Out.Results = {MOperand::reg(Dst)};
        return Out;
      },
      /*MaxPatternSize=*/2, /*Pointers=*/nullptr,
      [Op](unsigned, const std::vector<BitValue> &Args) {
        unsigned Amount = maskCountBits(Args[1]);
        BitValue Value = Op == MOpcode::Shl   ? Args[0].shl(Amount)
                         : Op == MOpcode::Shr ? Args[0].lshr(Amount)
                                              : Args[0].ashr(Amount);
        return std::vector<BitValue>{Value};
      });
}

void GoalBuilder::addUnaryR(const std::string &Name, MOpcode Op,
                            const std::string &Group, unsigned MaxSize) {
  add(Name, Group, {V()}, {ArgRole::Reg}, {V()},
      [Op](SemanticsContext &, const std::vector<z3::expr> &Args) {
        return std::vector<z3::expr>{unaryExpr(Op, Args[0])};
      },
      [Op](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back(
            {Op, CondCode::E, MOperand::reg(Dst), Args[0], {}});
        Out.Results = {MOperand::reg(Dst)};
        return Out;
      },
      MaxSize, /*Pointers=*/nullptr,
      [Op](unsigned, const std::vector<BitValue> &Args) {
        return std::vector<BitValue>{unaryBits(Op, Args[0])};
      });
}

void GoalBuilder::addUnaryM(const std::string &Name, MOpcode Op,
                            const AddressingMode &AM,
                            const std::string &Group, unsigned MaxSize) {
  std::vector<Sort> Sorts = {M()};
  std::vector<ArgRole> Roles = {ArgRole::Mem};
  AM.appendArgs(Sorts, Roles, Width);

  add(Name, Group, std::move(Sorts), std::move(Roles), {M()},
      [Op, AM](SemanticsContext &Context,
                     const std::vector<z3::expr> &Args) {
        z3::expr Address =
            AM.addressExpr(Context.Smt, Context.Width, Args, /*Offset=*/1);
        auto [Loaded, Mem1] =
            Context.Memory->loadValue(Args[0], Address, Context.Width / 8);
        z3::expr Mem2 =
            Context.Memory->storeValue(Mem1, Address, unaryExpr(Op, Loaded));
        return std::vector<z3::expr>{Mem2};
      },
      [Op, AM](MachineFunction &MF, const std::vector<MOperand> &Args) {
        (void)MF;
        EmittedGoal Out;
        MOperand Mem = MOperand::mem(AM.memRef(Args, 1));
        Out.Instrs.push_back({Op, CondCode::E, Mem, Mem, {}});
        Out.Results = {MOperand::none()};
        return Out;
      },
      MaxSize, accessPointers(AM, /*Offset=*/1));
}

void GoalBuilder::addLea(const AddressingMode &AM, const std::string &Group) {
  // lea computes the effective address without touching memory.
  std::vector<Sort> Sorts;
  std::vector<ArgRole> Roles;
  AM.appendArgs(Sorts, Roles, Width);

  add("lea_" + AM.suffix(), Group, std::move(Sorts), std::move(Roles), {V()},
      [AM](SemanticsContext &Context,
                 const std::vector<z3::expr> &Args) {
        return std::vector<z3::expr>{
            AM.addressExpr(Context.Smt, Context.Width, Args, /*Offset=*/0)};
      },
      [AM](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back({MOpcode::Lea, CondCode::E, MOperand::reg(Dst),
                              MOperand::mem(AM.memRef(Args, 0)),
                              {}});
        Out.Results = {MOperand::reg(Dst)};
        return Out;
      },
      /*MaxPatternSize=*/AM.numArgs() + (AM.Scale != 1 ? 2 : 0) + 1,
      /*Pointers=*/nullptr,
      [AM](unsigned W, const std::vector<BitValue> &Args) {
        return std::vector<BitValue>{AM.addressBits(W, Args, /*Offset=*/0)};
      });
}

void GoalBuilder::addCmpJcc(CondCode CC, const std::string &Group) {
  Relation Rel = relationForCondCode(CC);
  add(std::string("cmp_j") + condCodeName(CC), Group, {V(), V()},
      {ArgRole::Reg, ArgRole::Reg}, {B(), B()},
      [Rel](SemanticsContext &, const std::vector<z3::expr> &Args) {
        z3::expr Taken = relationExpr(Rel, Args[0], Args[1]);
        return std::vector<z3::expr>{Taken, !Taken};
      },
      [CC](MachineFunction &MF, const std::vector<MOperand> &Args) {
        (void)MF;
        EmittedGoal Out;
        Out.Instrs.push_back(
            {MOpcode::Cmp, CondCode::E, {}, Args[0], Args[1]});
        Out.Results = {MOperand::none(), MOperand::none()};
        Out.JumpCC = CC;
        return Out;
      },
      /*MaxPatternSize=*/2, /*Pointers=*/nullptr,
      [Rel](unsigned, const std::vector<BitValue> &Args) {
        bool Taken = evaluateRelation(Rel, Args[0], Args[1]);
        return std::vector<BitValue>{boolBits(Taken), boolBits(!Taken)};
      });
}

void GoalBuilder::addCmpImmJcc(CondCode CC, const std::string &Group) {
  Relation Rel = relationForCondCode(CC);
  add(std::string("cmpi_j") + condCodeName(CC), Group, {V(), V()},
      {ArgRole::Reg, ArgRole::Imm}, {B(), B()},
      [Rel](SemanticsContext &, const std::vector<z3::expr> &Args) {
        z3::expr Taken = relationExpr(Rel, Args[0], Args[1]);
        return std::vector<z3::expr>{Taken, !Taken};
      },
      [CC](MachineFunction &MF, const std::vector<MOperand> &Args) {
        (void)MF;
        EmittedGoal Out;
        Out.Instrs.push_back(
            {MOpcode::Cmp, CondCode::E, {}, Args[0], Args[1]});
        Out.Results = {MOperand::none(), MOperand::none()};
        Out.JumpCC = CC;
        return Out;
      },
      /*MaxPatternSize=*/2, /*Pointers=*/nullptr,
      [Rel](unsigned, const std::vector<BitValue> &Args) {
        bool Taken = evaluateRelation(Rel, Args[0], Args[1]);
        return std::vector<BitValue>{boolBits(Taken), boolBits(!Taken)};
      });
}

void GoalBuilder::addCmpMemJcc(CondCode CC, const AddressingMode &AM,
                               const std::string &Group) {
  Relation Rel = relationForCondCode(CC);
  std::vector<Sort> Sorts = {M()};
  std::vector<ArgRole> Roles = {ArgRole::Mem};
  AM.appendArgs(Sorts, Roles, Width);
  Sorts.push_back(V());
  Roles.push_back(ArgRole::Reg);
  unsigned RegIndex = Sorts.size() - 1;

  add(std::string("cmpm_") + AM.suffix() + "_j" + condCodeName(CC), Group,
      std::move(Sorts), std::move(Roles), {M(), B(), B()},
      [Rel, AM, RegIndex](SemanticsContext &Context,
                                const std::vector<z3::expr> &Args) {
        z3::expr Address =
            AM.addressExpr(Context.Smt, Context.Width, Args, /*Offset=*/1);
        auto [Loaded, NewMemory] =
            Context.Memory->loadValue(Args[0], Address, Context.Width / 8);
        z3::expr Taken = relationExpr(Rel, Args[RegIndex], Loaded);
        return std::vector<z3::expr>{NewMemory, Taken, !Taken};
      },
      [CC, AM, RegIndex](MachineFunction &MF,
                         const std::vector<MOperand> &Args) {
        (void)MF;
        EmittedGoal Out;
        Out.Instrs.push_back({MOpcode::Cmp, CondCode::E, {}, Args[RegIndex],
                              MOperand::mem(AM.memRef(Args, 1))});
        Out.Results = {MOperand::none(), MOperand::none(), MOperand::none()};
        Out.JumpCC = CC;
        return Out;
      },
      /*MaxPatternSize=*/3 + AM.numArgs() + (AM.Scale != 1 ? 2 : 0),
      accessPointers(AM, /*Offset=*/1));
}

void GoalBuilder::addTestJcc(CondCode CC, const std::string &Group) {
  add(std::string("test_j") + condCodeName(CC), Group, {V(), V()},
      {ArgRole::Reg, ArgRole::Reg}, {B(), B()},
      [CC](SemanticsContext &Context,
                 const std::vector<z3::expr> &Args) {
        z3::expr Value = Args[0] & Args[1];
        z3::expr Zero = Context.Smt.ctx().bv_val(0, Context.Width);
        z3::expr Taken = Context.Smt.boolVal(false);
        switch (CC) {
        case CondCode::E:
          Taken = Value == Zero;
          break;
        case CondCode::NE:
          Taken = Value != Zero;
          break;
        case CondCode::S:
          Taken = Value < Zero;
          break;
        case CondCode::NS:
          Taken = Value >= Zero;
          break;
        case CondCode::LE: // ZF or SF (OF = 0 after test).
          Taken = Value <= Zero;
          break;
        case CondCode::G:
          Taken = Value > Zero;
          break;
        default:
          SELGEN_UNREACHABLE("unsupported test condition");
        }
        return std::vector<z3::expr>{Taken, !Taken};
      },
      [CC](MachineFunction &MF, const std::vector<MOperand> &Args) {
        (void)MF;
        EmittedGoal Out;
        Out.Instrs.push_back(
            {MOpcode::Test, CondCode::E, {}, Args[0], Args[1]});
        Out.Results = {MOperand::none(), MOperand::none()};
        Out.JumpCC = CC;
        return Out;
      },
      /*MaxPatternSize=*/4, /*Pointers=*/nullptr,
      [CC](unsigned W, const std::vector<BitValue> &Args) {
        BitValue Value = Args[0].bitAnd(Args[1]);
        BitValue Zero(W, 0);
        bool Taken = false;
        switch (CC) {
        case CondCode::E:
          Taken = Value == Zero;
          break;
        case CondCode::NE:
          Taken = Value != Zero;
          break;
        case CondCode::S:
          Taken = Value.slt(Zero);
          break;
        case CondCode::NS:
          Taken = Value.sge(Zero);
          break;
        case CondCode::LE:
          Taken = Value.sle(Zero);
          break;
        case CondCode::G:
          Taken = Value.sgt(Zero);
          break;
        default:
          SELGEN_UNREACHABLE("unsupported test condition");
        }
        return std::vector<BitValue>{boolBits(Taken), boolBits(!Taken)};
      });
}

void GoalBuilder::addSetcc(CondCode CC, const std::string &Group) {
  Relation Rel = relationForCondCode(CC);
  add(std::string("set") + condCodeName(CC), Group, {V(), V()},
      {ArgRole::Reg, ArgRole::Reg}, {V()},
      [Rel](SemanticsContext &Context,
                  const std::vector<z3::expr> &Args) {
        return std::vector<z3::expr>{
            z3::ite(relationExpr(Rel, Args[0], Args[1]),
                    Context.Smt.ctx().bv_val(1, Context.Width),
                    Context.Smt.ctx().bv_val(0, Context.Width))};
      },
      [CC](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back(
            {MOpcode::Cmp, CondCode::E, {}, Args[0], Args[1]});
        Out.Instrs.push_back(
            {MOpcode::Setcc, CC, MOperand::reg(Dst), {}, {}});
        Out.Results = {MOperand::reg(Dst)};
        return Out;
      },
      /*MaxPatternSize=*/4, /*Pointers=*/nullptr,
      [Rel](unsigned W, const std::vector<BitValue> &Args) {
        return std::vector<BitValue>{
            BitValue(W, evaluateRelation(Rel, Args[0], Args[1]) ? 1 : 0)};
      });
}

void GoalBuilder::addCmov(CondCode CC, const std::string &Group) {
  Relation Rel = relationForCondCode(CC);
  add(std::string("cmov") + condCodeName(CC), Group, {V(), V(), V(), V()},
      {ArgRole::Reg, ArgRole::Reg, ArgRole::Reg, ArgRole::Reg}, {V()},
      [Rel](SemanticsContext &, const std::vector<z3::expr> &Args) {
        return std::vector<z3::expr>{
            z3::ite(relationExpr(Rel, Args[0], Args[1]), Args[2], Args[3])};
      },
      [CC](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back(
            {MOpcode::Cmp, CondCode::E, {}, Args[0], Args[1]});
        Out.Instrs.push_back(
            {MOpcode::Cmov, CC, MOperand::reg(Dst), Args[2], Args[3]});
        Out.Results = {MOperand::reg(Dst)};
        return Out;
      },
      /*MaxPatternSize=*/2, /*Pointers=*/nullptr,
      [Rel](unsigned, const std::vector<BitValue> &Args) {
        return std::vector<BitValue>{
            evaluateRelation(Rel, Args[0], Args[1]) ? Args[2] : Args[3]};
      });
}

void GoalBuilder::addStoreImm(const AddressingMode &AM,
                              const std::string &Group) {
  // mov [am], imm — a store whose value operand is an instruction
  // immediate; the pattern is the same Store as mov_store, but the
  // matcher only binds it to IR constants.
  std::vector<Sort> Sorts = {M()};
  std::vector<ArgRole> Roles = {ArgRole::Mem};
  AM.appendArgs(Sorts, Roles, Width);
  Sorts.push_back(V());
  Roles.push_back(ArgRole::Imm);
  unsigned ImmIndex = Sorts.size() - 1;

  add("mov_storei_" + AM.suffix(), Group, std::move(Sorts),
      std::move(Roles), {M()},
      [AM, ImmIndex](SemanticsContext &Context,
                     const std::vector<z3::expr> &Args) {
        z3::expr Address =
            AM.addressExpr(Context.Smt, Context.Width, Args, /*Offset=*/1);
        return std::vector<z3::expr>{Context.Memory->storeValue(
            Args[0], Address, Args[ImmIndex])};
      },
      [AM, ImmIndex](MachineFunction &MF,
                     const std::vector<MOperand> &Args) {
        (void)MF;
        EmittedGoal Out;
        Out.Instrs.push_back({MOpcode::Mov, CondCode::E,
                              MOperand::mem(AM.memRef(Args, 1)),
                              Args[ImmIndex],
                              {}});
        Out.Results = {MOperand::none()};
        return Out;
      },
      /*MaxPatternSize=*/1 + AM.numArgs() + (AM.Scale != 1 ? 2 : 0),
      accessPointers(AM, /*Offset=*/1));
}

void GoalBuilder::addBasic() {
  const std::string Group = "Basic";

  // mov r, imm: the identity pattern over an Imm-role argument; the
  // matcher binds it to an IR Const node.
  add("mov_ri", Group, {V()}, {ArgRole::Imm}, {V()},
      [](SemanticsContext &, const std::vector<z3::expr> &Args) {
        return std::vector<z3::expr>{Args[0]};
      },
      [](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg Dst = MF.newReg();
        Out.Instrs.push_back(
            {MOpcode::Mov, CondCode::E, MOperand::reg(Dst), Args[0], {}});
        Out.Results = {MOperand::reg(Dst)};
        return Out;
      },
      /*MaxPatternSize=*/0, /*Pointers=*/nullptr,
      [](unsigned, const std::vector<BitValue> &Args) {
        return std::vector<BitValue>{Args[0]};
      });

  addUnaryR("neg_r", MOpcode::Neg, Group, /*MaxSize=*/1);
  addUnaryR("not_r", MOpcode::Not, Group, /*MaxSize=*/1);

  addBinaryRR("add_rr", MOpcode::Add, Group);
  addBinaryRR("sub_rr", MOpcode::Sub, Group);
  addBinaryRR("and_rr", MOpcode::And, Group);
  addBinaryRR("or_rr", MOpcode::Or, Group);
  addBinaryRR("xor_rr", MOpcode::Xor, Group);
  addBinaryRR("imul_rr", MOpcode::Imul, Group);

  addLea({true, true, 1, false}, Group); // lea (b,i)

  addShift("shl_ri", MOpcode::Shl, /*ImmediateCount=*/true, Group);
  addShift("shr_ri", MOpcode::Shr, /*ImmediateCount=*/true, Group);
  addShift("sar_ri", MOpcode::Sar, /*ImmediateCount=*/true, Group);
  addShift("shl_rc", MOpcode::Shl, /*ImmediateCount=*/false, Group);
  addShift("shr_rc", MOpcode::Shr, /*ImmediateCount=*/false, Group);
  addShift("sar_rc", MOpcode::Sar, /*ImmediateCount=*/false, Group);

  for (CondCode CC : relationCondCodes())
    addCmpJcc(CC, Group);
}

void GoalBuilder::addLoadStore() {
  const std::string Group = "LoadStore";
  addStoreImm(AddressingMode{true, false, 1, false}, Group);
  addStoreImm(AddressingMode{true, false, 1, true}, Group);
  for (const AddressingMode &AM : AddressingMode::fullSet()) {
    // mov r, [am] — load.
    {
      std::vector<Sort> Sorts = {M()};
      std::vector<ArgRole> Roles = {ArgRole::Mem};
      AM.appendArgs(Sorts, Roles, Width);
      add("mov_load_" + AM.suffix(), Group, std::move(Sorts),
          std::move(Roles), {M(), V()},
          [AM](SemanticsContext &Context,
                     const std::vector<z3::expr> &Args) {
            z3::expr Address =
                AM.addressExpr(Context.Smt, Context.Width, Args, /*Offset=*/1);
            auto [Loaded, NewMemory] =
                Context.Memory->loadValue(Args[0], Address, Context.Width / 8);
            return std::vector<z3::expr>{NewMemory, Loaded};
          },
          [AM](MachineFunction &MF, const std::vector<MOperand> &Args) {
            EmittedGoal Out;
            MReg Dst = MF.newReg();
            Out.Instrs.push_back({MOpcode::Mov, CondCode::E,
                                  MOperand::reg(Dst),
                                  MOperand::mem(AM.memRef(Args, 1)),
                                  {}});
            Out.Results = {MOperand::none(), MOperand::reg(Dst)};
            return Out;
          },
          /*MaxPatternSize=*/1 + AM.numArgs() + (AM.Scale != 1 ? 2 : 0),
          accessPointers(AM, /*Offset=*/1));
    }
    // mov [am], r — store.
    {
      std::vector<Sort> Sorts = {M()};
      std::vector<ArgRole> Roles = {ArgRole::Mem};
      AM.appendArgs(Sorts, Roles, Width);
      Sorts.push_back(V());
      Roles.push_back(ArgRole::Reg);
      unsigned RegIndex = Sorts.size() - 1;
      add("mov_store_" + AM.suffix(), Group, std::move(Sorts),
          std::move(Roles), {M()},
          [AM, RegIndex](SemanticsContext &Context,
                               const std::vector<z3::expr> &Args) {
            z3::expr Address =
                AM.addressExpr(Context.Smt, Context.Width, Args, /*Offset=*/1);
            return std::vector<z3::expr>{Context.Memory->storeValue(
                Args[0], Address, Args[RegIndex])};
          },
          [AM, RegIndex](MachineFunction &MF,
                         const std::vector<MOperand> &Args) {
            (void)MF;
            EmittedGoal Out;
            Out.Instrs.push_back({MOpcode::Mov, CondCode::E,
                                  MOperand::mem(AM.memRef(Args, 1)),
                                  Args[RegIndex],
                                  {}});
            Out.Results = {MOperand::none()};
            return Out;
          },
          /*MaxPatternSize=*/1 + AM.numArgs() + (AM.Scale != 1 ? 2 : 0),
          accessPointers(AM, /*Offset=*/1));
    }
  }
}

void GoalBuilder::addUnary() {
  const std::string Group = "Unary";
  addUnaryR("inc_r", MOpcode::Inc, Group, /*MaxSize=*/2);
  addUnaryR("dec_r", MOpcode::Dec, Group, /*MaxSize=*/2);
  for (const AddressingMode &AM :
       {AddressingMode{true, false, 1, false},
        AddressingMode{true, false, 1, true},
        AddressingMode{true, true, 1, false}}) {
    unsigned Extra = AM.numArgs();
    addUnaryM("neg_m_" + AM.suffix(), MOpcode::Neg, AM, Group, 3 + Extra);
    addUnaryM("not_m_" + AM.suffix(), MOpcode::Not, AM, Group, 3 + Extra);
    addUnaryM("inc_m_" + AM.suffix(), MOpcode::Inc, AM, Group, 4 + Extra);
    addUnaryM("dec_m_" + AM.suffix(), MOpcode::Dec, AM, Group, 4 + Extra);
  }
}

void GoalBuilder::addBinary() {
  const std::string Group = "Binary";
  addBinaryRI("add_ri", MOpcode::Add, Group);
  addBinaryRI("sub_ri", MOpcode::Sub, Group);
  addBinaryRI("and_ri", MOpcode::And, Group);
  addBinaryRI("or_ri", MOpcode::Or, Group);
  addBinaryRI("xor_ri", MOpcode::Xor, Group);
  addBinaryRI("imul_ri", MOpcode::Imul, Group);

  // Source and destination addressing-mode variants of the two-operand
  // arithmetic family. The source set uses the full addressing modes;
  // the destination set the simple ones (as the artifact's defaults).
  const std::vector<std::pair<std::string, MOpcode>> Ops = {
      {"add", MOpcode::Add}, {"sub", MOpcode::Sub}, {"and", MOpcode::And},
      {"or", MOpcode::Or},   {"xor", MOpcode::Xor}};
  for (const auto &[Name, Op] : Ops) {
    for (const AddressingMode &AM : AddressingMode::fullSet())
      addBinaryRM(Name + "_rm_" + AM.suffix(), Op, AM, Group);
    for (const AddressingMode &AM :
         {AddressingMode{true, false, 1, false},
          AddressingMode{true, false, 1, true}})
      addBinaryMR(Name + "_mr_" + AM.suffix(), Op, AM, Group);
  }

  for (const AddressingMode &AM :
       {AddressingMode{true, false, 1, false},
        AddressingMode{true, false, 1, true}})
    addBinaryRM("imul_rm_" + AM.suffix(), MOpcode::Imul, AM, Group);

  // xchg r1, r2: two results wired straight from the swapped
  // arguments — exercises the multi-result identity corner of the
  // encoding (a zero-operation pattern with two results).
  add("xchg_rr", Group, {V(), V()}, {ArgRole::Reg, ArgRole::Reg},
      {V(), V()},
      [](SemanticsContext &, const std::vector<z3::expr> &Args) {
        return std::vector<z3::expr>{Args[1], Args[0]};
      },
      [](MachineFunction &MF, const std::vector<MOperand> &Args) {
        EmittedGoal Out;
        MReg First = MF.newReg(), Second = MF.newReg();
        Out.Instrs.push_back(
            {MOpcode::Mov, CondCode::E, MOperand::reg(First), Args[1], {}});
        Out.Instrs.push_back(
            {MOpcode::Mov, CondCode::E, MOperand::reg(Second), Args[0], {}});
        Out.Results = {MOperand::reg(First), MOperand::reg(Second)};
        return Out;
      },
      /*MaxPatternSize=*/0, /*Pointers=*/nullptr,
      [](unsigned, const std::vector<BitValue> &Args) {
        return std::vector<BitValue>{Args[1], Args[0]};
      });

  // The full lea family.
  for (const AddressingMode &AM : AddressingMode::fullSet())
    if (AM.numComponents() >= 2 && !(AM.HasBase && !AM.HasIndex && !AM.HasDisp))
      addLea(AM, Group);
  // Index-scale-displacement without base (the paper's
  // "lea bytes+42(x,x,2)" shape needs no dedicated goal: it is the
  // bisd pattern with base == index).
  addLea({false, true, 4, true}, Group);
  addLea({false, true, 2, true}, Group);

  // Fixed-count rotates (the rotate count is an enumerable attribute,
  // so each count is its own goal; see Goals.h).
  for (unsigned Count : {1u, 4u}) {
    for (bool Left : {true, false}) {
      std::string Name =
          std::string(Left ? "rol" : "ror") + std::to_string(Count) + "_r";
      MOpcode Op = Left ? MOpcode::Rol : MOpcode::Ror;
      add(Name, Group, {V()}, {ArgRole::Reg}, {V()},
          [Count, Left](SemanticsContext &Context,
                        const std::vector<z3::expr> &Args) {
            unsigned W = Context.Width;
            unsigned Other = W - Count;
            z3::context &Ctx = Context.Smt.ctx();
            z3::expr ShiftedLeft =
                z3::shl(Args[0], Ctx.bv_val(Left ? Count : Other, W));
            z3::expr ShiftedRight =
                z3::lshr(Args[0], Ctx.bv_val(Left ? Other : Count, W));
            return std::vector<z3::expr>{ShiftedLeft | ShiftedRight};
          },
          [Op, Count](MachineFunction &MF,
                      const std::vector<MOperand> &Args) {
            EmittedGoal Out;
            MReg Dst = MF.newReg();
            Out.Instrs.push_back({Op, CondCode::E, MOperand::reg(Dst),
                                  Args[0],
                                  MOperand::imm(BitValue(
                                      MF.width(), Count))});
            Out.Results = {MOperand::reg(Dst)};
            return Out;
          },
          /*MaxPatternSize=*/5, /*Pointers=*/nullptr,
          [Count, Left](unsigned W, const std::vector<BitValue> &Args) {
            unsigned Other = W - Count;
            BitValue Result = Args[0]
                                  .shl(Left ? Count : Other)
                                  .bitOr(Args[0].lshr(Left ? Other : Count));
            return std::vector<BitValue>{Result};
          });
    }
  }
}

void GoalBuilder::addFlags() {
  const std::string Group = "Flags";
  for (CondCode CC : relationCondCodes()) {
    addCmpImmJcc(CC, Group);
    addSetcc(CC, Group);
    addCmov(CC, Group);
    addCmpMemJcc(CC, AddressingMode{true, false, 1, false}, Group);
    addCmpMemJcc(CC, AddressingMode{true, false, 1, true}, Group);
  }
  for (CondCode CC : {CondCode::E, CondCode::NE, CondCode::S, CondCode::NS,
                      CondCode::LE, CondCode::G})
    addTestJcc(CC, Group);
}

void GoalBuilder::addBmi() {
  const std::string Group = "Bmi";
  const std::vector<std::pair<std::string, MOpcode>> Ops = {
      {"andn", MOpcode::Andn},
      {"blsr", MOpcode::Blsr},
      {"blsi", MOpcode::Blsi},
      {"blsmsk", MOpcode::Blsmsk}};
  for (const auto &[Name, Op] : Ops) {
    unsigned NumArgs = Op == MOpcode::Andn ? 2 : 1;
    std::vector<Sort> Sorts(NumArgs, V());
    std::vector<ArgRole> Roles(NumArgs, ArgRole::Reg);
    add(Name, Group, std::move(Sorts), std::move(Roles), {V()},
        [Op](SemanticsContext &Context,
                   const std::vector<z3::expr> &Args) {
          z3::expr One = Context.Smt.ctx().bv_val(1, Context.Width);
          z3::expr Value = Args[0];
          switch (Op) {
          case MOpcode::Andn:
            Value = ~Args[0] & Args[1];
            break;
          case MOpcode::Blsr:
            Value = Args[0] & (Args[0] - One);
            break;
          case MOpcode::Blsi:
            Value = Args[0] & -Args[0];
            break;
          case MOpcode::Blsmsk:
            Value = Args[0] ^ (Args[0] - One);
            break;
          default:
            SELGEN_UNREACHABLE("not a BMI opcode");
          }
          return std::vector<z3::expr>{Value};
        },
        [Op, NumArgs](MachineFunction &MF,
                      const std::vector<MOperand> &Args) {
          EmittedGoal Out;
          MReg Dst = MF.newReg();
          Out.Instrs.push_back({Op, CondCode::E, MOperand::reg(Dst), Args[0],
                                NumArgs == 2 ? Args[1] : MOperand::none()});
          Out.Results = {MOperand::reg(Dst)};
          return Out;
        },
        /*MaxPatternSize=*/4, /*Pointers=*/nullptr,
        [Op](unsigned W, const std::vector<BitValue> &Args) {
          BitValue One(W, 1);
          BitValue Value = Args[0];
          switch (Op) {
          case MOpcode::Andn:
            Value = Args[0].bitNot().bitAnd(Args[1]);
            break;
          case MOpcode::Blsr:
            Value = Args[0].bitAnd(Args[0].sub(One));
            break;
          case MOpcode::Blsi:
            Value = Args[0].bitAnd(Args[0].neg());
            break;
          case MOpcode::Blsmsk:
            Value = Args[0].bitXor(Args[0].sub(One));
            break;
          default:
            SELGEN_UNREACHABLE("not a BMI opcode");
          }
          return std::vector<BitValue>{Value};
        });
  }
}

} // namespace

const GoalInstruction *GoalLibrary::find(const std::string &Name) const {
  for (const GoalInstruction &Goal : Goals)
    if (Goal.Name == Name)
      return &Goal;
  return nullptr;
}

std::vector<const GoalInstruction *>
GoalLibrary::group(const std::string &GroupName) const {
  std::vector<const GoalInstruction *> Result;
  for (const GoalInstruction &Goal : Goals)
    if (Goal.Group == GroupName)
      Result.push_back(&Goal);
  return Result;
}

const std::vector<std::string> &GoalLibrary::allGroups() {
  static const std::vector<std::string> Groups = {
      "Basic", "LoadStore", "Unary", "Binary", "Flags", "Bmi"};
  return Groups;
}

GoalLibrary GoalLibrary::subset(GoalLibrary &&Source,
                                const std::vector<std::string> &Names) {
  GoalLibrary Result;
  for (const std::string &Name : Names) {
    bool Found = false;
    for (GoalInstruction &Goal : Source.Goals) {
      if (Goal.Name != Name)
        continue;
      Result.Goals.push_back(std::move(Goal));
      Found = true;
      break;
    }
    if (!Found)
      reportFatalError("unknown goal in subset: " + Name);
  }
  return Result;
}

GoalLibrary GoalLibrary::build(unsigned Width,
                               const std::vector<std::string> &Groups) {
  GoalLibrary Library;
  GoalBuilder Builder{Library, Width};
  for (const std::string &Group : Groups) {
    if (Group == "Basic")
      Builder.addBasic();
    else if (Group == "LoadStore")
      Builder.addLoadStore();
    else if (Group == "Unary")
      Builder.addUnary();
    else if (Group == "Binary")
      Builder.addBinary();
    else if (Group == "Flags")
      Builder.addFlags();
    else if (Group == "Bmi")
      Builder.addBmi();
    else
      reportFatalError("unknown goal group: " + Group);
  }
  return Library;
}
