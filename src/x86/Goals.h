//===- Goals.h - The x86 goal-instruction library ----------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library of goal machine instructions M the synthesizer works
/// through (paper Section 3, Algorithm 1). Each goal bundles:
///
/// * a semantic spec (InstrSpec) giving its interface and its SMT
///   postcondition — built with the same M-value primitives as the IR
///   operations (paper Section 4.1);
/// * its instruction group, mirroring Table 2 (Basic, LoadStore,
///   Unary, Binary, Flags, plus the artifact's Bmi extension);
/// * an emission recipe used by the generated instruction selector to
///   produce machine code once a pattern for this goal matched.
///
/// Goals have no internal attributes: condition codes, scales, and
/// fixed rotate counts are expanded into separate goal variants ("we
/// run a separate synthesis for each possible assignment", Section 5),
/// while immediates and displacements are symbolic Imm-role arguments.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_X86_GOALS_H
#define SELGEN_X86_GOALS_H

#include "semantics/InstrSpec.h"
#include "x86/AddressingMode.h"
#include "x86/MachineIR.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

/// What a goal's emission recipe produced.
struct EmittedGoal {
  /// Instructions to append to the current machine block.
  std::vector<MachineInstr> Instrs;
  /// One operand per goal result: the register holding a value result,
  /// None for memory results.
  std::vector<MOperand> Results;
  /// For compare-and-jump goals: the condition code the block
  /// terminator must use (the flags are set by Instrs).
  std::optional<CondCode> JumpCC;
};

/// Emission recipe: goal argument bindings (one MOperand per goal
/// argument: Reg-role -> register, Imm-role -> immediate, Mem-role ->
/// None) to emitted machine code. \p MF provides fresh registers.
using EmitFn = std::function<EmittedGoal(MachineFunction &MF,
                                         const std::vector<MOperand> &Args)>;

/// One goal machine instruction.
struct GoalInstruction {
  std::string Name;
  std::string Group;
  std::unique_ptr<InstrSpec> Spec;
  EmitFn Emit;
  /// Upper bound on the minimal pattern size, used to cap the
  /// iterative deepening.
  unsigned MaxPatternSize = 7;
};

/// The goal library for one data width.
class GoalLibrary {
public:
  void add(GoalInstruction Goal) { Goals.push_back(std::move(Goal)); }

  const std::vector<GoalInstruction> &goals() const { return Goals; }

  const GoalInstruction *find(const std::string &Name) const;

  std::vector<const GoalInstruction *>
  group(const std::string &GroupName) const;

  /// Builds the goals of the named groups for width \p Width.
  /// Group names: "Basic", "LoadStore", "Unary", "Binary", "Flags",
  /// "Bmi". Unknown names abort.
  static GoalLibrary build(unsigned Width,
                           const std::vector<std::string> &Groups);

  /// All group names, in Table 2 order plus "Bmi".
  static const std::vector<std::string> &allGroups();

  /// Moves the named goals out of \p Source into a new library
  /// (preserving \p Names order). Unknown names abort.
  static GoalLibrary subset(GoalLibrary &&Source,
                            const std::vector<std::string> &Names);

private:
  std::vector<GoalInstruction> Goals;
};

} // namespace selgen

#endif // SELGEN_X86_GOALS_H
