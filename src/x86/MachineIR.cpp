//===- MachineIR.cpp - x86-like machine code representation ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "x86/MachineIR.h"

#include "support/Error.h"

using namespace selgen;

const char *selgen::mopcodeName(MOpcode Op) {
  switch (Op) {
  case MOpcode::Mov:
    return "mov";
  case MOpcode::Lea:
    return "lea";
  case MOpcode::Neg:
    return "neg";
  case MOpcode::Not:
    return "not";
  case MOpcode::Inc:
    return "inc";
  case MOpcode::Dec:
    return "dec";
  case MOpcode::Add:
    return "add";
  case MOpcode::Sub:
    return "sub";
  case MOpcode::Imul:
    return "imul";
  case MOpcode::And:
    return "and";
  case MOpcode::Or:
    return "or";
  case MOpcode::Xor:
    return "xor";
  case MOpcode::Shl:
    return "shl";
  case MOpcode::Shr:
    return "shr";
  case MOpcode::Sar:
    return "sar";
  case MOpcode::Rol:
    return "rol";
  case MOpcode::Ror:
    return "ror";
  case MOpcode::Andn:
    return "andn";
  case MOpcode::Blsr:
    return "blsr";
  case MOpcode::Blsi:
    return "blsi";
  case MOpcode::Blsmsk:
    return "blsmsk";
  case MOpcode::Cmov:
    return "cmov";
  case MOpcode::Cmp:
    return "cmp";
  case MOpcode::Test:
    return "test";
  case MOpcode::Setcc:
    return "set";
  }
  SELGEN_UNREACHABLE("bad machine opcode");
}

static std::string printMemRef(const MemRef &M) {
  std::string Result;
  if (M.Disp != 0)
    Result += std::to_string(M.Disp);
  Result += "(";
  if (M.Base)
    Result += "%v" + std::to_string(*M.Base);
  if (M.Index) {
    Result += ",%v" + std::to_string(*M.Index);
    Result += "," + std::to_string(M.Scale);
  }
  Result += ")";
  return Result;
}

static std::string printOperand(const MOperand &Op) {
  switch (Op.K) {
  case MOperand::Kind::None:
    return "<none>";
  case MOperand::Kind::Reg:
    return "%v" + std::to_string(Op.R);
  case MOperand::Kind::Imm:
    return "$" + Op.Imm.toSignedString();
  case MOperand::Kind::Mem:
    return printMemRef(Op.M);
  }
  SELGEN_UNREACHABLE("bad operand kind");
}

std::string selgen::printMachineInstr(const MachineInstr &Instr) {
  std::string Result = mopcodeName(Instr.Op);
  if (Instr.Op == MOpcode::Setcc || Instr.Op == MOpcode::Cmov)
    Result += condCodeName(Instr.CC);
  // AT&T-style: sources first, destination last.
  std::vector<std::string> Operands;
  if (!Instr.Src1.isNone())
    Operands.push_back(printOperand(Instr.Src1));
  if (!Instr.Src2.isNone())
    Operands.push_back(printOperand(Instr.Src2));
  if (!Instr.Dst.isNone())
    Operands.push_back(printOperand(Instr.Dst));
  for (unsigned I = 0; I < Operands.size(); ++I)
    Result += (I == 0 ? " " : ", ") + Operands[I];
  return Result;
}

std::string selgen::printMachineFunction(const MachineFunction &MF) {
  std::string Result = MF.name() + ": # width " +
                       std::to_string(MF.width()) + "\n";
  for (const auto &Block : MF.blocks()) {
    Result += Block->name() + ":";
    if (!Block->ArgRegs.empty()) {
      Result += " # args:";
      for (MReg R : Block->ArgRegs)
        Result += " %v" + std::to_string(R);
    }
    Result += "\n";
    for (const MachineInstr &Instr : Block->instructions())
      Result += "  " + printMachineInstr(Instr) + "\n";

    const MTerminator &Term = Block->terminator();
    auto printMoves =
        [](const std::vector<std::pair<MReg, MOperand>> &Moves) {
          std::string Text;
          for (const auto &[Dst, Src] : Moves)
            Text += " %v" + std::to_string(Dst) + "<-" + printOperand(Src);
          return Text;
        };
    switch (Term.TermKind) {
    case MTerminator::Kind::Ret: {
      Result += "  ret";
      for (const MOperand &Value : Term.ReturnValues)
        Result += " " + printOperand(Value);
      Result += "\n";
      break;
    }
    case MTerminator::Kind::Jmp:
      Result += "  jmp " + Term.Then->name() + printMoves(Term.ThenMoves) +
                "\n";
      break;
    case MTerminator::Kind::Jcc:
      Result += "  j" + std::string(condCodeName(Term.CC)) + " " +
                Term.Then->name() + printMoves(Term.ThenMoves) + "\n";
      Result += "  jmp " + Term.Else->name() + printMoves(Term.ElseMoves) +
                "\n";
      break;
    }
  }
  return Result;
}
