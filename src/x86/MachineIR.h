//===- MachineIR.h - x86-like machine code representation --------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine-level program representation emitted by the instruction
/// selectors and executed by the emulator. It models the 32-bit x86
/// integer subset the paper targets, parametric in the data width so
/// the synthesis experiments can run at 8 or 16 bits as well.
///
/// Simplifications relative to real x86 (documented in DESIGN.md):
/// * Instructions are three-address over unlimited virtual registers;
///   register allocation is outside the scope of the paper's selector
///   comparison (both selectors are measured in the same setting).
/// * FLAGS are modeled (ZF/SF/CF/OF) and set by arithmetic, compare,
///   and test instructions, which lets the handwritten selector play
///   its flag-reuse trick (paper Section 7.3).
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_X86_MACHINEIR_H
#define SELGEN_X86_MACHINEIR_H

#include "support/BitValue.h"
#include "x86/CondCode.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace selgen {

/// A virtual register id.
using MReg = unsigned;

/// The machine opcodes of the x86 integer subset.
enum class MOpcode {
  Mov,   ///< dst = src1 (reg/imm/mem source, reg/mem destination).
  Lea,   ///< dst = address of src1 (mem operand, not dereferenced).
  Neg,   ///< dst = -src1; sets flags.
  Not,   ///< dst = ~src1; does not set flags (as on x86).
  Inc,   ///< dst = src1 + 1; sets flags (except CF, as on x86).
  Dec,   ///< dst = src1 - 1; sets flags (except CF).
  Add,   ///< dst = src1 + src2; sets flags.
  Sub,   ///< dst = src1 - src2; sets flags.
  Imul,  ///< dst = src1 * src2 (low word); flags undefined here.
  And,   ///< dst = src1 & src2; sets flags, CF=OF=0.
  Or,    ///< dst = src1 | src2; sets flags, CF=OF=0.
  Xor,   ///< dst = src1 ^ src2; sets flags, CF=OF=0.
  Shl,   ///< dst = src1 << (src2 mod W).
  Shr,   ///< dst = src1 >>u (src2 mod W).
  Sar,   ///< dst = src1 >>s (src2 mod W).
  Rol,   ///< dst = rotate left.
  Ror,   ///< dst = rotate right.
  Andn,  ///< dst = ~src1 & src2 (BMI).
  Blsr,  ///< dst = src1 & (src1 - 1) (BMI).
  Blsi,  ///< dst = src1 & -src1 (BMI).
  Blsmsk,///< dst = src1 ^ (src1 - 1) (BMI).
  Cmov,  ///< dst = cc(flags) ? src1 : src2 (conditional move).
  Cmp,   ///< flags = compare(src1, src2); no destination.
  Test,  ///< flags = logic-compare(src1 & src2); no destination.
  Setcc, ///< dst = cc(flags) ? 1 : 0.
};

/// A memory operand: [base + index * scale + disp].
struct MemRef {
  std::optional<MReg> Base;
  std::optional<MReg> Index;
  unsigned Scale = 1; // 1, 2, 4, or 8.
  int64_t Disp = 0;

  /// Number of address components, the paper's complexity measure for
  /// addressing modes.
  unsigned numComponents() const {
    return (Base ? 1 : 0) + (Index ? 1 : 0) + (Scale != 1 ? 1 : 0) +
           (Disp != 0 ? 1 : 0);
  }
};

/// A generic machine operand.
struct MOperand {
  enum class Kind { None, Reg, Imm, Mem };
  Kind K = Kind::None;
  MReg R = 0;
  BitValue Imm;
  MemRef M;

  static MOperand none() { return {}; }
  static MOperand reg(MReg R) {
    MOperand Op;
    Op.K = Kind::Reg;
    Op.R = R;
    return Op;
  }
  static MOperand imm(BitValue Value) {
    MOperand Op;
    Op.K = Kind::Imm;
    Op.Imm = std::move(Value);
    return Op;
  }
  static MOperand mem(MemRef Ref) {
    MOperand Op;
    Op.K = Kind::Mem;
    Op.M = std::move(Ref);
    return Op;
  }

  bool isNone() const { return K == Kind::None; }
  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }
  bool isMem() const { return K == Kind::Mem; }
};

/// One machine instruction. Operand roles by convention:
/// Dst is the destination (Reg, Mem for stores/read-modify-write, or
/// None for Cmp/Test); Src1/Src2 are sources.
struct MachineInstr {
  MOpcode Op;
  CondCode CC = CondCode::E; // Setcc/Cmov only.
  MOperand Dst;
  MOperand Src1;
  MOperand Src2;
};

class MachineBlock;

/// Terminator of a machine block.
struct MTerminator {
  enum class Kind { Ret, Jmp, Jcc };
  Kind TermKind = Kind::Ret;
  CondCode CC = CondCode::E; // Jcc.
  MachineBlock *Then = nullptr;
  MachineBlock *Else = nullptr;
  /// Values returned (Ret only).
  std::vector<MOperand> ReturnValues;
  /// Parallel copies performed when taking the edge (SSA block
  /// arguments lowered to moves). First = target's argument register.
  std::vector<std::pair<MReg, MOperand>> ThenMoves;
  std::vector<std::pair<MReg, MOperand>> ElseMoves;
};

/// A machine basic block.
class MachineBlock {
public:
  explicit MachineBlock(std::string Name) : Name(std::move(Name)) {}

  const std::string &name() const { return Name; }
  std::vector<MachineInstr> &instructions() { return Instrs; }
  const std::vector<MachineInstr> &instructions() const { return Instrs; }
  void append(MachineInstr Instr) { Instrs.push_back(std::move(Instr)); }

  MTerminator &terminator() { return Term; }
  const MTerminator &terminator() const { return Term; }

  /// Argument registers this block expects to be filled by incoming
  /// edge moves.
  std::vector<MReg> ArgRegs;

private:
  std::string Name;
  std::vector<MachineInstr> Instrs;
  MTerminator Term;
};

/// A machine function: CFG of machine blocks, entry first.
class MachineFunction {
public:
  MachineFunction(std::string Name, unsigned Width)
      : Name(std::move(Name)), Width(Width) {}

  const std::string &name() const { return Name; }
  unsigned width() const { return Width; }

  MachineBlock *createBlock(const std::string &BlockName) {
    Blocks.push_back(std::make_unique<MachineBlock>(BlockName));
    return Blocks.back().get();
  }
  MachineBlock *entry() const { return Blocks.front().get(); }
  const std::vector<std::unique_ptr<MachineBlock>> &blocks() const {
    return Blocks;
  }

  /// Allocates a fresh virtual register.
  MReg newReg() { return NextReg++; }

  /// Static instruction count over all blocks.
  unsigned numInstructions() const {
    unsigned Count = 0;
    for (const auto &Block : Blocks)
      Count += Block->instructions().size();
    return Count;
  }

private:
  std::string Name;
  unsigned Width;
  std::vector<std::unique_ptr<MachineBlock>> Blocks;
  MReg NextReg = 0;
};

/// Mnemonic for an opcode, e.g. "add".
const char *mopcodeName(MOpcode Op);

/// Renders a whole machine function as pseudo-assembly.
std::string printMachineFunction(const MachineFunction &MF);

/// Renders one instruction.
std::string printMachineInstr(const MachineInstr &Instr);

} // namespace selgen

#endif // SELGEN_X86_MACHINEIR_H
