//===- MachinePasses.cpp - Machine-code cleanup passes ------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "x86/MachinePasses.h"

#include <set>

using namespace selgen;

namespace {

/// True if the instruction writes the flags.
bool setsFlags(const MachineInstr &Instr) {
  switch (Instr.Op) {
  case MOpcode::Mov:
  case MOpcode::Lea:
  case MOpcode::Not:
  case MOpcode::Cmov:
  case MOpcode::Setcc:
    return false;
  default:
    return true;
  }
}

/// True if the instruction reads the flags.
bool readsFlags(const MachineInstr &Instr) {
  return Instr.Op == MOpcode::Cmov || Instr.Op == MOpcode::Setcc;
}

void collectReadRegs(const MOperand &Op, std::set<MReg> &Regs) {
  switch (Op.K) {
  case MOperand::Kind::Reg:
    Regs.insert(Op.R);
    break;
  case MOperand::Kind::Mem:
    if (Op.M.Base)
      Regs.insert(*Op.M.Base);
    if (Op.M.Index)
      Regs.insert(*Op.M.Index);
    break;
  default:
    break;
  }
}

} // namespace

unsigned selgen::removeDeadInstructions(MachineFunction &MF) {
  unsigned TotalRemoved = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;

    // Registers read anywhere (instruction sources, memory-operand
    // destinations' address registers, edge moves, returns).
    std::set<MReg> ReadRegs;
    for (const auto &Block : MF.blocks()) {
      for (const MachineInstr &Instr : Block->instructions()) {
        collectReadRegs(Instr.Src1, ReadRegs);
        collectReadRegs(Instr.Src2, ReadRegs);
        if (Instr.Dst.isMem())
          collectReadRegs(Instr.Dst, ReadRegs);
      }
      const MTerminator &Term = Block->terminator();
      for (const MOperand &Value : Term.ReturnValues)
        collectReadRegs(Value, ReadRegs);
      for (const auto &[Dst, Src] : Term.ThenMoves) {
        (void)Dst;
        collectReadRegs(Src, ReadRegs);
      }
      for (const auto &[Dst, Src] : Term.ElseMoves) {
        (void)Dst;
        collectReadRegs(Src, ReadRegs);
      }
    }

    for (const auto &Block : MF.blocks()) {
      auto &Instrs = Block->instructions();
      // Backwards scan tracking whether the current flag definition is
      // still needed.
      bool FlagsLive =
          Block->terminator().TermKind == MTerminator::Kind::Jcc;
      std::vector<bool> Keep(Instrs.size(), true);
      for (size_t I = Instrs.size(); I-- > 0;) {
        const MachineInstr &Instr = Instrs[I];
        bool DefinesNeededFlags = setsFlags(Instr) && FlagsLive;
        bool WritesLiveReg =
            Instr.Dst.isReg() && ReadRegs.count(Instr.Dst.R);
        bool HasMemEffect = Instr.Dst.isMem();
        // Memory reads are side-effect free in this model, so a dead
        // load can go as well. Cmp/Test (no destination) are dead once
        // their flags are unconsumed.
        bool DeadDestination =
            Instr.Dst.isNone() || (Instr.Dst.isReg() && !WritesLiveReg);
        if (!DefinesNeededFlags && !HasMemEffect && DeadDestination) {
          Keep[I] = false;
          Changed = true;
          ++TotalRemoved;
        }
        if (setsFlags(Instr))
          FlagsLive = false;
        if (readsFlags(Instr))
          FlagsLive = true;
      }
      if (Changed) {
        std::vector<MachineInstr> Remaining;
        for (size_t I = 0; I < Instrs.size(); ++I)
          if (Keep[I])
            Remaining.push_back(std::move(Instrs[I]));
        Instrs = std::move(Remaining);
      }
    }
  }
  return TotalRemoved;
}
