//===- MachinePasses.h - Machine-code cleanup passes -------------*- C++ -*-===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-selection cleanup shared by all instruction selectors. The
/// only pass is a conservative dead-code elimination: greedy selectors
/// that fold shared subexpressions (the handwritten selector's
/// overlapping address modes) can leave the standalone computation of
/// an absorbed value behind; removing it models what any real backend
/// does before emission.
///
//===----------------------------------------------------------------------===//

#ifndef SELGEN_X86_MACHINEPASSES_H
#define SELGEN_X86_MACHINEPASSES_H

#include "x86/MachineIR.h"

namespace selgen {

/// Removes instructions whose register result is never read and whose
/// side effects are unobservable (no memory destination; flags not
/// consumed before the next flag definition). Runs to a fixpoint.
/// Returns the number of instructions removed.
unsigned removeDeadInstructions(MachineFunction &MF);

} // namespace selgen

#endif // SELGEN_X86_MACHINEPASSES_H
