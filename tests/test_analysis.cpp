//===- test_analysis.cpp - Known-bits/range dataflow soundness tests ----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Soundness anchor for src/analysis: every transfer function is checked
// against the concrete interpreter exhaustively at w8 (all 256 x 256
// operand combinations for binaries, all 256 for unaries, plus random
// abstract facts whose whole concretizations are enumerated), and
// against Z3 validity queries at w16/w32. A failure here means the
// selection engine's precondition elision or the normalizer's
// fact-guarded rewrites could miscompile.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"
#include "ir/Graph.h"
#include "ir/Interpreter.h"
#include "ir/Normalizer.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "semantics/IrSemantics.h"
#include "smt/SmtContext.h"

#include <random>

#include <gtest/gtest.h>

using namespace selgen;

namespace {

const Opcode BinaryOps[] = {Opcode::Add, Opcode::Sub, Opcode::Mul,
                            Opcode::And, Opcode::Or,  Opcode::Xor,
                            Opcode::Shl, Opcode::Shr, Opcode::Shrs};
const Opcode UnaryOps[] = {Opcode::Not, Opcode::Minus};
const Relation AllRelations[] = {Relation::Eq,  Relation::Ne,  Relation::Ult,
                                 Relation::Ule, Relation::Ugt, Relation::Uge,
                                 Relation::Slt, Relation::Sle, Relation::Sgt,
                                 Relation::Sge};

Graph makeBinaryGraph(Opcode Op, unsigned Width) {
  Graph G(Width, {Sort::value(Width), Sort::value(Width)});
  G.setResults({G.createBinary(Op, G.arg(0), G.arg(1))});
  return G;
}

Graph makeUnaryGraph(Opcode Op, unsigned Width) {
  Graph G(Width, {Sort::value(Width)});
  G.setResults({G.createUnary(Op, G.arg(0))});
  return G;
}

/// Concrete reference semantics: the interpreter. nullopt = UB.
std::optional<BitValue> concreteBinary(const Graph &G, const BitValue &A,
                                       const BitValue &B) {
  EvalResult R =
      evaluateGraph(G, {EvalValue::fromBits(A), EvalValue::fromBits(B)});
  if (R.Undefined)
    return std::nullopt;
  return R.Results[0].Bits;
}

std::optional<BitValue> concreteUnary(const Graph &G, const BitValue &A) {
  EvalResult R = evaluateGraph(G, {EvalValue::fromBits(A)});
  if (R.Undefined)
    return std::nullopt;
  return R.Results[0].Bits;
}

/// Enumerates the whole concretization of a w8 fact (at most 256 values).
std::vector<BitValue> members(const ValueFact &F) {
  std::vector<BitValue> Out;
  for (unsigned V = 0; V < 256; ++V) {
    BitValue Bits(8, V);
    if (F.contains(Bits))
      Out.push_back(Bits);
  }
  return Out;
}

/// A random w8 fact drawn from all four constructor families plus meets.
ValueFact randomFact(std::mt19937 &Rng) {
  std::uniform_int_distribution<unsigned> Byte(0, 255);
  switch (Rng() % 5) {
  case 0:
    return ValueFact::constant(BitValue(8, Byte(Rng)));
  case 1: {
    unsigned Zeros = Byte(Rng);
    unsigned Ones = Byte(Rng) & ~Zeros;
    return ValueFact::fromKnownBits(BitValue(8, Zeros), BitValue(8, Ones));
  }
  case 2: {
    unsigned Lo = Byte(Rng), Hi = Byte(Rng);
    if (Lo > Hi)
      std::swap(Lo, Hi);
    return ValueFact::fromUnsignedRange(BitValue(8, Lo), BitValue(8, Hi));
  }
  case 3: {
    int Lo = static_cast<int>(Byte(Rng)) - 128;
    int Hi = static_cast<int>(Byte(Rng)) - 128;
    if (Lo > Hi)
      std::swap(Lo, Hi);
    return ValueFact::fromSignedRange(
        BitValue(8, static_cast<uint8_t>(Lo)),
        BitValue(8, static_cast<uint8_t>(Hi)));
  }
  default: {
    unsigned Zeros = Byte(Rng);
    unsigned Lo = Byte(Rng), Hi = Byte(Rng);
    if (Lo > Hi)
      std::swap(Lo, Hi);
    return ValueFact::fromKnownBits(BitValue(8, Zeros), BitValue(8, 0))
        .meet(ValueFact::fromUnsignedRange(BitValue(8, Lo), BitValue(8, Hi)));
  }
  }
}

Graph parseOrDie(const std::string &Text) {
  std::string Error;
  std::optional<Graph> G = parseGraph(Text, &Error);
  EXPECT_TRUE(G.has_value()) << Error << "\n" << Text;
  return std::move(*G);
}

const Node *findOp(const Graph &G, Opcode Op) {
  for (const Node *N : G.liveNodes())
    if (N->opcode() == Op)
      return N;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Exhaustive w8: transfer functions vs the concrete interpreter.
//===----------------------------------------------------------------------===//

TEST(ValueFact, ConstantFoldExhaustiveW8) {
  // Singleton facts must fold binaries to the exact interpreter result
  // on every defined input; UB inputs (shift amount >= 8) must not
  // produce a constant claim that contradicts anything (top is fine).
  for (Opcode Op : BinaryOps) {
    Graph G = makeBinaryGraph(Op, 8);
    for (unsigned A = 0; A < 256; ++A) {
      ValueFact FA = ValueFact::constant(BitValue(8, A));
      for (unsigned B = 0; B < 256; ++B) {
        ValueFact FB = ValueFact::constant(BitValue(8, B));
        std::optional<BitValue> R =
            concreteBinary(G, BitValue(8, A), BitValue(8, B));
        if (!R)
          continue; // UB execution: any fact is vacuously sound.
        ValueFact FR = ValueFact::transferBinary(Op, FA, FB);
        if (!FR.contains(*R) || !FR.isConstant())
          FAIL() << opcodeName(Op) << "(" << A << ", " << B
                 << "): expected exact constant " << R->toHexString();
      }
    }
  }
  for (Opcode Op : UnaryOps) {
    Graph G = makeUnaryGraph(Op, 8);
    for (unsigned A = 0; A < 256; ++A) {
      std::optional<BitValue> R = concreteUnary(G, BitValue(8, A));
      ASSERT_TRUE(R.has_value());
      ValueFact FR =
          ValueFact::transferUnary(Op, ValueFact::constant(BitValue(8, A)));
      if (!FR.contains(*R) || !FR.isConstant())
        FAIL() << opcodeName(Op) << "(" << A << "): expected exact constant "
               << R->toHexString();
    }
  }
}

TEST(ValueFact, AbstractBinarySoundnessW8) {
  // For random abstract operand facts, every concrete result of every
  // defined member execution must be contained in the transfer result.
  std::mt19937 Rng(0xC60'18);
  for (Opcode Op : BinaryOps) {
    Graph G = makeBinaryGraph(Op, 8);
    for (unsigned Trial = 0; Trial < 24; ++Trial) {
      ValueFact FA = randomFact(Rng);
      ValueFact FB = randomFact(Rng);
      ValueFact FR = ValueFact::transferBinary(Op, FA, FB);
      std::vector<BitValue> MA = members(FA), MB = members(FB);
      ASSERT_FALSE(MA.empty());
      ASSERT_FALSE(MB.empty());
      // Cap the product to keep the test fast; the sample stays
      // deterministic through the fixed seed.
      bool Subsample = MA.size() * MB.size() > 4096;
      unsigned Steps = Subsample ? 4096 : MA.size() * MB.size();
      for (unsigned I = 0; I < Steps; ++I) {
        const BitValue &A =
            Subsample ? MA[Rng() % MA.size()] : MA[I / MB.size()];
        const BitValue &B =
            Subsample ? MB[Rng() % MB.size()] : MB[I % MB.size()];
        std::optional<BitValue> R = concreteBinary(G, A, B);
        if (!R)
          continue;
        if (!FR.contains(*R))
          FAIL() << opcodeName(Op) << ": " << R->toHexString()
                 << " escapes the transfer result for operands "
                 << A.toHexString() << ", " << B.toHexString();
      }
    }
  }
}

TEST(ValueFact, AbstractUnarySoundnessW8) {
  std::mt19937 Rng(7);
  for (Opcode Op : UnaryOps) {
    Graph G = makeUnaryGraph(Op, 8);
    for (unsigned Trial = 0; Trial < 64; ++Trial) {
      ValueFact FA = randomFact(Rng);
      ValueFact FR = ValueFact::transferUnary(Op, FA);
      for (const BitValue &A : members(FA)) {
        std::optional<BitValue> R = concreteUnary(G, A);
        ASSERT_TRUE(R.has_value());
        if (!FR.contains(*R))
          FAIL() << opcodeName(Op) << "(" << A.toHexString() << ") = "
                 << R->toHexString() << " escapes the transfer result";
      }
    }
  }
}

TEST(ValueFact, RelationSoundnessW8) {
  // Whenever evalRelation decides a comparison, every pair of concrete
  // members must agree with the decision.
  std::mt19937 Rng(11);
  for (unsigned Trial = 0; Trial < 128; ++Trial) {
    ValueFact FA = randomFact(Rng);
    ValueFact FB = randomFact(Rng);
    std::vector<BitValue> MA = members(FA), MB = members(FB);
    for (Relation Rel : AllRelations) {
      std::optional<bool> Decided = ValueFact::evalRelation(Rel, FA, FB);
      if (!Decided)
        continue;
      for (const BitValue &A : MA)
        for (const BitValue &B : MB)
          if (evaluateRelation(Rel, A, B) != *Decided)
            FAIL() << "relation decided " << *Decided << " but "
                   << A.toHexString() << " vs " << B.toHexString() << " disagrees";
    }
  }
}

//===----------------------------------------------------------------------===//
// Lattice structure.
//===----------------------------------------------------------------------===//

TEST(ValueFact, ConstructorsTighten) {
  // fromKnownBits tightens the ranges from the masks...
  ValueFact F = ValueFact::fromKnownBits(BitValue(8, 0xF0), BitValue(8, 0x01));
  EXPECT_EQ(F.umax(), BitValue(8, 0x0F));
  EXPECT_EQ(F.umin(), BitValue(8, 0x01));
  EXPECT_TRUE(F.contains(BitValue(8, 0x0B)));
  EXPECT_FALSE(F.contains(BitValue(8, 0x10)));
  EXPECT_FALSE(F.contains(BitValue(8, 0x02))); // Bit 0 known one.

  // ...and fromUnsignedRange derives known zeros for the high bits.
  ValueFact R = ValueFact::fromUnsignedRange(BitValue(8, 0), BitValue(8, 3));
  EXPECT_TRUE(R.knownZero().bit(7));
  EXPECT_TRUE(R.knownZero().bit(2));
  EXPECT_FALSE(R.knownZero().bit(1));

  ValueFact C = ValueFact::constant(BitValue(8, 0x2A));
  EXPECT_TRUE(C.isConstant());
  ASSERT_TRUE(C.asConstant().has_value());
  EXPECT_EQ(*C.asConstant(), BitValue(8, 0x2A));
  EXPECT_FALSE(C.isTop());
  EXPECT_TRUE(ValueFact::top(8).isTop());
}

TEST(ValueFact, JoinAndMeet) {
  ValueFact A = ValueFact::fromUnsignedRange(BitValue(8, 0), BitValue(8, 3));
  ValueFact B = ValueFact::constant(BitValue(8, 5));

  ValueFact J = A.join(B);
  EXPECT_TRUE(J.contains(BitValue(8, 0)));
  EXPECT_TRUE(J.contains(BitValue(8, 3)));
  EXPECT_TRUE(J.contains(BitValue(8, 5)));
  EXPECT_EQ(J.umax(), BitValue(8, 5));
  EXPECT_FALSE(J.isConstant());

  ValueFact M = A.meet(ValueFact::fromUnsignedRange(BitValue(8, 2),
                                                    BitValue(8, 200)));
  EXPECT_EQ(M.umin(), BitValue(8, 2));
  EXPECT_EQ(M.umax(), BitValue(8, 3));

  // Contradictory meets degrade to top (sound: they only arise on
  // undefined executions).
  ValueFact Contradiction =
      ValueFact::constant(BitValue(8, 1)).meet(ValueFact::constant(BitValue(8, 2)));
  EXPECT_TRUE(Contradiction.isTop());

  EXPECT_TRUE(A == A.join(A));
  EXPECT_TRUE(A == A.meet(A));
}

TEST(ValueFact, ShiftUbYieldsTop) {
  // An amount fact that only contains out-of-range values means every
  // execution is undefined: the transfer must return top, never crash.
  ValueFact Nine = ValueFact::constant(BitValue(8, 9));
  for (Opcode Op : {Opcode::Shl, Opcode::Shr, Opcode::Shrs})
    EXPECT_TRUE(
        ValueFact::transferBinary(Op, ValueFact::top(8), Nine).isTop());
}

//===----------------------------------------------------------------------===//
// Z3 validity at w16/w32: the membership constraints of the operand
// facts (plus shift definedness) must entail membership in the
// transfer result.
//===----------------------------------------------------------------------===//

z3::expr membershipExpr(SmtContext &Smt, const ValueFact &F,
                        const z3::expr &X) {
  std::vector<z3::expr> Cs;
  Cs.push_back((X & Smt.literal(F.knownZero().bitOr(F.knownOne()))) ==
               Smt.literal(F.knownOne()));
  Cs.push_back(z3::ule(Smt.literal(F.umin()), X));
  Cs.push_back(z3::ule(X, Smt.literal(F.umax())));
  Cs.push_back(z3::sle(Smt.literal(F.smin()), X));
  Cs.push_back(z3::sle(X, Smt.literal(F.smax())));
  return Smt.mkAnd(Cs);
}

z3::expr binaryExpr(Opcode Op, const z3::expr &A, const z3::expr &B) {
  switch (Op) {
  case Opcode::Add:
    return A + B;
  case Opcode::Sub:
    return A - B;
  case Opcode::Mul:
    return A * B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return z3::shl(A, B);
  case Opcode::Shr:
    return z3::lshr(A, B);
  case Opcode::Shrs:
    return z3::ashr(A, B);
  default:
    abort();
  }
}

std::vector<ValueFact> factRecipes(unsigned W) {
  std::vector<ValueFact> Facts;
  Facts.push_back(ValueFact::constant(BitValue(W, 42)));
  Facts.push_back(ValueFact::fromUnsignedRange(BitValue(W, 5),
                                               BitValue(W, 1000)));
  Facts.push_back(ValueFact::fromKnownBits(BitValue(W, 0x0F),
                                           BitValue(W, 0x30)));
  Facts.push_back(ValueFact::fromSignedRange(
      BitValue(W, 0).sub(BitValue(W, 20)), BitValue(W, 50)));
  Facts.push_back(
      ValueFact::fromUnsignedRange(BitValue(W, 0), BitValue(W, 255))
          .meet(ValueFact::fromKnownBits(BitValue(W, 1), BitValue(W, 0))));
  Facts.push_back(ValueFact::top(W));
  Facts.push_back(ValueFact::constant(BitValue(W, 3))); // In-range amount.
  return Facts;
}

TEST(ValueFact, Z3ValidityW16W32) {
  const std::pair<unsigned, unsigned> Pairs[] = {{0, 1}, {1, 1}, {2, 3},
                                                 {4, 1}, {3, 2}, {5, 6},
                                                 {1, 6}, {6, 6}};
  for (unsigned W : {16u, 32u}) {
    std::vector<ValueFact> Facts = factRecipes(W);
    for (Opcode Op : BinaryOps) {
      for (auto [IA, IB] : Pairs) {
        const ValueFact &FA = Facts[IA];
        const ValueFact &FB = Facts[IB];
        ValueFact FR = ValueFact::transferBinary(Op, FA, FB);

        SmtContext Smt;
        SmtSolver Solver(Smt);
        Solver.setTimeoutMilliseconds(60000);
        z3::expr A = Smt.bvConst("a", W);
        z3::expr B = Smt.bvConst("b", W);
        Solver.add(membershipExpr(Smt, FA, A));
        Solver.add(membershipExpr(Smt, FB, B));
        if (Op == Opcode::Shl || Op == Opcode::Shr || Op == Opcode::Shrs)
          Solver.add(z3::ult(B, Smt.literal(BitValue(W, W))));
        Solver.add(!membershipExpr(Smt, FR, binaryExpr(Op, A, B)));
        EXPECT_EQ(Solver.check(), SmtResult::Unsat)
            << opcodeName(Op) << " at w" << W << " with facts #" << IA
            << "/#" << IB << ": a concrete result escapes the transfer";
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// GraphFacts: per-graph fact queries and UB-freedom analysis.
//===----------------------------------------------------------------------===//

TEST(GraphFacts, ProvesMaskedShiftInRange) {
  Graph G = parseOrDie("graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0x07:8]()\n"
                       "  n1 = And(a1, n0)\n"
                       "  n2 = Shl(a0, n1)\n"
                       "  results(n2)\n"
                       "}\n");
  GraphFacts Facts(G);
  const Node *Shift = findOp(G, Opcode::Shl);
  ASSERT_NE(Shift, nullptr);
  EXPECT_TRUE(Facts.provesShiftInRange(Shift));
  EXPECT_FALSE(Facts.provesShiftOutOfRange(Shift));
  EXPECT_TRUE(Facts.unprovenShifts().empty());
}

TEST(GraphFacts, ConstantAmountOutOfRange) {
  Graph G = parseOrDie("graph w8 args(bv8) {\n"
                       "  n0 = Const[0x09:8]()\n"
                       "  n1 = Shl(a0, n0)\n"
                       "  results(n1)\n"
                       "}\n");
  GraphFacts Facts(G);
  const Node *Shift = findOp(G, Opcode::Shl);
  ASSERT_NE(Shift, nullptr);
  EXPECT_FALSE(Facts.provesShiftInRange(Shift));
  EXPECT_TRUE(Facts.provesShiftOutOfRange(Shift));
}

TEST(GraphFacts, UnprovenShiftListedInCreationOrder) {
  Graph G = parseOrDie("graph w8 args(bv8, bv8) {\n"
                       "  n0 = Shl(a0, a1)\n"
                       "  n1 = Const[0x07:8]()\n"
                       "  n2 = And(a1, n1)\n"
                       "  n3 = Shr(n0, n2)\n"
                       "  results(n3)\n"
                       "}\n");
  GraphFacts Facts(G);
  std::vector<const Node *> Unproven = Facts.unprovenShifts();
  ASSERT_EQ(Unproven.size(), 1u);
  EXPECT_EQ(Unproven[0]->opcode(), Opcode::Shl);
}

TEST(GraphFacts, MuxJoinsArmFacts) {
  Graph G = parseOrDie("graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0x03:8]()\n"
                       "  n1 = And(a0, n0)\n"
                       "  n2 = Const[0x05:8]()\n"
                       "  n3 = Cmp[ult](a0, a1)\n"
                       "  n4 = Mux(n3, n1, n2)\n"
                       "  results(n4)\n"
                       "}\n");
  GraphFacts Facts(G);
  const ValueFact &F = Facts.fact(G.results()[0]);
  EXPECT_TRUE(F.contains(BitValue(8, 0)));
  EXPECT_TRUE(F.contains(BitValue(8, 3)));
  EXPECT_TRUE(F.contains(BitValue(8, 5)));
  EXPECT_EQ(F.umax(), BitValue(8, 5));
  EXPECT_FALSE(F.isConstant());
}

TEST(GraphFacts, BoolFactDecidesCmp) {
  Graph G = parseOrDie("graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0x03:8]()\n"
                       "  n1 = And(a0, n0)\n"
                       "  n2 = Const[0x08:8]()\n"
                       "  n3 = Cmp[ult](n1, n2)\n"
                       "  n4 = Cmp[ult](a0, a1)\n"
                       "  n5 = Mux(n3, a0, a1)\n"
                       "  n6 = Mux(n4, a0, a1)\n"
                       "  results(n5, n6)\n"
                       "}\n");
  GraphFacts Facts(G);
  const Node *Masked = findOp(G, Opcode::And);
  ASSERT_NE(Masked, nullptr);
  // And(a0, 3) < 8 is decidable; a0 < a1 is not.
  std::optional<bool> Decided;
  std::optional<bool> Undecided;
  for (const Node *N : G.liveNodes())
    if (N->opcode() == Opcode::Cmp) {
      if (N->operand(0).Def == Masked)
        Decided = Facts.boolFact(NodeRef(const_cast<Node *>(N), 0));
      else
        Undecided = Facts.boolFact(NodeRef(const_cast<Node *>(N), 0));
    }
  ASSERT_TRUE(Decided.has_value());
  EXPECT_TRUE(*Decided);
  EXPECT_FALSE(Undecided.has_value());
}

TEST(GraphFacts, LoadValueIsTop) {
  Graph G = parseOrDie("graph w8 args(mem, bv8) {\n"
                       "  n0 = Load(a0, a1)\n"
                       "  results(n0.0, n0.1)\n"
                       "}\n");
  GraphFacts Facts(G);
  EXPECT_TRUE(Facts.fact(G.results()[1]).isTop());
}

//===----------------------------------------------------------------------===//
// Normalizer fact-guarded rewrites, each cross-checked against Z3.
//===----------------------------------------------------------------------===//

/// Proves original == normalized on every execution satisfying the
/// original graph's preconditions (the only executions the rewrites
/// claim anything about).
void expectEquivalent(const Graph &Original, const Graph &Normalized) {
  SmtContext Smt;
  SemanticsContext Context{Smt, Original.width(), nullptr, {}};
  std::vector<z3::expr> Args;
  for (unsigned I = 0; I < Original.numArgs(); ++I)
    Args.push_back(Smt.bvConst("arg" + std::to_string(I), Original.width()));
  GraphSemantics SO = buildGraphSemantics(Context, Original, Args);
  GraphSemantics SN = buildGraphSemantics(Context, Normalized, Args);
  ASSERT_EQ(SO.Results.size(), SN.Results.size());

  SmtSolver Solver(Smt);
  Solver.setTimeoutMilliseconds(60000);
  Solver.add(SO.Precondition);
  std::vector<z3::expr> Diffs;
  for (size_t I = 0; I < SO.Results.size(); ++I)
    Diffs.push_back(SO.Results[I] != SN.Results[I]);
  Solver.add(Smt.mkOr(Diffs));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat)
      << "normalizer changed semantics:\n  " << printGraphExpression(Original)
      << "\n  " << printGraphExpression(Normalized);
}

TEST(NormalizerFacts, AndMaskElision) {
  // (a >> 6) & 3 == a >> 6: the mask keeps every possibly-set bit.
  Graph G = parseOrDie("graph w8 args(bv8) {\n"
                       "  n0 = Const[0x06:8]()\n"
                       "  n1 = Shr(a0, n0)\n"
                       "  n2 = Const[0x03:8]()\n"
                       "  n3 = And(n1, n2)\n"
                       "  results(n3)\n"
                       "}\n");
  Graph N = normalizeGraph(G);
  ASSERT_TRUE(N.results()[0].Def != nullptr);
  EXPECT_EQ(N.results()[0].Def->opcode(), Opcode::Shr);
  expectEquivalent(G, N);
}

TEST(NormalizerFacts, AndAnnihilation) {
  // Disjoint known-zero masks: (a & 0xF0) & (b & 0x0F) == 0.
  Graph G = parseOrDie("graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0xf0:8]()\n"
                       "  n1 = And(a0, n0)\n"
                       "  n2 = Const[0x0f:8]()\n"
                       "  n3 = And(a1, n2)\n"
                       "  n4 = And(n1, n3)\n"
                       "  results(n4)\n"
                       "}\n");
  Graph N = normalizeGraph(G);
  ASSERT_EQ(N.results()[0].Def->opcode(), Opcode::Const);
  EXPECT_EQ(N.results()[0].Def->constValue(), BitValue(8, 0));
  expectEquivalent(G, N);
}

TEST(NormalizerFacts, OrAbsorption) {
  // (a & 3) | 0x0f == 0x0f: every possibly-set lhs bit is known one on
  // the rhs.
  Graph G = parseOrDie("graph w8 args(bv8) {\n"
                       "  n0 = Const[0x03:8]()\n"
                       "  n1 = And(a0, n0)\n"
                       "  n2 = Const[0x0f:8]()\n"
                       "  n3 = Or(n1, n2)\n"
                       "  results(n3)\n"
                       "}\n");
  Graph N = normalizeGraph(G);
  ASSERT_EQ(N.results()[0].Def->opcode(), Opcode::Const);
  EXPECT_EQ(N.results()[0].Def->constValue(), BitValue(8, 0x0F));
  expectEquivalent(G, N);
}

TEST(NormalizerFacts, ShrsWithClearSignBecomesShr) {
  // The sign bit of (a >> 1) is known clear, so the arithmetic shift
  // is a logical one.
  Graph G = parseOrDie("graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0x01:8]()\n"
                       "  n1 = Shr(a0, n0)\n"
                       "  n2 = Shrs(n1, a1)\n"
                       "  results(n2)\n"
                       "}\n");
  Graph N = normalizeGraph(G);
  ASSERT_EQ(N.results()[0].Def->opcode(), Opcode::Shr);
  EXPECT_EQ(N.results()[0].Def->operand(0).Def->opcode(), Opcode::Shr);
  expectEquivalent(G, N);
}

TEST(NormalizerFacts, MuxFoldsOnDecidedSelector) {
  Graph G = parseOrDie("graph w8 args(bv8, bv8, bv8) {\n"
                       "  n0 = Const[0x03:8]()\n"
                       "  n1 = And(a0, n0)\n"
                       "  n2 = Const[0x08:8]()\n"
                       "  n3 = Cmp[ult](n1, n2)\n"
                       "  n4 = Mux(n3, a1, a2)\n"
                       "  results(n4)\n"
                       "}\n");
  Graph N = normalizeGraph(G);
  ASSERT_EQ(N.results()[0].Def->opcode(), Opcode::Arg);
  EXPECT_EQ(N.results()[0].Def->argIndex(), 1u);
  expectEquivalent(G, N);
}

TEST(NormalizerFacts, TopFactsLeaveMaskedShiftAlone) {
  // And(a1, 7) must NOT be elided (a1 is unconstrained): the masked
  // shift idiom has to survive normalization so selection-time proving
  // sees it.
  Graph G = parseOrDie("graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0x07:8]()\n"
                       "  n1 = And(a1, n0)\n"
                       "  n2 = Shl(a0, n1)\n"
                       "  results(n2)\n"
                       "}\n");
  Graph N = normalizeGraph(G);
  EXPECT_EQ(N.results()[0].Def->opcode(), Opcode::Shl);
  EXPECT_EQ(N.results()[0].Def->operand(1).Def->opcode(), Opcode::And);
  EXPECT_EQ(N.numOperations(), G.numOperations());
  expectEquivalent(G, N);
}

} // namespace
