//===- test_automaton_selector.cpp - Automaton selector equivalence ------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The automaton selector's contract is byte-identical machine code:
// for every function, it must pick the same rules and emit the same
// instructions as the linear GeneratedSelector, because both run the
// same selection engine and the automaton only accelerates candidate
// discovery. These tests enforce that equivalence across the
// hand-curated rule libraries, the per-pattern test functions of the
// testgen subsystem, the synthetic evaluation workloads at several
// widths, and the matcher edge cases (identity patterns, Imm-role
// binding, DAG re-convergence, compare-and-jump rules).
//
//===----------------------------------------------------------------------===//

#include "eval/Workloads.h"
#include "ir/Normalizer.h"
#include "isel/AutomatonSelector.h"
#include "isel/GeneratedSelector.h"
#include "isel/SelectionEngine.h"
#include "refsel/ReferenceSelectors.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "testgen/TestCaseGenerator.h"
#include "x86/Emulator.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

/// printMachineFunction output minus the first line: the header line
/// carries the machine function's name, which includes the selector
/// name ("f.synthesized" vs "f.automaton") by design. Everything
/// below it — every block, instruction, and operand — must be
/// byte-identical.
std::string asmBody(const MachineFunction &MF) {
  std::string Text = printMachineFunction(MF);
  size_t Newline = Text.find('\n');
  return Newline == std::string::npos ? std::string() :
                                        Text.substr(Newline + 1);
}

/// Selects \p F with both selectors and asserts byte-identical output
/// and identical coverage accounting.
void expectByteIdentical(const Function &F, GeneratedSelector &Linear,
                         AutomatonSelector &Automaton,
                         const std::string &Context) {
  SelectionResult LinearResult = Linear.select(F);
  SelectionResult AutomatonResult = Automaton.select(F);
  ASSERT_TRUE(LinearResult.MF && AutomatonResult.MF) << Context;
  EXPECT_EQ(asmBody(*LinearResult.MF), asmBody(*AutomatonResult.MF))
      << Context;
  EXPECT_EQ(LinearResult.TotalOperations, AutomatonResult.TotalOperations)
      << Context;
  EXPECT_EQ(LinearResult.CoveredOperations,
            AutomatonResult.CoveredOperations)
      << Context;
  EXPECT_EQ(LinearResult.FallbackOperations,
            AutomatonResult.FallbackOperations)
      << Context;
}

/// One-block function over [mem, a, b].
Function singleBlock(const std::function<NodeRef(Graph &)> &Build) {
  Function F("f", W);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  Graph &G = Entry->body();
  NodeRef Result = Build(G);
  Entry->setReturn({G.arg(0), Result});
  return F;
}

struct AutomatonSelectorTest : public ::testing::Test {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase GnuRules = buildGnuLikeRules(W);
  PatternDatabase ClangRules = buildClangLikeRules(W);
  GeneratedSelector Linear{GnuRules, Goals};
  AutomatonSelector Automaton{GnuRules, Goals};
};

} // namespace

TEST_F(AutomatonSelectorTest, ByteIdenticalOnPatternTestFunctions) {
  // Every rule of both libraries as a runnable test function (the
  // testgen workload). Covers identity patterns, immediate forms,
  // memory rules, and the compare-and-jump rules, which testgen turns
  // into two-way branches.
  for (const PatternDatabase *Db : {&GnuRules, &ClangRules}) {
    GeneratedSelector Lin(*Db, Goals);
    AutomatonSelector Auto(*Db, Goals);
    unsigned Index = 0;
    for (const Rule &R : Db->rules()) {
      Function F = buildPatternTestFunction(
          R, W, "pattest_" + std::to_string(Index));
      expectByteIdentical(F, Lin, Auto,
                          "rule " + std::to_string(Index) + " for " +
                              R.GoalName);
      ++Index;
    }
    EXPECT_GT(Index, 20u);
  }
}

TEST_F(AutomatonSelectorTest, ByteIdenticalOnEvalWorkloadsAllWidths) {
  // The synthetic CINT2000-profile workloads, both libraries, all the
  // widths the seed tests exercise.
  for (unsigned Width : {8u, 16u, 32u}) {
    GoalLibrary WidthGoals =
        GoalLibrary::build(Width, GoalLibrary::allGroups());
    for (bool UseClang : {false, true}) {
      PatternDatabase Db = UseClang ? buildClangLikeRules(Width)
                                    : buildGnuLikeRules(Width);
      GeneratedSelector Lin(Db, WidthGoals);
      AutomatonSelector Auto(Db, WidthGoals);
      for (const WorkloadProfile &Profile : cint2000Profiles()) {
        Function F = buildWorkload(Profile, Width);
        expectByteIdentical(F, Lin, Auto,
                            Profile.Name + " w" + std::to_string(Width) +
                                (UseClang ? " clang" : " gnu"));
      }
    }
  }
}

TEST_F(AutomatonSelectorTest, ByteIdenticalOnRandomPrograms) {
  Rng Random(271828);
  for (int Trial = 0; Trial < 40; ++Trial) {
    Function F = singleBlock([&](Graph &G) {
      std::vector<NodeRef> Pool = {G.arg(1), G.arg(2)};
      auto pick = [&] { return Pool[Random.nextBelow(Pool.size())]; };
      for (int I = 0; I < 10; ++I) {
        switch (Random.nextBelow(8)) {
        case 0:
          Pool.push_back(G.createBinary(Opcode::Add, pick(), pick()));
          break;
        case 1:
          Pool.push_back(G.createBinary(Opcode::Sub, pick(), pick()));
          break;
        case 2:
          Pool.push_back(G.createBinary(Opcode::And, pick(), pick()));
          break;
        case 3:
          Pool.push_back(G.createBinary(Opcode::Or, pick(), pick()));
          break;
        case 4:
          Pool.push_back(G.createUnary(Opcode::Not, pick()));
          break;
        case 5:
          Pool.push_back(G.createUnary(Opcode::Minus, pick()));
          break;
        case 6:
          Pool.push_back(G.createConst(Random.nextInterestingBitValue(W)));
          break;
        case 7: {
          NodeRef Cmp = G.createCmp(
              allRelations()[Random.nextBelow(allRelations().size())],
              pick(), pick());
          Pool.push_back(G.createMux(Cmp, pick(), pick()));
          break;
        }
        }
      }
      return Pool.back();
    });
    normalizeFunction(F);
    expectByteIdentical(F, Linear, Automaton,
                        "random trial " + std::to_string(Trial));
  }
}

TEST_F(AutomatonSelectorTest, IdentityPatternMaterializesImmediates) {
  // A returned constant exercises the identity (argument-only) mov_ri
  // rule: it has no root operation, lives outside the discrimination
  // tree, and must still fire in both selectors.
  Function F = singleBlock(
      [](Graph &G) { return G.createConst(BitValue(W, 42)); });
  expectByteIdentical(F, Linear, Automaton, "returned constant");

  SelectionResult R = Automaton.select(F);
  EXPECT_EQ(R.FallbackOperations, 0u) << "mov_ri identity rule missing";
}

TEST_F(AutomatonSelectorTest, ImmRoleBindsOnlyConstants) {
  // add_ri's pattern argument has the Imm role: Add(a, 7) may use it,
  // Add(a, b) must not. The automaton's wildcard edges do not test
  // roles — the full matcher at the leaf does — so both subjects must
  // still produce identical code in both selectors.
  Function WithConst = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::Add, G.arg(1),
                          G.createConst(BitValue(W, 7)));
  });
  Function WithValue = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::Add, G.arg(1), G.arg(2));
  });
  expectByteIdentical(WithConst, Linear, Automaton, "add imm");
  expectByteIdentical(WithValue, Linear, Automaton, "add reg");
}

TEST_F(AutomatonSelectorTest, CompareAndJumpRules) {
  for (Relation Rel : allRelations()) {
    Function F("jump", W);
    BasicBlock *Entry = F.createBlock(
        "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
    BasicBlock *Then = F.createBlock("then", {Sort::memory()});
    BasicBlock *Else = F.createBlock("else", {Sort::memory()});
    {
      Graph &G = Entry->body();
      NodeRef Cond = G.createCmp(Rel, G.arg(1), G.arg(2));
      Entry->setBranch(Cond, Then, {G.arg(0)}, Else, {G.arg(0)});
    }
    {
      Graph &G = Then->body();
      Then->setReturn({G.arg(0), G.createConst(BitValue(W, 1))});
    }
    {
      Graph &G = Else->body();
      Else->setReturn({G.arg(0), G.createConst(BitValue(W, 0))});
    }
    expectByteIdentical(F, Linear, Automaton,
                        std::string("jump ") + relationName(Rel));
    SelectionResult R = Automaton.select(F);
    EXPECT_EQ(R.MF->entry()->terminator().TermKind, MTerminator::Kind::Jcc)
        << relationName(Rel);
  }
}

TEST_F(AutomatonSelectorTest, ShiftPreconditionStillBlocksRules) {
  // shl by an out-of-range constant: the full matcher's precondition
  // check must reject the rule in both selectors identically.
  Function F = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::Shl, G.arg(1),
                          G.createConst(BitValue(W, 12)));
  });
  expectByteIdentical(F, Linear, Automaton, "out-of-range shl");
}

TEST_F(AutomatonSelectorTest, DagReconvergentSubjectsMatch) {
  // Subject re-convergence: both operands of the And are the same
  // Sub node (the blsr idiom built as a DAG).
  Function F = singleBlock([](Graph &G) {
    NodeRef Dec = G.createBinary(Opcode::Sub, G.arg(1),
                                 G.createConst(BitValue(W, 1)));
    return G.createBinary(Opcode::And, G.arg(1), Dec);
  });
  normalizeFunction(F);
  expectByteIdentical(F, Linear, Automaton, "blsr DAG");
}

TEST_F(AutomatonSelectorTest, SerializedAutomatonProducesIdenticalOutput) {
  const std::string Path = "test-automaton-roundtrip.mat";
  ASSERT_TRUE(Automaton.automaton().writeFile(Path));
  std::string Error;
  std::optional<MatcherAutomaton> Loaded =
      MatcherAutomaton::loadFile(Path, &Error);
  ASSERT_TRUE(Loaded) << Error;
  AutomatonSelector FromFile(GnuRules, Goals, std::move(*Loaded));

  Rng Random(11);
  for (int Trial = 0; Trial < 10; ++Trial) {
    Function F = singleBlock([&](Graph &G) {
      NodeRef X = G.createBinary(Opcode::Add, G.arg(1), G.arg(2));
      NodeRef Y = G.createBinary(
          Opcode::And, X, G.createConst(Random.nextInterestingBitValue(W)));
      return G.createBinary(Opcode::Xor, Y, G.arg(1));
    });
    normalizeFunction(F);
    SelectionResult A = Automaton.select(F);
    SelectionResult B = FromFile.select(F);
    EXPECT_EQ(asmBody(*A.MF), asmBody(*B.MF));
  }
}

TEST_F(AutomatonSelectorTest, SelectionRunsAgreeWithInterpreter) {
  // Not only identical to the linear selector, but actually correct:
  // differential against the IR interpreter.
  Function F = singleBlock([](Graph &G) {
    NodeRef Blsr = G.createBinary(
        Opcode::And, G.arg(1),
        G.createBinary(Opcode::Sub, G.arg(1),
                       G.createConst(BitValue(W, 1))));
    return G.createBinary(Opcode::Add, Blsr, G.arg(2));
  });
  normalizeFunction(F);
  SelectionResult R = Automaton.select(F);

  Rng Random(7);
  for (int Run = 0; Run < 40; ++Run) {
    std::vector<BitValue> Args = {Random.nextInterestingBitValue(W),
                                  Random.nextInterestingBitValue(W)};
    MemoryState Memory;
    FunctionResult Reference = runFunction(F, Args, Memory);
    if (Reference.Undefined)
      continue;
    std::map<MReg, BitValue> Regs;
    const auto &ArgRegs = R.MF->entry()->ArgRegs;
    for (size_t I = 0; I < ArgRegs.size(); ++I)
      Regs[ArgRegs[I]] = Args[I];
    MachineRunResult Machine = runMachineFunction(*R.MF, Regs, Memory);
    ASSERT_EQ(Machine.ReturnValues.size(), Reference.ReturnValues.size());
    for (size_t I = 0; I < Reference.ReturnValues.size(); ++I)
      EXPECT_EQ(Machine.ReturnValues[I], Reference.ReturnValues[I])
          << "run " << Run;
  }
}

TEST_F(AutomatonSelectorTest, StaticElisionPreservesByteIdentity) {
  // The known-bits analysis elides runtime shift-precondition re-checks
  // only where a static proof shows the check could never reject; the
  // emitted machine code must therefore be byte-identical with the
  // elision disabled.
  ASSERT_TRUE(staticPrecondElisionEnabled());
  struct ElisionOff {
    ElisionOff() { setStaticPrecondElision(false); }
    ~ElisionOff() { setStaticPrecondElision(true); }
  };
  for (unsigned Width : {8u, 16u, 32u}) {
    GoalLibrary WidthGoals =
        GoalLibrary::build(Width, GoalLibrary::allGroups());
    PatternDatabase Db = buildGnuLikeRules(Width);
    GeneratedSelector Lin(Db, WidthGoals);
    AutomatonSelector Auto(Db, WidthGoals);
    for (const WorkloadProfile &Profile : cint2000Profiles()) {
      Function F = buildWorkload(Profile, Width);
      SelectionResult LinOn = Lin.select(F);
      SelectionResult AutoOn = Auto.select(F);
      std::string LinOnBody, AutoOnBody;
      ASSERT_TRUE(LinOn.MF && AutoOn.MF);
      LinOnBody = asmBody(*LinOn.MF);
      AutoOnBody = asmBody(*AutoOn.MF);
      {
        ElisionOff Off;
        SelectionResult LinOff = Lin.select(F);
        SelectionResult AutoOff = Auto.select(F);
        ASSERT_TRUE(LinOff.MF && AutoOff.MF);
        EXPECT_EQ(LinOnBody, asmBody(*LinOff.MF))
            << Profile.Name << " w" << Width << " linear";
        EXPECT_EQ(AutoOnBody, asmBody(*AutoOff.MF))
            << Profile.Name << " w" << Width << " automaton";
      }
    }
  }
}

TEST_F(AutomatonSelectorTest, ElisionProvesPreconditionsOnWorkloads) {
  // The workloads use the masked-amount shift idiom (And(x, W-1)) and
  // constant amounts, both of which the analysis discharges: the
  // counter must move, and must stay flat with the elision off.
  Statistics::get().clear();
  for (const WorkloadProfile &Profile : cint2000Profiles())
    (void)Automaton.select(buildWorkload(Profile, W));
  EXPECT_GT(Statistics::get().value("matcher.precond_proved"), 0);

  Statistics::get().clear();
  setStaticPrecondElision(false);
  for (const WorkloadProfile &Profile : cint2000Profiles())
    (void)Automaton.select(buildWorkload(Profile, W));
  setStaticPrecondElision(true);
  EXPECT_EQ(Statistics::get().value("matcher.precond_proved"), 0);
}

TEST_F(AutomatonSelectorTest, TelemetryCountersRecorded) {
  Statistics::get().clear();
  Function F = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::Add, G.arg(1), G.arg(2));
  });
  AutomatonSelector Fresh(GnuRules, Goals);
  GeneratedSelector LinearFresh(GnuRules, Goals);
  (void)Fresh.select(F);
  (void)LinearFresh.select(F);

  Statistics &Stats = Statistics::get();
  EXPECT_GT(Stats.value("automaton.states"), 0);
  EXPECT_GT(Stats.value("automaton.transitions"), 0);
  EXPECT_GT(Stats.value("selector.rules_tried"), 0);
  EXPECT_GT(Stats.value("matcher.nodes_visited"), 0);

  bool SawAutomaton = false, SawLinear = false;
  for (const SelectionTelemetry &T : Stats.selections()) {
    SawAutomaton |= T.Selector == "automaton";
    SawLinear |= T.Selector == "synthesized";
    EXPECT_EQ(T.Function, "f");
    EXPECT_GT(T.RulesTried, 0u);
    EXPECT_GT(T.MatcherNodesVisited, 0u);
  }
  EXPECT_TRUE(SawAutomaton);
  EXPECT_TRUE(SawLinear);

  // Candidate discovery is the whole point: the automaton must try
  // strictly fewer rules than the linear scan on the same function.
  std::vector<SelectionTelemetry> Records = Stats.selections();
  uint64_t AutoTried = 0, LinearTried = 0;
  for (const SelectionTelemetry &T : Records) {
    if (T.Selector == "automaton")
      AutoTried = T.RulesTried;
    if (T.Selector == "synthesized")
      LinearTried = T.RulesTried;
  }
  EXPECT_LT(AutoTried, LinearTried);
}

TEST_F(AutomatonSelectorTest, MappedImageByteIdenticalOnPatternTestFunctions) {
  // The selector running directly off the mmap'ed binary image: on
  // every rule's test function of both libraries, its full output —
  // including the machine-function header, since both selectors report
  // the name "automaton" — must equal the heap automaton's byte for
  // byte.
  unsigned LibraryIndex = 0;
  for (const PatternDatabase *Db : {&GnuRules, &ClangRules}) {
    std::string Path = ::testing::TempDir() + "mapped_identity_" +
                       std::to_string(LibraryIndex++) + ".matb";
    {
      PreparedLibrary Lib(*Db, Goals);
      ASSERT_TRUE(buildMatcherAutomaton(Lib).writeBinaryFile(Path));
    }
    std::string Error;
    std::unique_ptr<MappedAutomaton> Mapped =
        MatcherAutomaton::mapBinary(Path, &Error);
    ASSERT_TRUE(Mapped) << Error;

    AutomatonSelector Heap(*Db, Goals);
    MappedAutomatonSelector FromImage(*Db, Goals, Mapped->view());
    EXPECT_EQ(FromImage.numRules(), Heap.numRules());
    unsigned Index = 0;
    for (const Rule &R : Db->rules()) {
      Function F = buildPatternTestFunction(
          R, W, "pattest_" + std::to_string(Index));
      SelectionResult FromHeap = Heap.select(F);
      SelectionResult FromView = FromImage.select(F);
      ASSERT_TRUE(FromHeap.MF && FromView.MF);
      EXPECT_EQ(printMachineFunction(*FromHeap.MF),
                printMachineFunction(*FromView.MF))
          << "rule " << Index << " for " << R.GoalName;
      EXPECT_EQ(FromHeap.CoveredOperations, FromView.CoveredOperations);
      EXPECT_EQ(FromHeap.FallbackOperations, FromView.FallbackOperations);
      ++Index;
    }
    EXPECT_GT(Index, 20u);
  }
}

TEST_F(AutomatonSelectorTest, MappedImageByteIdenticalOnWorkloads) {
  std::string Path = ::testing::TempDir() + "mapped_workloads.matb";
  ASSERT_TRUE(Automaton.automaton().writeBinaryFile(Path));
  std::string Error;
  std::unique_ptr<MappedAutomaton> Mapped =
      MatcherAutomaton::mapBinary(Path, &Error);
  ASSERT_TRUE(Mapped) << Error;
  MappedAutomatonSelector FromImage(GnuRules, Goals, Mapped->view());
  for (const WorkloadProfile &Profile : cint2000Profiles()) {
    Function F = buildWorkload(Profile, W);
    SelectionResult FromHeap = Automaton.select(F);
    SelectionResult FromView = FromImage.select(F);
    ASSERT_TRUE(FromHeap.MF && FromView.MF);
    EXPECT_EQ(printMachineFunction(*FromHeap.MF),
              printMachineFunction(*FromView.MF))
        << Profile.Name;
  }
}

TEST_F(AutomatonSelectorTest, ObserverBypassesGlobalStatistics) {
  // Per-request observers exist so a resident multi-threaded server
  // never touches the mutex-guarded global registry: the counters land
  // in the observer, nothing lands in the global statistics, and the
  // machine code is unchanged.
  Function F = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::Add, G.arg(1), G.arg(2));
  });
  PreparedLibrary Lib(GnuRules, Goals);
  MatcherAutomaton Compiled = buildMatcherAutomaton(Lib);

  SelectionResult Plain;
  {
    AutomatonCandidateSource Source(Lib, Compiled);
    Plain = runRuleSelection(F, Lib, Source, "automaton");
  }

  Statistics::get().clear();
  SelectionObserver Observer;
  AutomatonCandidateSource Source(Lib, Compiled);
  SelectionResult Observed =
      runRuleSelection(F, Lib, Source, "automaton", &Observer);

  EXPECT_GT(Observer.RulesTried, 0u);
  EXPECT_GT(Observer.NodesVisited, 0u);
  EXPECT_GT(Observer.SelectUs, 0.0);
  Statistics &Stats = Statistics::get();
  EXPECT_EQ(Stats.value("selector.rules_tried"), 0);
  EXPECT_EQ(Stats.value("matcher.nodes_visited"), 0);
  EXPECT_TRUE(Stats.selections().empty())
      << "observer runs must not accumulate per-selection telemetry";
  ASSERT_TRUE(Plain.MF && Observed.MF);
  EXPECT_EQ(printMachineFunction(*Plain.MF),
            printMachineFunction(*Observed.MF));
}
