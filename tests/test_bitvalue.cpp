//===- test_bitvalue.cpp - BitValue unit and property tests ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/BitValue.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace selgen;

TEST(BitValue, ConstructionTruncates) {
  BitValue V(8, 0x1234);
  EXPECT_EQ(V.zextValue(), 0x34u);
  EXPECT_EQ(V.width(), 8u);
}

TEST(BitValue, ZeroAllOnesSignBit) {
  EXPECT_TRUE(BitValue::zero(13).isZero());
  EXPECT_TRUE(BitValue::allOnes(13).isAllOnes());
  EXPECT_EQ(BitValue::allOnes(13).zextValue(), 0x1FFFu);
  EXPECT_TRUE(BitValue::signBit(13).isNegative());
  EXPECT_EQ(BitValue::signBit(13).zextValue(), 1u << 12);
}

TEST(BitValue, SextValue) {
  EXPECT_EQ(BitValue(8, 0xFF).sextValue(), -1);
  EXPECT_EQ(BitValue(8, 0x7F).sextValue(), 127);
  EXPECT_EQ(BitValue(16, 0x8000).sextValue(), -32768);
  EXPECT_EQ(BitValue(64, ~uint64_t(0)).sextValue(), -1);
}

TEST(BitValue, BitAccess) {
  BitValue V(70, 0);
  V.setBit(69, true);
  V.setBit(3, true);
  EXPECT_TRUE(V.bit(69));
  EXPECT_TRUE(V.bit(3));
  EXPECT_FALSE(V.bit(68));
  V.setBit(69, false);
  EXPECT_FALSE(V.bit(69));
}

TEST(BitValue, WideArithmeticCarries) {
  // 2^64 - 1 + 1 carries into the second word.
  BitValue Low = BitValue(128, ~uint64_t(0));
  BitValue One(128, 1);
  BitValue Sum = Low.add(One);
  EXPECT_FALSE(Sum.bit(63));
  EXPECT_TRUE(Sum.bit(64));
  EXPECT_EQ(Sum.sub(One), Low);
}

TEST(BitValue, MulMatchesShift) {
  for (unsigned Width : {8u, 16u, 32u, 64u, 96u}) {
    BitValue X(Width, 0x5B);
    EXPECT_EQ(X.mul(BitValue(Width, 8)), X.shl(3))
        << "width " << Width;
  }
}

TEST(BitValue, DivisionConventions) {
  BitValue X(8, 100);
  EXPECT_EQ(X.udiv(BitValue(8, 7)).zextValue(), 14u);
  EXPECT_EQ(X.urem(BitValue(8, 7)).zextValue(), 2u);
  // SMT-LIB conventions for division by zero.
  EXPECT_TRUE(X.udiv(BitValue::zero(8)).isAllOnes());
  EXPECT_EQ(X.urem(BitValue::zero(8)), X);
}

TEST(BitValue, ShiftsBeyondWidth) {
  BitValue X(8, 0x80);
  EXPECT_TRUE(X.shl(8).isZero());
  EXPECT_TRUE(X.lshr(8).isZero());
  EXPECT_TRUE(X.ashr(8).isAllOnes()); // Sign fill.
  EXPECT_TRUE(BitValue(8, 0x40).ashr(8).isZero());
}

TEST(BitValue, ArithmeticShiftKeepsSign) {
  EXPECT_EQ(BitValue(8, 0xF0).ashr(2).zextValue(), 0xFCu);
  EXPECT_EQ(BitValue(8, 0x70).ashr(2).zextValue(), 0x1Cu);
}

TEST(BitValue, Rotates) {
  BitValue X(8, 0b10010110);
  EXPECT_EQ(X.rotl(3).zextValue(), 0b10110100u);
  EXPECT_EQ(X.rotr(3).zextValue(), 0b11010010u);
  EXPECT_EQ(X.rotl(8), X);
  EXPECT_EQ(X.rotl(11), X.rotl(3));
}

TEST(BitValue, ExtensionAndTruncation) {
  BitValue X(8, 0x9C);
  EXPECT_EQ(X.zext(16).zextValue(), 0x009Cu);
  EXPECT_EQ(X.sext(16).zextValue(), 0xFF9Cu);
  EXPECT_EQ(X.sext(16).trunc(8), X);
  EXPECT_EQ(X.zext(100).trunc(8), X);
}

TEST(BitValue, ExtractInsertConcat) {
  BitValue X(16, 0xABCD);
  EXPECT_EQ(X.extract(15, 8).zextValue(), 0xABu);
  EXPECT_EQ(X.extract(7, 0).zextValue(), 0xCDu);
  EXPECT_EQ(X.extract(11, 4).zextValue(), 0xBCu);
  EXPECT_EQ(BitValue::concat(X.extract(15, 8), X.extract(7, 0)), X);
  BitValue Patched = X.insert(4, BitValue(8, 0x55));
  EXPECT_EQ(Patched.zextValue(), 0xA55Du);
}

TEST(BitValue, Comparisons) {
  BitValue A(8, 0x01), B(8, 0xFF);
  EXPECT_TRUE(A.ult(B));
  EXPECT_TRUE(B.slt(A)); // 0xFF is -1 signed.
  EXPECT_TRUE(A.sgt(B));
  EXPECT_TRUE(A.ule(A));
  EXPECT_TRUE(A.sge(A));
  EXPECT_FALSE(A.ugt(B));
}

TEST(BitValue, CountingOperations) {
  BitValue X(16, 0x0F30);
  EXPECT_EQ(X.popcount(), 6u);
  EXPECT_EQ(X.countLeadingZeros(), 4u);
  EXPECT_EQ(X.countTrailingZeros(), 4u);
  EXPECT_EQ(BitValue::zero(16).countLeadingZeros(), 16u);
  EXPECT_EQ(BitValue::zero(16).countTrailingZeros(), 16u);
}

TEST(BitValue, Strings) {
  BitValue X(16, 0xABCD);
  EXPECT_EQ(X.toHexString(), "0xabcd");
  EXPECT_EQ(X.toUnsignedString(), "43981");
  EXPECT_EQ(X.toSignedString(), "-21555");
  EXPECT_EQ(BitValue::zero(8).toUnsignedString(), "0");
  EXPECT_EQ(BitValue::fromString(16, "abcd", 16), X);
  EXPECT_EQ(BitValue::fromString(16, "43981", 10), X);
  EXPECT_EQ(BitValue::fromString(16, "-21555", 10), X);
  EXPECT_EQ(BitValue::fromString(8, "10010110", 2).zextValue(), 0x96u);
}

TEST(BitValue, WideStringsRoundTrip) {
  Rng Random(7);
  for (int Trial = 0; Trial < 20; ++Trial) {
    BitValue X = Random.nextBitValue(100);
    EXPECT_EQ(BitValue::fromString(100, X.toUnsignedString(), 10), X);
    EXPECT_EQ(BitValue::fromString(100, X.toHexString().substr(2), 16), X);
  }
}

TEST(BitValue, HashDistinguishesWidths) {
  EXPECT_NE(BitValue(8, 5).hash(), BitValue(16, 5).hash());
  EXPECT_EQ(BitValue(8, 5).hash(), BitValue(8, 5).hash());
}

// --- Property tests against native 64-bit arithmetic -------------------

class BitValueProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(BitValueProperty, MatchesNativeArithmetic) {
  unsigned Width = GetParam();
  uint64_t Mask =
      Width == 64 ? ~uint64_t(0) : ((uint64_t(1) << Width) - 1);
  Rng Random(Width * 7919);
  for (int Trial = 0; Trial < 200; ++Trial) {
    uint64_t A = Random.nextUInt64() & Mask;
    uint64_t B = Random.nextUInt64() & Mask;
    BitValue X(Width, A), Y(Width, B);
    EXPECT_EQ(X.add(Y).zextValue(), (A + B) & Mask);
    EXPECT_EQ(X.sub(Y).zextValue(), (A - B) & Mask);
    EXPECT_EQ(X.mul(Y).zextValue(), (A * B) & Mask);
    EXPECT_EQ(X.bitAnd(Y).zextValue(), A & B);
    EXPECT_EQ(X.bitOr(Y).zextValue(), A | B);
    EXPECT_EQ(X.bitXor(Y).zextValue(), A ^ B);
    EXPECT_EQ(X.bitNot().zextValue(), ~A & Mask);
    EXPECT_EQ(X.neg().zextValue(), (~A + 1) & Mask);
    unsigned Shift = static_cast<unsigned>(B % Width);
    EXPECT_EQ(X.shl(Shift).zextValue(), (A << Shift) & Mask);
    EXPECT_EQ(X.lshr(Shift).zextValue(), A >> Shift);
    EXPECT_EQ(X.ult(Y), A < B);
    if (B != 0) {
      EXPECT_EQ(X.udiv(Y).zextValue(), A / B);
      EXPECT_EQ(X.urem(Y).zextValue(), A % B);
    }
  }
}

TEST_P(BitValueProperty, AlgebraicIdentities) {
  unsigned Width = GetParam();
  Rng Random(Width * 31337);
  for (int Trial = 0; Trial < 100; ++Trial) {
    BitValue X = Random.nextBitValue(Width);
    BitValue Y = Random.nextBitValue(Width);
    EXPECT_EQ(X.add(Y), Y.add(X));
    EXPECT_EQ(X.sub(Y), Y.sub(X).neg());
    EXPECT_EQ(X.bitXor(X), BitValue::zero(Width));
    EXPECT_EQ(X.bitNot().bitNot(), X);
    EXPECT_EQ(X.neg().neg(), X);
    EXPECT_EQ(X.rotl(5).rotr(5), X);
    // Division identity: x = q * y + r with r < y.
    if (!Y.isZero()) {
      BitValue Q = X.udiv(Y), R = X.urem(Y);
      EXPECT_EQ(Q.mul(Y).add(R), X);
      EXPECT_TRUE(R.ult(Y));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitValueProperty,
                         ::testing::Values(7u, 8u, 16u, 24u, 32u, 64u));
