//===- test_bitvalue_vs_z3.cpp - Cross-validating the two bit-vector stacks ----===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
//
// BitValue (the concrete semantics under interpreter/emulator) and Z3
// bit-vectors (the symbolic semantics under the synthesizer) are two
// independent implementations of two's-complement arithmetic. This
// property suite pits them against each other on random inputs: a
// divergence here would silently poison either the synthesis (wrong
// rules) or the evaluation (wrong oracle).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtContext.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

class CrossValidation : public ::testing::TestWithParam<unsigned> {
protected:
  SmtContext Smt;
  Rng Random{GetParam() * 0x1234567};

  BitValue evalExpr(const z3::expr &Expr) {
    SmtSolver Solver(Smt);
    EXPECT_EQ(Solver.check(), SmtResult::Sat);
    return Smt.evalBits(Solver.model(), Expr.simplify());
  }

  bool evalBoolExpr(const z3::expr &Expr) {
    SmtSolver Solver(Smt);
    EXPECT_EQ(Solver.check(), SmtResult::Sat);
    return Smt.evalBool(Solver.model(), Expr.simplify());
  }
};

} // namespace

TEST_P(CrossValidation, ArithmeticAndLogic) {
  unsigned Width = GetParam();
  for (int Trial = 0; Trial < 40; ++Trial) {
    BitValue A = Random.nextInterestingBitValue(Width);
    BitValue B = Random.nextInterestingBitValue(Width);
    z3::expr X = Smt.literal(A), Y = Smt.literal(B);

    EXPECT_EQ(evalExpr(X + Y), A.add(B));
    EXPECT_EQ(evalExpr(X - Y), A.sub(B));
    EXPECT_EQ(evalExpr(X * Y), A.mul(B));
    EXPECT_EQ(evalExpr(X & Y), A.bitAnd(B));
    EXPECT_EQ(evalExpr(X | Y), A.bitOr(B));
    EXPECT_EQ(evalExpr(X ^ Y), A.bitXor(B));
    EXPECT_EQ(evalExpr(~X), A.bitNot());
    EXPECT_EQ(evalExpr(-X), A.neg());
    EXPECT_EQ(evalExpr(z3::udiv(X, Y)), A.udiv(B));
    EXPECT_EQ(evalExpr(z3::urem(X, Y)), A.urem(B));
  }
}

TEST_P(CrossValidation, Shifts) {
  unsigned Width = GetParam();
  for (int Trial = 0; Trial < 40; ++Trial) {
    BitValue A = Random.nextBitValue(Width);
    unsigned Amount = static_cast<unsigned>(Random.nextBelow(Width));
    z3::expr X = Smt.literal(A);
    z3::expr N = Smt.ctx().bv_val(Amount, Width);
    EXPECT_EQ(evalExpr(z3::shl(X, N)), A.shl(Amount));
    EXPECT_EQ(evalExpr(z3::lshr(X, N)), A.lshr(Amount));
    EXPECT_EQ(evalExpr(z3::ashr(X, N)), A.ashr(Amount));
  }
}

TEST_P(CrossValidation, Comparisons) {
  unsigned Width = GetParam();
  for (int Trial = 0; Trial < 40; ++Trial) {
    BitValue A = Random.nextInterestingBitValue(Width);
    BitValue B = Random.nextInterestingBitValue(Width);
    z3::expr X = Smt.literal(A), Y = Smt.literal(B);
    EXPECT_EQ(evalBoolExpr(z3::ult(X, Y)), A.ult(B));
    EXPECT_EQ(evalBoolExpr(z3::ule(X, Y)), A.ule(B));
    EXPECT_EQ(evalBoolExpr(X < Y), A.slt(B));  // Signed in z3++.
    EXPECT_EQ(evalBoolExpr(X <= Y), A.sle(B));
    EXPECT_EQ(evalBoolExpr(X == Y), A == B);
  }
}

TEST_P(CrossValidation, WidthChanges) {
  unsigned Width = GetParam();
  for (int Trial = 0; Trial < 30; ++Trial) {
    BitValue A = Random.nextBitValue(Width);
    z3::expr X = Smt.literal(A);
    EXPECT_EQ(evalExpr(z3::zext(X, 7)), A.zext(Width + 7));
    EXPECT_EQ(evalExpr(z3::sext(X, 7)), A.sext(Width + 7));
    if (Width >= 4) {
      unsigned Lo = static_cast<unsigned>(Random.nextBelow(Width / 2));
      unsigned Hi =
          Lo + static_cast<unsigned>(Random.nextBelow(Width - Lo));
      EXPECT_EQ(evalExpr(X.extract(Hi, Lo)), A.extract(Hi, Lo));
    }
    BitValue B = Random.nextBitValue(Width);
    EXPECT_EQ(evalExpr(z3::concat(X, Smt.literal(B))),
              BitValue::concat(A, B));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CrossValidation,
                         ::testing::Values(3u, 8u, 16u, 32u, 36u, 64u));
