//===- test_concrete_goal_eval.cpp - Pre-screen cross-validation ---------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
//
// The concrete pre-screen (synth/ConcreteGoalEval, synth/TestCorpus)
// may only ever kill candidates the symbolic verifier would also
// reject — otherwise the synthesized library silently loses rules.
// This suite cross-validates the concrete goal evaluation against the
// SMT goal semantics on every x86 goal, checks that screening verdicts
// agree with PatternVerifier, covers the corpus dedupe/LRU behaviour,
// and asserts the rule library is byte-identical with the pre-screen
// on and off.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "pattern/ParallelBuilder.h"
#include "synth/Synthesizer.h"
#include "x86/Goals.h"

#include <gtest/gtest.h>

#include <set>

using namespace selgen;

namespace {

constexpr unsigned Width = 8;

struct ConcreteGoalEvalTest : public ::testing::Test {
  SmtContext Smt;
  GoalLibrary Library = GoalLibrary::build(Width, GoalLibrary::allGroups());

  const InstrSpec &goal(const std::string &Name) {
    const GoalInstruction *Goal = Library.find(Name);
    EXPECT_NE(Goal, nullptr) << Name;
    return *Goal->Spec;
  }
};

/// The goal's behaviour on \p Test according to the SMT semantics:
/// substitute literals, then read the ground terms back through a
/// solver model. This is the oracle the pre-screen must agree with.
ConcreteGoalOutcome smtReference(SmtContext &Smt, const InstrSpec &Goal,
                                 const TestCase &Test) {
  GoalInstance Instance = makeConcreteGoalInstance(Smt, Width, Goal, Test);
  SemanticsContext Context{Smt, Width, Instance.Memory.get(), {}};
  std::vector<z3::expr> Results =
      Goal.computeResults(Context, Instance.Args, {});
  z3::expr Precondition = Goal.precondition(Context, Instance.Args, {});

  SmtSolver Solver(Smt);
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
  z3::model Model = Solver.model();

  ConcreteGoalOutcome Outcome;
  Outcome.Defined = Smt.evalBool(Model, Precondition);
  if (!Outcome.Defined)
    return Outcome;
  for (unsigned R = 0; R < Results.size(); ++R) {
    if (Goal.resultSorts()[R].isBool())
      Outcome.Results.push_back(
          BitValue(1, Smt.evalBool(Model, Results[R]) ? 1 : 0));
    else
      Outcome.Results.push_back(Smt.evalBits(Model, Results[R]));
  }
  return Outcome;
}

} // namespace

TEST_F(ConcreteGoalEvalTest, EveryGoalMatchesSmtSemantics) {
  // For every goal in the library (registers, memory, flags — both
  // the interpreter fast path and the simplify fallback), the concrete
  // evaluation must reproduce the SMT semantics exactly on the
  // deterministic test seeds.
  for (const GoalInstruction &Goal : Library.goals()) {
    const InstrSpec &Spec = *Goal.Spec;
    ASSERT_TRUE(Spec.internalSorts().empty()) << Goal.Name;
    ConcreteGoalEval Eval(Smt, Width, Spec);
    for (uint64_t Seed : {1u, 2u, 3u}) {
      for (const TestCase &Test :
           makeInitialTests(Spec, Width, Smt, Seed * 0x9e3779b9, 3)) {
        std::optional<ConcreteGoalOutcome> Concrete = Eval.evaluateGoal(Test);
        ASSERT_TRUE(Concrete.has_value()) << Goal.Name;
        ConcreteGoalOutcome Reference = smtReference(Smt, Spec, Test);
        ASSERT_EQ(Concrete->Defined, Reference.Defined) << Goal.Name;
        if (!Concrete->Defined)
          continue;
        ASSERT_EQ(Concrete->Results.size(), Reference.Results.size())
            << Goal.Name;
        for (unsigned R = 0; R < Concrete->Results.size(); ++R)
          EXPECT_EQ(Concrete->Results[R], Reference.Results[R])
              << Goal.Name << " result " << R;
      }
    }
  }
}

TEST_F(ConcreteGoalEvalTest, ScreenAgreesWithVerifier) {
  const InstrSpec &AddGoal = goal("add_rr");
  ConcreteGoalEval Eval(Smt, Width, AddGoal);
  PatternVerifier Verifier(Smt, Width, AddGoal);

  Graph Right(Width, {Sort::value(Width), Sort::value(Width)});
  Right.setResults(
      {Right.createBinary(Opcode::Add, Right.arg(0), Right.arg(1))});
  Graph Wrong(Width, {Sort::value(Width), Sort::value(Width)});
  Wrong.setResults(
      {Wrong.createBinary(Opcode::Sub, Wrong.arg(0), Wrong.arg(1))});

  // The correct pattern passes every test the wrong one is killed by.
  EXPECT_TRUE(Verifier.verify(Right));
  TestCase Counterexample;
  ASSERT_FALSE(Verifier.verify(Wrong, &Counterexample));
  ASSERT_EQ(Counterexample.size(), 2u);

  std::optional<ConcreteGoalOutcome> Outcome =
      Eval.evaluateGoal(Counterexample);
  ASSERT_TRUE(Outcome.has_value());
  EXPECT_EQ(Eval.screen(Wrong, Counterexample, *Outcome,
                        /*RequireTotal=*/false),
            ScreenVerdict::Kill);
  EXPECT_EQ(Eval.screen(Right, Counterexample, *Outcome,
                        /*RequireTotal=*/false),
            ScreenVerdict::Pass);
}

TEST_F(ConcreteGoalEvalTest, MemoryGoalScreeningIsExact) {
  // Memory goals use the simplify fallback; make sure it reaches a
  // ground verdict (not Inconclusive) on a real store pattern.
  const InstrSpec &Store = goal("mov_store_b");
  ConcreteGoalEval Eval(Smt, Width, Store);

  std::vector<TestCase> Tests = makeInitialTests(Store, Width, Smt, 7, 3);
  ASSERT_FALSE(Tests.empty());
  std::optional<ConcreteGoalOutcome> Outcome = Eval.evaluateGoal(Tests[0]);
  ASSERT_TRUE(Outcome.has_value());

  Graph Pattern(Width,
                {Sort::memory(), Sort::value(Width), Sort::value(Width)});
  Pattern.setResults({Pattern.createStore(Pattern.arg(0), Pattern.arg(1),
                                          Pattern.arg(2))});
  EXPECT_EQ(Eval.screen(Pattern, Tests[0], *Outcome, /*RequireTotal=*/false),
            ScreenVerdict::Pass);
}

TEST_F(ConcreteGoalEvalTest, CegisPrescreenKillsWithoutChangingResults) {
  // add_rr over {Add}: same pattern set with the pre-screen on and
  // off; with it on, wrong candidates die concretely.
  auto run = [&](bool Prescreen) {
    TestCorpus Corpus;
    CegisOptions Options;
    Options.UsePrescreen = Prescreen;
    return runCegisAllPatterns(Smt, Width, goal("add_rr"), {Opcode::Add},
                               Corpus, Options);
  };
  CegisOutcome On = run(true);
  CegisOutcome Off = run(false);
  EXPECT_TRUE(On.Exhausted);
  EXPECT_TRUE(Off.Exhausted);
  EXPECT_EQ(Off.PrescreenKills, 0u);

  std::multiset<std::string> OnExprs, OffExprs;
  for (const Graph &P : On.Patterns)
    OnExprs.insert(printGraphExpression(P));
  for (const Graph &P : Off.Patterns)
    OffExprs.insert(printGraphExpression(P));
  EXPECT_EQ(OnExprs, OffExprs);

  // With wrong-only templates every candidate disagrees with the goal
  // on some seed test, so the pre-screen must kill at least once and
  // save that many verification queries.
  TestCorpus Corpus;
  CegisOptions Options;
  CegisOutcome WrongOnly = runCegisAllPatterns(
      Smt, Width, goal("add_rr"), {Opcode::Sub}, Corpus, Options);
  EXPECT_TRUE(WrongOnly.Patterns.empty());
  EXPECT_GE(WrongOnly.PrescreenKills, 1u);
}

TEST(TestCorpusBehaviour, RejectsDuplicatesByValue) {
  // Regression: SharedTests used to collect the same counterexample
  // twice (push_back with no value check).
  TestCorpus Corpus;
  TestCase First = {BitValue(8, 5), BitValue(8, 7)};
  TestCase SameValue = {BitValue(8, 5), BitValue(8, 7)};
  EXPECT_TRUE(Corpus.insert(First, std::nullopt));
  EXPECT_FALSE(Corpus.insert(SameValue, std::nullopt));
  EXPECT_EQ(Corpus.size(), 1u);
  // Different value, same widths: accepted.
  EXPECT_TRUE(Corpus.insert({BitValue(8, 7), BitValue(8, 5)}, std::nullopt));
  EXPECT_EQ(Corpus.size(), 2u);
}

TEST(TestCorpusBehaviour, LruEvictionKeepsKillers) {
  TestCorpus Corpus(/*Capacity=*/2);
  TestCase A = {BitValue(8, 1)}, B = {BitValue(8, 2)}, C = {BitValue(8, 3)};
  EXPECT_TRUE(Corpus.insert(A, std::nullopt));
  EXPECT_TRUE(Corpus.insert(B, std::nullopt));

  // A kill refreshes A's eviction priority, so the full corpus evicts
  // B (stale) when C arrives.
  std::vector<TestCorpus::EntryPtr> Entries = Corpus.snapshot();
  ASSERT_EQ(Entries.size(), 2u);
  Corpus.recordKill(Entries[0]);
  EXPECT_TRUE(Corpus.insert(C, std::nullopt));
  EXPECT_EQ(Corpus.size(), 2u);
  EXPECT_EQ(Corpus.evictions(), 1u);

  std::set<std::string> Keys;
  for (const TestCase &Test : Corpus.allTests())
    Keys.insert(testCaseKey(Test));
  EXPECT_TRUE(Keys.count(testCaseKey(A)));
  EXPECT_TRUE(Keys.count(testCaseKey(C)));
  EXPECT_FALSE(Keys.count(testCaseKey(B)));
  // The evicted value may re-enter later.
  EXPECT_TRUE(Corpus.insert(B, std::nullopt));
}

TEST(PrescreenDeterminism, LibraryByteIdenticalWithAndWithoutPrescreen) {
  // The acceptance bar for the pre-screen: it only skips solver work,
  // it never changes the synthesized library.
  auto build = [](bool Prescreen) {
    GoalLibrary All = GoalLibrary::build(Width, {"Basic"});
    GoalLibrary Goals = GoalLibrary::subset(
        std::move(All), {"neg_r", "add_rr", "xor_rr", "cmp_je"});
    SynthesisOptions Options;
    Options.Width = Width;
    Options.QueryTimeoutMs = 30000;
    Options.TimeBudgetSeconds = 60;
    Options.UsePrescreen = Prescreen;
    return synthesizeRuleLibraryParallel(Goals, Options, /*NumThreads=*/2)
        .serialize();
  };
  EXPECT_EQ(build(true), build(false));
}
