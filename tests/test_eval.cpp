//===- test_eval.cpp - Workload generator and experiment driver tests ----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluation.h"
#include "ir/Verifier.h"
#include "isel/HandwrittenSelector.h"
#include "refsel/ReferenceSelectors.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>

using namespace selgen;

namespace {
constexpr unsigned W = 8;
} // namespace

TEST(Workloads, ElevenCint2000Profiles) {
  const auto &Profiles = cint2000Profiles();
  ASSERT_EQ(Profiles.size(), 11u);
  std::set<std::string> Names;
  for (const WorkloadProfile &Profile : Profiles)
    Names.insert(Profile.Name);
  EXPECT_EQ(Names.size(), 11u);
  EXPECT_TRUE(Names.count("181.mcf"));
  EXPECT_TRUE(Names.count("186.crafty"));
}

TEST(Workloads, DeterministicGeneration) {
  const WorkloadProfile &Profile = cint2000Profiles()[0];
  Function A = buildWorkload(Profile, W);
  Function B = buildWorkload(Profile, W);
  ASSERT_EQ(A.blocks().size(), B.blocks().size());
  for (size_t I = 0; I < A.blocks().size(); ++I) {
    Graph &GA = A.blocks()[I]->body();
    Graph &GB = B.blocks()[I]->body();
    GA.setResults(A.blocks()[I]->terminatorOperands());
    GB.setResults(B.blocks()[I]->terminatorOperands());
    EXPECT_EQ(GA.fingerprint(), GB.fingerprint());
  }
}

TEST(Workloads, AllProfilesWellFormedAndDefined) {
  Rng Random(1);
  for (const WorkloadProfile &Profile : cint2000Profiles()) {
    Function F = buildWorkload(Profile, W);
    EXPECT_TRUE(verifyFunction(F).empty()) << Profile.Name;
    EXPECT_GT(F.numOperations(), Profile.BodyOps / 2) << Profile.Name;

    for (int Run = 0; Run < 3; ++Run) {
      std::vector<BitValue> Args = {Random.nextBitValue(W),
                                    Random.nextBitValue(W),
                                    Random.nextBitValue(W)};
      MemoryState Memory;
      for (int B = 0; B < 256; ++B)
        Memory.storeByte(B, static_cast<uint8_t>(Random.nextBelow(256)));
      FunctionResult Result = runFunction(F, Args, Memory, 1u << 22);
      EXPECT_FALSE(Result.Undefined) << Profile.Name;
      EXPECT_FALSE(Result.StepLimitHit) << Profile.Name;
      EXPECT_EQ(Result.ReturnValues.size(), 1u) << Profile.Name;
    }
  }
}

TEST(Workloads, ProfilesProduceDifferentMixes) {
  Function Crafty = buildWorkload(cint2000Profiles()[4], W); // crafty
  Function Mcf = buildWorkload(cint2000Profiles()[3], W);    // mcf
  auto countOps = [](const Function &F, Opcode Op) {
    unsigned Count = 0;
    for (const auto &BB : F.blocks())
      for (Node *N : BB->body().liveNodesFrom(BB->terminatorOperands()))
        Count += N->opcode() == Op ? 1 : 0;
    return Count;
  };
  // mcf is load-heavy; crafty is logic-heavy.
  EXPECT_GT(countOps(Mcf, Opcode::Load), countOps(Crafty, Opcode::Load));
}

TEST(Evaluation, CodeQualityExperimentRuns) {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase Gnu = buildGnuLikeRules(W);
  PatternDatabase Clang = buildClangLikeRules(W);
  auto GnuSel = makeReferenceSelector("gnu-like", Gnu, Goals);
  auto ClangSel = makeReferenceSelector("clang-like", Clang, Goals);
  HandwrittenSelector Handwritten;

  CodeQualityResult Result = runCodeQualityExperiment(
      Handwritten, *GnuSel, *ClangSel, W, /*RunsPerWorkload=*/1);
  ASSERT_EQ(Result.Rows.size(), 11u);
  for (const CodeQualityRow &Row : Result.Rows) {
    EXPECT_FALSE(Row.Mismatch) << Row.Benchmark;
    EXPECT_GT(Row.HandwrittenCycles, 0u) << Row.Benchmark;
    EXPECT_GT(Row.Coverage, 0.5) << Row.Benchmark;
    EXPECT_GT(Row.BasicOverHandwritten, 50.0) << Row.Benchmark;
  }
  EXPECT_GT(Result.GeoMeanBasicRatio, 90.0);
  EXPECT_GT(Result.GeoMeanCoverage, 0.5);
}

TEST(Evaluation, CompileTimeExperimentRuns) {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase Gnu = buildGnuLikeRules(W);
  auto BasicSel = makeReferenceSelector("basic", Gnu, Goals);
  auto FullSel = makeReferenceSelector("full", Gnu, Goals);
  HandwrittenSelector Handwritten;

  CompileTimeResult Result = runCompileTimeExperiment(
      Handwritten, *BasicSel, *FullSel, W, /*Repetitions=*/1);
  ASSERT_EQ(Result.Rows.size(), 11u);
  EXPECT_GE(Result.TotalHandwritten, 0.0);
  EXPECT_GE(Result.TotalBasic, 0.0);
}
