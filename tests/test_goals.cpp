//===- test_goals.cpp - Goal spec / emission consistency tests -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
//
// The strongest invariant in x86/Goals: for every goal instruction,
// the SMT postcondition (used by the synthesizer) and the emission
// recipe (used by the generated selector, executed on the emulator)
// must describe the same machine behaviour. This test sweeps every
// goal with random inputs and compares the two.
//
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "x86/Emulator.h"
#include "x86/Goals.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

constexpr unsigned Width = 8;

struct GoalConsistency : public ::testing::Test {
  SmtContext Smt;
  Rng Random{20260706};

  /// Evaluates a goal's SMT semantics on concrete inputs.
  struct SpecOutcome {
    std::vector<BitValue> ValueResults;
    std::vector<bool> BoolResults;
    BitValue MemoryResult{1, 0};
    bool HasMemoryResult = false;
  };

  SpecOutcome evalSpec(const GoalInstruction &Goal,
                       const std::vector<BitValue> &Args,
                       const MemoryModel &Memory,
                       const std::vector<z3::expr> &ArgExprs) {
    SemanticsContext Context{Smt, Width, &Memory, {}};
    std::vector<z3::expr> Results =
        Goal.Spec->computeResults(Context, ArgExprs, {});
    (void)Args;
    SmtSolver Solver(Smt);
    EXPECT_EQ(Solver.check(), SmtResult::Sat);
    z3::model Model = Solver.model();

    SpecOutcome Outcome;
    for (unsigned R = 0; R < Results.size(); ++R) {
      const Sort &S = Goal.Spec->resultSorts()[R];
      if (S.isBool())
        Outcome.BoolResults.push_back(Smt.evalBool(Model, Results[R]));
      else if (S.isMemory()) {
        Outcome.MemoryResult = Smt.evalBits(Model, Results[R]);
        Outcome.HasMemoryResult = true;
      } else
        Outcome.ValueResults.push_back(Smt.evalBits(Model, Results[R]));
    }
    return Outcome;
  }
};

} // namespace

TEST_F(GoalConsistency, SpecMatchesEmissionForAllGoals) {
  GoalLibrary Library = GoalLibrary::build(Width, GoalLibrary::allGroups());
  ASSERT_GT(Library.goals().size(), 100u);

  for (const GoalInstruction &Goal : Library.goals()) {
    for (int Trial = 0; Trial < 8; ++Trial) {
      // Concrete arguments per role; memory argument filled in after
      // the valid pointers are known.
      const auto &Sorts = Goal.Spec->argSorts();
      std::vector<BitValue> Args(Sorts.size(), BitValue(1, 0));
      std::vector<z3::expr> ArgExprs;
      std::vector<unsigned> MemoryArgs;
      for (unsigned I = 0; I < Sorts.size(); ++I) {
        if (Sorts[I].isMemory()) {
          MemoryArgs.push_back(I);
          ArgExprs.push_back(Smt.ctx().bv_val(0, 1));
          continue;
        }
        BitValue Value = Random.nextBitValue(Width);
        // Shift-count immediates behave like x86 (masked), so any
        // value is fine; keep displacements small for readability.
        Args[I] = Value;
        ArgExprs.push_back(Smt.literal(Value));
      }

      MemoryModel Memory(Smt,
                         Goal.Spec->validPointers(Smt, Width, ArgExprs));

      // Concrete initial memory: random bytes everywhere the goal can
      // touch, mirrored into the M-value (flags clear).
      MemoryState ConcreteMemory;
      std::vector<uint64_t> PointerValues;
      {
        SmtSolver Solver(Smt);
        EXPECT_EQ(Solver.check(), SmtResult::Sat);
        z3::model Model = Solver.model();
        for (const z3::expr &Pointer :
             Goal.Spec->validPointers(Smt, Width, ArgExprs))
          PointerValues.push_back(
              Smt.evalBits(Model, Pointer).zextValue());
      }
      BitValue MemoryBits = BitValue::zero(Memory.mvalueWidth());
      for (unsigned P = 0; P < PointerValues.size(); ++P) {
        uint8_t Byte = static_cast<uint8_t>(Random.nextBelow(256));
        ConcreteMemory.storeByte(PointerValues[P], Byte);
        MemoryBits = MemoryBits.insert(P * 9, BitValue(8, Byte));
      }
      for (unsigned I : MemoryArgs) {
        Args[I] = MemoryBits;
        ArgExprs[I] = Smt.literal(MemoryBits);
      }

      SpecOutcome Spec = evalSpec(Goal, Args, Memory, ArgExprs);

      // Run the emission recipe.
      MachineFunction MF("goal", Width);
      MachineBlock *Block = MF.createBlock("entry");
      std::map<MReg, BitValue> Regs;
      std::vector<MOperand> Bindings;
      for (unsigned I = 0; I < Sorts.size(); ++I) {
        switch (Goal.Spec->argRole(I)) {
        case ArgRole::Mem:
          Bindings.push_back(MOperand::none());
          break;
        case ArgRole::Imm:
          Bindings.push_back(MOperand::imm(Args[I]));
          break;
        case ArgRole::Reg:
        case ArgRole::Addr: {
          MReg R = MF.newReg();
          Regs[R] = Args[I];
          Bindings.push_back(MOperand::reg(R));
          break;
        }
        }
      }
      EmittedGoal Emitted = Goal.Emit(MF, Bindings);
      for (MachineInstr &Instr : Emitted.Instrs)
        Block->append(std::move(Instr));
      // Return the value results; jump goals return a setcc of the CC.
      MTerminator &Term = Block->terminator();
      Term.TermKind = MTerminator::Kind::Ret;
      for (const MOperand &Op : Emitted.Results)
        if (!Op.isNone())
          Term.ReturnValues.push_back(Op);
      if (Emitted.JumpCC) {
        MReg Taken = MF.newReg();
        Block->append(
            {MOpcode::Setcc, *Emitted.JumpCC, MOperand::reg(Taken), {}, {}});
        Term.ReturnValues.push_back(MOperand::reg(Taken));
      }

      MachineRunResult Machine =
          runMachineFunction(MF, Regs, ConcreteMemory);

      // Compare value results.
      ASSERT_EQ(Machine.ReturnValues.size(),
                Spec.ValueResults.size() + (Emitted.JumpCC ? 1 : 0))
          << Goal.Name;
      for (unsigned R = 0; R < Spec.ValueResults.size(); ++R)
        EXPECT_EQ(Machine.ReturnValues[R], Spec.ValueResults[R])
            << Goal.Name << " value result " << R;

      // Compare the jump outcome with the spec's "taken" result.
      if (Emitted.JumpCC) {
        ASSERT_FALSE(Spec.BoolResults.empty()) << Goal.Name;
        EXPECT_EQ(Machine.ReturnValues.back().zextValue(),
                  Spec.BoolResults[0] ? 1u : 0u)
            << Goal.Name << " taken-vs-cc";
        // The two bool results are complementary.
        ASSERT_EQ(Spec.BoolResults.size(), 2u);
        EXPECT_NE(Spec.BoolResults[0], Spec.BoolResults[1]) << Goal.Name;
      }

      // Compare memory contents at every valid pointer.
      if (Spec.HasMemoryResult) {
        for (unsigned P = 0; P < PointerValues.size(); ++P) {
          uint64_t Expected =
              Spec.MemoryResult.extract(P * 9 + 7, P * 9).zextValue();
          EXPECT_EQ(Machine.Memory.peekByte(PointerValues[P]), Expected)
              << Goal.Name << " memory slot " << P;
        }
      }
    }
  }
}

TEST(GoalLibrary, GroupsAndLookup) {
  GoalLibrary Library =
      GoalLibrary::build(Width, GoalLibrary::allGroups());
  EXPECT_NE(Library.find("add_rr"), nullptr);
  EXPECT_NE(Library.find("mov_load_bisd8"), nullptr);
  EXPECT_NE(Library.find("cmp_jl"), nullptr);
  EXPECT_EQ(Library.find("no_such_goal"), nullptr);

  EXPECT_GE(Library.group("Basic").size(), 25u);
  EXPECT_EQ(Library.group("LoadStore").size(), 22u); // 10 AMs x load/store + 2 store-imm.
  EXPECT_GE(Library.group("Flags").size(), 50u);
  EXPECT_EQ(Library.group("Bmi").size(), 4u);
}

TEST(GoalLibrary, RolesAreConsistent) {
  GoalLibrary Library =
      GoalLibrary::build(Width, GoalLibrary::allGroups());
  for (const GoalInstruction &Goal : Library.goals()) {
    const auto &Sorts = Goal.Spec->argSorts();
    for (unsigned I = 0; I < Sorts.size(); ++I) {
      if (Sorts[I].isMemory())
        EXPECT_EQ(Goal.Spec->argRole(I), ArgRole::Mem) << Goal.Name;
      else
        EXPECT_NE(Goal.Spec->argRole(I), ArgRole::Mem) << Goal.Name;
    }
    // Memory-accessing goals expose valid pointers; pure-register
    // goals do not.
    SmtContext Smt;
    std::vector<z3::expr> Args;
    for (const Sort &S : Sorts)
      Args.push_back(Smt.ctx().bv_val(0, S.isMemory() ? 1 : S.Width));
    bool HasPointers =
        !Goal.Spec->validPointers(Smt, Width, Args).empty();
    EXPECT_EQ(HasPointers, Goal.Spec->accessesMemory()) << Goal.Name;
  }
}
