//===- test_integration.cpp - End-to-end pipeline tests ------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
//
// The full pipeline of the paper's Algorithm 1, in miniature:
// synthesize a small rule library with iterative CEGIS, filter and
// sort it, generate an instruction selector, compile programs, and
// check the machine code against the IR interpreter.
//
//===----------------------------------------------------------------------===//

#include "eval/Workloads.h"
#include "ir/Normalizer.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "pattern/LibraryBuilder.h"
#include "support/Rng.h"
#include "testgen/TestCaseGenerator.h"
#include "x86/Emulator.h"

#include <gtest/gtest.h>

#include <set>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

/// Synthesizes a small but useful library once for the whole suite.
class IntegrationTest : public ::testing::Test {
protected:
  static SmtContext *Smt;
  static GoalLibrary *Goals;
  static PatternDatabase *Database;
  static LibraryBuildReport Report;

  static void SetUpTestSuite() {
    Smt = new SmtContext();
    Goals = new GoalLibrary(GoalLibrary::build(W, {"Basic", "LoadStore"}));

    // Restrict the synthesis to the goals this test exercises so the
    // suite stays fast.
    GoalLibrary Subset;
    for (const char *Name :
         {"mov_ri", "neg_r", "not_r", "add_rr", "sub_rr", "and_rr",
          "or_rr", "xor_rr", "shl_rc", "shr_rc", "sar_rc", "cmp_jl",
          "cmp_jb", "cmp_je", "cmp_jne", "mov_load_b", "mov_store_b"}) {
      const GoalInstruction *Goal = Goals->find(Name);
      ASSERT_NE(Goal, nullptr) << Name;
    }

    SynthesisOptions Options;
    Options.Width = W;
    Options.QueryTimeoutMs = 30000;
    Options.TimeBudgetSeconds = 20;
    Options.MaxPatternsPerMultiset = 8;
    Options.FindAllMinimal = true; // Algorithm 2 semantics.

    Database = new PatternDatabase();
    for (const GoalInstruction &Goal : Goals->goals()) {
      static const std::set<std::string> Wanted = {
          "mov_ri", "neg_r", "not_r", "add_rr", "sub_rr", "and_rr",
          "or_rr",  "xor_rr", "shl_rc", "shr_rc", "sar_rc", "cmp_jl",
          "cmp_jb", "cmp_je", "cmp_jne", "mov_load_b", "mov_store_b"};
      if (!Wanted.count(Goal.Name))
        continue;
      SynthesisOptions GoalOptions = Options;
      GoalOptions.MaxPatternSize = Goal.MaxPatternSize;
      Synthesizer Synth(*Smt, GoalOptions);
      GoalSynthesisResult Result = Synth.synthesize(*Goal.Spec);
      EXPECT_FALSE(Result.Patterns.empty()) << Goal.Name;
      for (Graph &Pattern : Result.Patterns)
        Database->add(Goal.Name, std::move(Pattern));
    }
    Database->filterNonNormalized();
    Database->sortSpecificFirst();
  }

  static void TearDownTestSuite() {
    delete Database;
    delete Goals;
    delete Smt;
    Database = nullptr;
    Goals = nullptr;
    Smt = nullptr;
  }
};

SmtContext *IntegrationTest::Smt = nullptr;
GoalLibrary *IntegrationTest::Goals = nullptr;
PatternDatabase *IntegrationTest::Database = nullptr;
LibraryBuildReport IntegrationTest::Report;

} // namespace

TEST_F(IntegrationTest, LibraryHasRulesForEveryGoal) {
  EXPECT_GE(Database->size(), 17u);
  for (const char *Name : {"add_rr", "cmp_jl", "mov_load_b", "mov_ri"})
    EXPECT_FALSE(Database->rulesForGoal(Name).empty()) << Name;
}

TEST_F(IntegrationTest, DatabaseSurvivesSerialization) {
  std::string Error;
  PatternDatabase Loaded =
      PatternDatabase::deserialize(Database->serialize(), &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Loaded.size(), Database->size());
}

TEST_F(IntegrationTest, SynthesizedSelectorMatchesInterpreter) {
  GeneratedSelector Selector(*Database, *Goals);
  EXPECT_GT(Selector.numRules(), 10u);

  // A small program using arithmetic, memory, and a branch.
  Function F("prog", W);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  BasicBlock *Then = F.createBlock("then", {Sort::memory(), Sort::value(W)});
  BasicBlock *Else = F.createBlock("else", {Sort::memory(), Sort::value(W)});
  {
    Graph &G = Entry->body();
    NodeRef T = G.createBinary(Opcode::Xor, G.arg(1), G.arg(2));
    NodeRef Stored = G.createStore(G.arg(0), G.arg(1), T);
    NodeRef Less = G.createCmp(Relation::Slt, T, G.arg(2));
    Entry->setBranch(Less, Then, {Stored, G.arg(1)}, Else, {Stored, T});
  }
  {
    Graph &G = Then->body();
    Node *Load = G.createLoad(G.arg(0), G.arg(1));
    Then->setReturn({NodeRef(Load, 0),
                     G.createUnary(Opcode::Not, NodeRef(Load, 1))});
  }
  {
    Graph &G = Else->body();
    Else->setReturn({G.arg(0), G.createUnary(Opcode::Minus, G.arg(1))});
  }
  normalizeFunction(F);

  SelectionResult Selected = Selector.select(F);
  EXPECT_GT(Selected.coverage(), 0.8);

  Rng Random(17);
  for (int Run = 0; Run < 100; ++Run) {
    std::vector<BitValue> Args = {Random.nextBitValue(W),
                                  Random.nextBitValue(W)};
    MemoryState Memory;
    for (int B = 0; B < 10; ++B)
      Memory.storeByte(Random.nextBelow(256),
                       static_cast<uint8_t>(Random.nextBelow(256)));
    FunctionResult Reference = runFunction(F, Args, Memory);
    ASSERT_FALSE(Reference.Undefined);

    std::map<MReg, BitValue> Regs;
    const auto &ArgRegs = Selected.MF->entry()->ArgRegs;
    for (size_t I = 0; I < ArgRegs.size(); ++I)
      Regs[ArgRegs[I]] = Args[I];
    MachineRunResult Machine =
        runMachineFunction(*Selected.MF, Regs, Memory);

    ASSERT_EQ(Machine.ReturnValues.size(), Reference.ReturnValues.size());
    for (size_t I = 0; I < Reference.ReturnValues.size(); ++I)
      EXPECT_EQ(Machine.ReturnValues[I], Reference.ReturnValues[I]);
    for (const auto &[Address, Value] : Reference.FinalMemory->bytes())
      EXPECT_EQ(Machine.Memory.peekByte(Address), Value);
  }
}

TEST_F(IntegrationTest, SynthesizedSelectorHandlesWorkloads) {
  GeneratedSelector Selector(*Database, *Goals);
  HandwrittenSelector Handwritten;
  Rng Random(4);

  WorkloadProfile Profile = cint2000Profiles()[1]; // vpr-like.
  Profile.Iterations = 12;
  Function F = buildWorkload(Profile, W);

  SelectionResult Synth = Selector.select(F);
  SelectionResult Hand = Handwritten.select(F);
  EXPECT_GT(Synth.coverage(), 0.4);

  for (int Run = 0; Run < 5; ++Run) {
    std::vector<BitValue> Args = {Random.nextBitValue(W),
                                  Random.nextBitValue(W),
                                  Random.nextBitValue(W)};
    MemoryState Memory;
    for (int B = 0; B < 256; ++B)
      Memory.storeByte(B, static_cast<uint8_t>(Random.nextBelow(256)));
    FunctionResult Reference = runFunction(F, Args, Memory, 1u << 22);
    ASSERT_FALSE(Reference.Undefined);

    for (SelectionResult *Selected : {&Synth, &Hand}) {
      std::map<MReg, BitValue> Regs;
      const auto &ArgRegs = Selected->MF->entry()->ArgRegs;
      for (size_t I = 0; I < ArgRegs.size(); ++I)
        Regs[ArgRegs[I]] = Args[I];
      MachineRunResult Machine =
          runMachineFunction(*Selected->MF, Regs, Memory, 1u << 24);
      ASSERT_EQ(Machine.ReturnValues.size(), 1u);
      EXPECT_EQ(Machine.ReturnValues[0], Reference.ReturnValues[0]);
    }
  }
}

TEST_F(IntegrationTest, EveryRulePassesItsOwnTestCase) {
  // The Section 5.7 pipeline applied to our own selector: every rule's
  // generated test program, compiled with the generated selector, must
  // behave like the interpreter.
  GeneratedSelector Selector(*Database, *Goals);
  std::vector<InstructionSelector *> Compilers = {&Selector};
  MissingPatternReport Report = runMissingPatternExperiment(
      *Database, W, Compilers, /*ValidationRuns=*/15);
  EXPECT_EQ(Report.TotalTests, Database->size());
  for (const MissingPatternRow &Row : Report.Rows)
    EXPECT_FALSE(Row.BehaviourMismatch)
        << Row.GoalName << ": " << Row.PatternExpression;
}
