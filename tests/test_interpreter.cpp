//===- test_interpreter.cpp - IR interpreter tests ----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"
#include "ir/Interpreter.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

EvalValue bits(unsigned Width, uint64_t Value) {
  return EvalValue::fromBits(BitValue(Width, Value));
}

BitValue evalBinary(Opcode Op, uint64_t A, uint64_t B, unsigned W = 8) {
  Graph G(W, {Sort::value(W), Sort::value(W)});
  G.setResults({G.createBinary(Op, G.arg(0), G.arg(1))});
  EvalResult R = evaluateGraph(G, {bits(W, A), bits(W, B)});
  EXPECT_FALSE(R.Undefined);
  return R.Results[0].Bits;
}

} // namespace

TEST(Interpreter, BinaryOperations) {
  EXPECT_EQ(evalBinary(Opcode::Add, 200, 100).zextValue(), 44u);
  EXPECT_EQ(evalBinary(Opcode::Sub, 5, 10).zextValue(), 251u);
  EXPECT_EQ(evalBinary(Opcode::Mul, 20, 20).zextValue(), 144u);
  EXPECT_EQ(evalBinary(Opcode::And, 0xCC, 0xAA).zextValue(), 0x88u);
  EXPECT_EQ(evalBinary(Opcode::Or, 0xCC, 0xAA).zextValue(), 0xEEu);
  EXPECT_EQ(evalBinary(Opcode::Xor, 0xCC, 0xAA).zextValue(), 0x66u);
  EXPECT_EQ(evalBinary(Opcode::Shl, 0x0F, 4).zextValue(), 0xF0u);
  EXPECT_EQ(evalBinary(Opcode::Shr, 0xF0, 4).zextValue(), 0x0Fu);
  EXPECT_EQ(evalBinary(Opcode::Shrs, 0xF0, 4).zextValue(), 0xFFu);
}

TEST(Interpreter, UnaryOperations) {
  Graph G(8, {Sort::value(8)});
  G.setResults({G.createUnary(Opcode::Not, G.arg(0)),
                G.createUnary(Opcode::Minus, G.arg(0))});
  // setResults with two independent results.
  EvalResult R = evaluateGraph(G, {bits(8, 0x0F)});
  EXPECT_EQ(R.Results[0].Bits.zextValue(), 0xF0u);
  EXPECT_EQ(R.Results[1].Bits.zextValue(), 0xF1u);
}

TEST(Interpreter, ConstantsAndSharing) {
  Graph G(8, {Sort::value(8)});
  NodeRef C = G.createConst(BitValue(8, 3));
  NodeRef Sum = G.createBinary(Opcode::Add, G.arg(0), C);
  NodeRef Product = G.createBinary(Opcode::Mul, Sum, Sum); // Shared node.
  G.setResults({Product});
  EvalResult R = evaluateGraph(G, {bits(8, 4)});
  EXPECT_EQ(R.Results[0].Bits.zextValue(), 49u);
}

TEST(Interpreter, ShiftOutOfRangeIsUndefined) {
  Graph G(8, {Sort::value(8), Sort::value(8)});
  G.setResults({G.createBinary(Opcode::Shl, G.arg(0), G.arg(1))});
  EXPECT_FALSE(evaluateGraph(G, {bits(8, 1), bits(8, 7)}).Undefined);
  EXPECT_TRUE(evaluateGraph(G, {bits(8, 1), bits(8, 8)}).Undefined);
  EXPECT_TRUE(evaluateGraph(G, {bits(8, 1), bits(8, 0xFF)}).Undefined);
}

TEST(Interpreter, Relations) {
  BitValue A(8, 0x01), B(8, 0xFF); // B = -1 signed, 255 unsigned.
  EXPECT_TRUE(evaluateRelation(Relation::Ult, A, B));
  EXPECT_FALSE(evaluateRelation(Relation::Slt, A, B));
  EXPECT_TRUE(evaluateRelation(Relation::Sgt, A, B));
  EXPECT_TRUE(evaluateRelation(Relation::Ne, A, B));
  EXPECT_TRUE(evaluateRelation(Relation::Eq, A, A));
  EXPECT_TRUE(evaluateRelation(Relation::Uge, B, A));
}

TEST(Interpreter, CmpMuxCond) {
  Graph G(8, {Sort::value(8), Sort::value(8)});
  NodeRef Cmp = G.createCmp(Relation::Slt, G.arg(0), G.arg(1));
  NodeRef Mux = G.createMux(Cmp, G.arg(0), G.arg(1)); // signed min
  Node *Jump = G.createCond(Cmp);
  G.setResults({Mux, NodeRef(Jump, 0), NodeRef(Jump, 1)});

  EvalResult R = evaluateGraph(G, {bits(8, 0xFE), bits(8, 3)});
  EXPECT_EQ(R.Results[0].Bits.zextValue(), 0xFEu); // -2 < 3.
  EXPECT_TRUE(R.Results[1].Flag);
  EXPECT_FALSE(R.Results[2].Flag);

  R = evaluateGraph(G, {bits(8, 3), bits(8, 0xFE)});
  EXPECT_EQ(R.Results[0].Bits.zextValue(), 0xFEu);
  EXPECT_FALSE(R.Results[1].Flag);
  EXPECT_TRUE(R.Results[2].Flag);
}

TEST(Interpreter, MemoryChainLittleEndian) {
  Graph G(16, {Sort::memory(), Sort::value(16), Sort::value(16)});
  NodeRef Stored = G.createStore(G.arg(0), G.arg(1), G.arg(2));
  Node *Load = G.createLoad(Stored, G.arg(1));
  G.setResults({NodeRef(Load, 0), NodeRef(Load, 1)});

  auto Memory = std::make_shared<MemoryState>();
  EvalResult R = evaluateGraph(
      G, {EvalValue::fromMemory(Memory), bits(16, 0x100), bits(16, 0xABCD)});
  EXPECT_EQ(R.Results[1].Bits.zextValue(), 0xABCDu);
  // Little endian byte placement.
  EXPECT_EQ(R.Results[0].Mem->peekByte(0x100), 0xCDu);
  EXPECT_EQ(R.Results[0].Mem->peekByte(0x101), 0xABu);
  // The caller's memory object is untouched (value semantics).
  EXPECT_EQ(Memory->peekByte(0x100), 0u);
  // Access flags set by the load.
  EXPECT_TRUE(R.Results[0].Mem->wasAccessed(0x100));
  EXPECT_TRUE(R.Results[0].Mem->wasAccessed(0x101));
}

TEST(Interpreter, MemoryStateEquality) {
  MemoryState A, B;
  A.storeByte(5, 7);
  EXPECT_NE(A, B);
  B.storeByte(5, 7);
  EXPECT_EQ(A, B);
  // A zero write equals an untouched byte.
  A.storeByte(9, 0);
  EXPECT_EQ(A, B);
  // Access flags are part of the state (the M-value design).
  (void)A.loadByte(5);
  EXPECT_NE(A, B);
  (void)B.loadByte(5);
  EXPECT_EQ(A, B);
}

TEST(Interpreter, EvaluateGraphRefs) {
  Graph G(8, {Sort::value(8)});
  NodeRef NotA = G.createUnary(Opcode::Not, G.arg(0));
  NodeRef NegA = G.createUnary(Opcode::Minus, G.arg(0));
  G.setResults({NotA});
  EvalResult R = evaluateGraphRefs(G, {bits(8, 1)}, {NegA, NotA});
  EXPECT_EQ(R.Results[0].Bits.zextValue(), 0xFFu);
  EXPECT_EQ(R.Results[1].Bits.zextValue(), 0xFEu);
}

// --- Whole-function interpretation -------------------------------------

namespace {

/// sum(i for i in [0, n)) with a loop, returning the accumulator.
Function makeLoopFunction(unsigned W) {
  Function F("sum", W);
  BasicBlock *Entry = F.createBlock("entry", {Sort::memory(), Sort::value(W)});
  BasicBlock *Loop = F.createBlock(
      "loop", {Sort::memory(), Sort::value(W), Sort::value(W), Sort::value(W)});
  BasicBlock *Exit = F.createBlock("exit", {Sort::memory(), Sort::value(W)});

  {
    Graph &G = Entry->body();
    NodeRef Zero = G.createConst(BitValue::zero(W));
    Entry->setJump(Loop, {G.arg(0), Zero, Zero, G.arg(1)});
  }
  {
    Graph &G = Loop->body();
    NodeRef I = G.arg(1), Acc = G.arg(2), N = G.arg(3);
    NodeRef NewAcc = G.createBinary(Opcode::Add, Acc, I);
    NodeRef NextI =
        G.createBinary(Opcode::Add, I, G.createConst(BitValue(W, 1)));
    NodeRef Continue = G.createCmp(Relation::Ult, NextI, N);
    Loop->setBranch(Continue, Loop, {G.arg(0), NextI, NewAcc, N}, Exit,
                    {G.arg(0), NewAcc});
  }
  {
    Graph &G = Exit->body();
    Exit->setReturn({G.arg(0), G.arg(1)});
  }
  return F;
}

} // namespace

TEST(FunctionInterpreter, LoopComputesSum) {
  Function F = makeLoopFunction(8);
  EXPECT_TRUE(verifyFunction(F).empty());
  FunctionResult R = runFunction(F, {BitValue(8, 10)}, MemoryState());
  ASSERT_FALSE(R.Undefined);
  ASSERT_FALSE(R.StepLimitHit);
  ASSERT_EQ(R.ReturnValues.size(), 1u);
  EXPECT_EQ(R.ReturnValues[0].zextValue(), 45u); // 0+1+...+9.
  EXPECT_GT(R.ExecutedOperations, 20u);
}

TEST(FunctionInterpreter, StepLimit) {
  Function F = makeLoopFunction(8);
  FunctionResult R =
      runFunction(F, {BitValue(8, 200)}, MemoryState(), /*MaxSteps=*/10);
  EXPECT_TRUE(R.StepLimitHit);
}

TEST(FunctionInterpreter, MemoryFlowsThroughBlocks) {
  unsigned W = 8;
  Function F("memflow", W);
  BasicBlock *Entry =
      F.createBlock("entry", {Sort::memory(), Sort::value(W)});
  BasicBlock *Next = F.createBlock("next", {Sort::memory(), Sort::value(W)});
  {
    Graph &G = Entry->body();
    NodeRef Stored = G.createStore(G.arg(0), G.arg(1),
                                   G.createConst(BitValue(W, 0x7A)));
    Entry->setJump(Next, {Stored, G.arg(1)});
  }
  {
    Graph &G = Next->body();
    Node *Load = G.createLoad(G.arg(0), G.arg(1));
    Next->setReturn({NodeRef(Load, 0), NodeRef(Load, 1)});
  }
  FunctionResult R = runFunction(F, {BitValue(W, 0x20)}, MemoryState());
  ASSERT_EQ(R.ReturnValues.size(), 1u);
  EXPECT_EQ(R.ReturnValues[0].zextValue(), 0x7Au);
  EXPECT_EQ(R.FinalMemory->peekByte(0x20), 0x7Au);
}

TEST(FunctionInterpreter, VerifierCatchesBadEdges) {
  Function F("bad", 8);
  BasicBlock *Entry = F.createBlock("entry", {Sort::memory(), Sort::value(8)});
  BasicBlock *Next = F.createBlock("next", {Sort::memory(), Sort::value(8)});
  Graph &G = Entry->body();
  // Too few edge arguments.
  Entry->setJump(Next, {G.arg(0)});
  EXPECT_FALSE(verifyFunction(F).empty());
}
