//===- test_ir_graph.cpp - Graph construction/printing/parsing tests ----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Graph.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <algorithm>

#include <gtest/gtest.h>

using namespace selgen;

namespace {

/// The pattern of paper Figure 1a: an addition with one operand loaded
/// from memory. Arguments (memory, pointer, register operand); results
/// (memory, sum).
Graph makeFigure1Pattern(unsigned Width = 32) {
  Graph G(Width, {Sort::memory(), Sort::value(Width), Sort::value(Width)});
  Node *Load = G.createLoad(G.arg(0), G.arg(1));
  NodeRef Sum = G.createBinary(Opcode::Add, NodeRef(Load, 1), G.arg(2));
  G.setResults({NodeRef(Load, 0), Sum});
  return G;
}

} // namespace

TEST(Graph, BuildFigure1) {
  Graph G = makeFigure1Pattern();
  EXPECT_EQ(G.numArgs(), 3u);
  EXPECT_EQ(G.numOperations(), 2u);
  EXPECT_TRUE(isWellFormed(G));
  EXPECT_EQ(G.results()[0].sort(), Sort::memory());
  EXPECT_EQ(G.results()[1].sort(), Sort::value(32));
}

TEST(Graph, ExpressionPrinting) {
  Graph G = makeFigure1Pattern();
  EXPECT_EQ(printGraphExpression(G),
            "Load(a0, a1).0; Add(Load(a0, a1).1, a2)");
}

TEST(Graph, FingerprintIgnoresCreationOrder) {
  // Two structurally identical graphs built in different node orders.
  Graph A(8, {Sort::value(8), Sort::value(8)});
  NodeRef NotA = A.createUnary(Opcode::Not, A.arg(0));
  NodeRef NegB = A.createUnary(Opcode::Minus, A.arg(1));
  A.setResults({A.createBinary(Opcode::Add, NotA, NegB)});

  Graph B(8, {Sort::value(8), Sort::value(8)});
  NodeRef NegB2 = B.createUnary(Opcode::Minus, B.arg(1));
  NodeRef NotA2 = B.createUnary(Opcode::Not, B.arg(0));
  B.setResults({B.createBinary(Opcode::Add, NotA2, NegB2)});

  EXPECT_EQ(A.fingerprint(), B.fingerprint());
}

TEST(Graph, FingerprintDistinguishesStructure) {
  Graph A(8, {Sort::value(8), Sort::value(8)});
  A.setResults({A.createBinary(Opcode::Add, A.arg(0), A.arg(1))});
  Graph B(8, {Sort::value(8), Sort::value(8)});
  B.setResults({B.createBinary(Opcode::Add, B.arg(1), B.arg(0))});
  EXPECT_NE(A.fingerprint(), B.fingerprint());

  Graph C(8, {Sort::value(8), Sort::value(8)});
  C.setResults({C.createBinary(Opcode::Sub, C.arg(0), C.arg(1))});
  EXPECT_NE(A.fingerprint(), C.fingerprint());
}

TEST(Graph, FingerprintCoversAttributes) {
  Graph A(8, {Sort::value(8)});
  A.setResults({A.createBinary(Opcode::Add, A.arg(0),
                               A.createConst(BitValue(8, 1)))});
  Graph B(8, {Sort::value(8)});
  B.setResults({B.createBinary(Opcode::Add, B.arg(0),
                               B.createConst(BitValue(8, 2)))});
  EXPECT_NE(A.fingerprint(), B.fingerprint());

  Graph C(8, {Sort::value(8), Sort::value(8)});
  C.setResults({C.createCmp(Relation::Slt, C.arg(0), C.arg(1))});
  Graph D(8, {Sort::value(8), Sort::value(8)});
  D.setResults({D.createCmp(Relation::Ult, D.arg(0), D.arg(1))});
  EXPECT_NE(C.fingerprint(), D.fingerprint());
}

TEST(Graph, CloneIsIdentical) {
  Graph G = makeFigure1Pattern();
  Graph Copy = G.clone();
  EXPECT_EQ(G.fingerprint(), Copy.fingerprint());
  EXPECT_TRUE(isWellFormed(Copy));
}

TEST(Graph, DeadNodeRemoval) {
  Graph G(8, {Sort::value(8)});
  G.createBinary(Opcode::Add, G.arg(0), G.arg(0)); // Dead.
  NodeRef Live = G.createUnary(Opcode::Not, G.arg(0));
  G.setResults({Live});
  EXPECT_EQ(G.numOperations(), 2u);
  G.removeDeadNodes();
  EXPECT_EQ(G.numOperations(), 1u);
  EXPECT_TRUE(isWellFormed(G));
}

TEST(Graph, LiveNodesFromRoots) {
  Graph G(8, {Sort::value(8)});
  NodeRef A = G.createUnary(Opcode::Not, G.arg(0));
  NodeRef B = G.createUnary(Opcode::Minus, G.arg(0));
  G.setResults({A});
  EXPECT_EQ(G.liveNodes().size(), 2u);        // Arg + Not.
  EXPECT_EQ(G.liveNodesFrom({B}).size(), 2u); // Arg + Minus.
  EXPECT_EQ(G.liveNodesFrom({A, B}).size(), 3u);
}

TEST(Printer, RoundTripThroughParser) {
  Graph G = makeFigure1Pattern();
  std::string Text = printGraph(G);
  std::string Error;
  std::optional<Graph> Parsed = parseGraph(Text, &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->fingerprint(), G.fingerprint());
}

TEST(Printer, RoundTripWithAttributes) {
  Graph G(16, {Sort::value(16), Sort::value(16)});
  NodeRef C = G.createConst(BitValue(16, 0xBEEF));
  NodeRef Cmp = G.createCmp(Relation::Sle, G.arg(0), C);
  NodeRef Mux = G.createMux(Cmp, G.arg(1), C);
  Node *Jump = G.createCond(Cmp);
  G.setResults({Mux, NodeRef(Jump, 0), NodeRef(Jump, 1)});

  std::string Error;
  std::optional<Graph> Parsed = parseGraph(printGraph(G), &Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_EQ(Parsed->fingerprint(), G.fingerprint());
}

TEST(Parser, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(parseGraph("nonsense", &Error).has_value());
  EXPECT_FALSE(Error.empty());
  EXPECT_FALSE(parseGraph("graph w8 args(bv8) {\n", &Error).has_value());
  EXPECT_FALSE(
      parseGraph("graph w8 args(bv8) {\n  n0 = Bogus(a0)\n  results(n0)\n}\n",
                 &Error)
          .has_value() &&
      Error.empty());
  EXPECT_FALSE(parseGraph("graph w8 args(bv8) {\n  results(n7)\n}\n", &Error)
                   .has_value());
}

TEST(Parser, RejectsOverwideConstants) {
  // A constant wider than its declared sort must be rejected outright,
  // not silently truncated.
  std::string Error;
  EXPECT_FALSE(parseGraph("graph w8 args(bv8) {\n"
                          "  n0 = Const[0x1ff:8]()\n"
                          "  results(n0)\n"
                          "}\n",
                          &Error)
                   .has_value());
  EXPECT_NE(Error.find("does not fit"), std::string::npos);

  // The widest fitting value is still accepted.
  std::optional<Graph> G = parseGraph("graph w8 args(bv8) {\n"
                                      "  n0 = Const[0xff:8]()\n"
                                      "  results(n0)\n"
                                      "}\n",
                                      &Error);
  ASSERT_TRUE(G.has_value()) << Error;
  const Node *C = G->results()[0].Def;
  EXPECT_EQ(C->constValue(), BitValue(8, 0xFF));
}

TEST(Parser, RejectsMalformedWidths) {
  std::string Error;
  // Absurd graph widths (overflowing, zero, non-numeric) are malformed.
  EXPECT_FALSE(parseGraph("graph w12345678901 args(bv8) {\n  results(a0)\n}\n",
                          &Error)
                   .has_value());
  EXPECT_FALSE(
      parseGraph("graph wxyz args(bv8) {\n  results(a0)\n}\n", &Error)
          .has_value());
  // Const widths outside [1, 1024] or with garbage digits fail too.
  EXPECT_FALSE(parseGraph("graph w8 args(bv8) {\n"
                          "  n0 = Const[0x01:0]()\n  results(n0)\n}\n",
                          &Error)
                   .has_value());
  EXPECT_FALSE(parseGraph("graph w8 args(bv8) {\n"
                          "  n0 = Const[0xzz:8]()\n  results(n0)\n}\n",
                          &Error)
                   .has_value());
}

TEST(Parser, RejectsBadArityAndResultIndices) {
  std::string Error;
  EXPECT_FALSE(parseGraph("graph w8 args(bv8) {\n"
                          "  n0 = Add(a0)\n  results(n0)\n}\n",
                          &Error)
                   .has_value());
  EXPECT_NE(Error.find("operand count mismatch"), std::string::npos);

  EXPECT_FALSE(parseGraph("graph w8 args(mem, bv8) {\n"
                          "  n0 = Load(a0, a1)\n"
                          "  results(n0.0, n0.7)\n}\n",
                          &Error)
                   .has_value());
}

TEST(Parser, MalformedInputsDoNotRoundTrip) {
  // Inputs the parser rejects stay rejected after being embedded in
  // otherwise valid graphs (no partial-parse salvage).
  std::string Error;
  EXPECT_FALSE(parseGraph("graph w8 args(bv8) {\n"
                          "  n0 = Not(a0)\n"
                          "  n1 = Const[0x100:8]()\n"
                          "  n2 = Add(n0, n1)\n"
                          "  results(n2)\n"
                          "}\n",
                          &Error)
                   .has_value());
  EXPECT_NE(Error.find("does not fit"), std::string::npos);
}

TEST(Verifier, DetectsSortErrors) {
  Graph G(8, {Sort::memory(), Sort::value(8)});
  Node *Load = G.createLoad(G.arg(0), G.arg(1));
  G.setResults({NodeRef(Load, 0), NodeRef(Load, 1)});
  EXPECT_TRUE(verifyGraph(G).empty());

  // Wire the load's value result into a memory operand slot.
  Load->setOperand(0, NodeRef(Load, 1));
  EXPECT_FALSE(verifyGraph(G).empty());
}

TEST(Verifier, DetectsNonlinearMemoryChain) {
  Graph G(8, {Sort::memory(), Sort::value(8), Sort::value(8)});
  // Two stores consuming the same memory token: not a chain.
  NodeRef S1 = G.createStore(G.arg(0), G.arg(1), G.arg(2));
  NodeRef S2 = G.createStore(G.arg(0), G.arg(2), G.arg(1));
  G.setResults({S1});
  (void)S2;
  std::vector<std::string> Problems = verifyGraph(G);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("chain"), std::string::npos);
}

TEST(Verifier, DetectsCreationOrderCycle) {
  Graph G(8, {Sort::value(8)});
  NodeRef A = G.createUnary(Opcode::Not, G.arg(0));
  NodeRef B = G.createUnary(Opcode::Minus, A);
  // Rewire the earlier node to use the later one: a cycle through the
  // data dependencies.
  A.Def->setOperand(0, B);
  G.setResults({B});
  std::vector<std::string> Problems = verifyGraph(G);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("breaks creation-order acyclicity"),
            std::string::npos);
}

TEST(Verifier, DetectsSortMismatchDiagnostic) {
  Graph G(8, {Sort::memory(), Sort::value(8)});
  NodeRef Add = G.createBinary(Opcode::Add, G.arg(1), G.arg(1));
  // Wire the memory argument into a value operand slot.
  Add.Def->setOperand(1, G.arg(0));
  G.setResults({Add});
  std::vector<std::string> Problems = verifyGraph(G);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("has sort"), std::string::npos);
  EXPECT_NE(Problems[0].find("expected"), std::string::npos);
}

TEST(Verifier, DetectsResultIndexOutOfRange) {
  Graph G(8, {Sort::value(8)});
  NodeRef NotA = G.createUnary(Opcode::Not, G.arg(0));
  NodeRef Minus = G.createUnary(Opcode::Minus, NotA);
  Minus.Def->setOperand(0, NodeRef(NotA.Def, 3));
  G.setResults({Minus});
  std::vector<std::string> Problems = verifyGraph(G);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("uses result index out of range"),
            std::string::npos);
}

TEST(Verifier, DetectsDanglingMemoryChain) {
  Graph G(8, {Sort::memory(), Sort::value(8), Sort::value(8)});
  NodeRef Store = G.createStore(G.arg(0), G.arg(1), G.arg(2));
  // The store's memory token neither feeds an operation nor escapes
  // through the results: its side effect is silently dropped.
  G.setResults({G.arg(2)});
  std::vector<std::string> Problems = verifyGraph(G);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("memory chain dangles"), std::string::npos);

  // Letting the token escape fixes it.
  G.setResults({Store, G.arg(2)});
  EXPECT_TRUE(verifyGraph(G).empty());
}

TEST(Verifier, AcceptsProperChain) {
  Graph G(8, {Sort::memory(), Sort::value(8), Sort::value(8)});
  NodeRef S1 = G.createStore(G.arg(0), G.arg(1), G.arg(2));
  NodeRef S2 = G.createStore(S1, G.arg(2), G.arg(1));
  G.setResults({S2});
  EXPECT_TRUE(verifyGraph(G).empty());
}

TEST(Opcode, NamesRoundTrip) {
  for (Opcode Op : allTemplateOpcodes())
    EXPECT_EQ(opcodeFromName(opcodeName(Op)), Op);
  for (Relation Rel : allRelations()) {
    EXPECT_EQ(relationFromName(relationName(Rel)), Rel);
    EXPECT_EQ(negateRelation(negateRelation(Rel)), Rel);
    EXPECT_EQ(swapRelation(swapRelation(Rel)), Rel);
  }
}

TEST(Opcode, Signatures) {
  EXPECT_EQ(opcodeArgSorts(Opcode::Load, 32).size(), 2u);
  EXPECT_EQ(opcodeResultSorts(Opcode::Load, 32).size(), 2u);
  EXPECT_EQ(opcodeResultSorts(Opcode::Cond, 32).size(), 2u);
  EXPECT_TRUE(opcodeHasInternalAttribute(Opcode::Const));
  EXPECT_TRUE(opcodeHasInternalAttribute(Opcode::Cmp));
  EXPECT_FALSE(opcodeHasInternalAttribute(Opcode::Add));
  EXPECT_TRUE(opcodeIsCommutative(Opcode::Xor));
  EXPECT_FALSE(opcodeIsCommutative(Opcode::Sub));
  EXPECT_TRUE(opcodeTouchesMemory(Opcode::Store));
}

// --- GraphViz rendering ---------------------------------------------------

#include "ir/GraphViz.h"

TEST(GraphViz, PatternDot) {
  Graph G = makeFigure1Pattern();
  std::string Dot = graphToDot(G, "fig1");
  EXPECT_NE(Dot.find("digraph fig1"), std::string::npos);
  EXPECT_NE(Dot.find("Load"), std::string::npos);
  EXPECT_NE(Dot.find("Add"), std::string::npos);
  EXPECT_NE(Dot.find("style=dashed"), std::string::npos); // Memory edge.
  EXPECT_NE(Dot.find("Res1"), std::string::npos);
  // Balanced braces (very rough well-formedness).
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
}

TEST(GraphViz, FunctionDot) {
  Function F("dotfn", 8);
  BasicBlock *Entry =
      F.createBlock("entry", {Sort::memory(), Sort::value(8)});
  BasicBlock *Then = F.createBlock("then", {Sort::memory()});
  BasicBlock *Else = F.createBlock("els", {Sort::memory()});
  {
    Graph &G = Entry->body();
    NodeRef C = G.createCmp(Relation::Eq, G.arg(1),
                            G.createConst(BitValue(8, 0)));
    Entry->setBranch(C, Then, {G.arg(0)}, Else, {G.arg(0)});
  }
  for (BasicBlock *BB : {Then, Else}) {
    Graph &G = BB->body();
    BB->setReturn({G.arg(0), G.createConst(BitValue(8, 1))});
  }
  std::string Dot = functionToDot(F);
  EXPECT_NE(Dot.find("cluster_b0_"), std::string::npos);
  EXPECT_NE(Dot.find("taken"), std::string::npos);
  EXPECT_NE(Dot.find("Branch"), std::string::npos);
  EXPECT_EQ(std::count(Dot.begin(), Dot.end(), '{'),
            std::count(Dot.begin(), Dot.end(), '}'));
}
