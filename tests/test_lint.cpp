//===- test_lint.cpp - Rule-library auditor tests -----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Seeds each class of defect selgen-lint exists to catch — an
// unsatisfiable shift precondition, a rule shadowed by an earlier more
// general rule, an inapplicable jump rule, a non-normalized pattern,
// malformed/ill-verified IR, a provable UB shift — and asserts the
// auditor reports the right finding code and severity for each.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAudit.h"
#include "isel/PreparedLibrary.h"
#include "pattern/PatternDatabase.h"
#include "x86/Goals.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

/// Deserializes a rule-library text, prepares it like the tool does,
/// and audits it.
std::vector<LintFinding> auditLibraryText(const std::string &Text,
                                          const LintOptions &Options = {}) {
  std::string Error;
  PatternDatabase Database = PatternDatabase::deserialize(Text, &Error);
  EXPECT_EQ(Error, "");
  Database.sortSpecificFirst();
  GoalLibrary Goals = GoalLibrary::build(8, GoalLibrary::allGroups());
  PreparedLibrary Library(Database, Goals);
  return auditPreparedLibrary(Library, 8, "test.dat", Options);
}

std::vector<const LintFinding *> byCode(const std::vector<LintFinding> &Fs,
                                        const std::string &Code) {
  std::vector<const LintFinding *> Out;
  for (const LintFinding &F : Fs)
    if (F.Code == Code)
      Out.push_back(&F);
  return Out;
}

TEST(RuleAudit, FlagsUnsatisfiableShiftPrecondition) {
  // A shift by the constant 12 at width 8 can never execute defined;
  // CEGIS asserts P+ during synthesis, so a shipped rule like this is
  // evidence of a corrupted library. The dataflow pre-filter flags it
  // and one SMT query confirms.
  std::vector<LintFinding> Findings =
      auditLibraryText("rule shl_ri\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0x0c:8]()\n"
                       "  n1 = Shl(a0, n0)\n"
                       "  results(n1)\n"
                       "}\n"
                       "endrule\n");
  std::vector<const LintFinding *> Unsat =
      byCode(Findings, "unsat-precondition");
  ASSERT_EQ(Unsat.size(), 1u);
  EXPECT_EQ(Unsat[0]->Severity, "error");
  EXPECT_EQ(Unsat[0]->Goal, "shl_ri");
  EXPECT_EQ(Unsat[0]->Library, "test.dat");
  EXPECT_GE(Unsat[0]->RuleIndex, 0);
  EXPECT_NE(Unsat[0]->Message.find("unsatisfiable"), std::string::npos);
  EXPECT_TRUE(lintHasErrors(Findings));
}

TEST(RuleAudit, InRangeConstantShiftIsClean) {
  std::vector<LintFinding> Findings =
      auditLibraryText("rule shl_ri\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0x03:8]()\n"
                       "  n1 = Shl(a0, n0)\n"
                       "  results(n1)\n"
                       "}\n"
                       "endrule\n");
  EXPECT_TRUE(byCode(Findings, "unsat-precondition").empty());
  EXPECT_FALSE(lintHasErrors(Findings));
}

TEST(RuleAudit, FlagsShadowedRule) {
  // Two rules with structurally identical patterns: whichever sorts
  // second can never fire — the earlier one claims every subject.
  std::vector<LintFinding> Findings =
      auditLibraryText("rule add_rr\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Add(a0, a1)\n"
                       "  results(n0)\n"
                       "}\n"
                       "endrule\n"
                       "rule or_rr\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Add(a0, a1)\n"
                       "  results(n0)\n"
                       "}\n"
                       "endrule\n");
  std::vector<const LintFinding *> Shadowed = byCode(Findings, "shadowed-rule");
  ASSERT_EQ(Shadowed.size(), 1u);
  EXPECT_EQ(Shadowed[0]->Severity, "warning");
  EXPECT_GE(Shadowed[0]->RuleIndex, 1);
  EXPECT_FALSE(lintHasErrors(Findings));
}

TEST(RuleAudit, DistinctPatternsAreNotShadowed) {
  std::vector<LintFinding> Findings =
      auditLibraryText("rule add_rr\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Add(a0, a1)\n"
                       "  results(n0)\n"
                       "}\n"
                       "endrule\n"
                       "rule sub_rr\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Sub(a0, a1)\n"
                       "  results(n0)\n"
                       "}\n"
                       "endrule\n");
  EXPECT_TRUE(byCode(Findings, "shadowed-rule").empty());
}

TEST(RuleAudit, FlagsInapplicableJumpRule) {
  // A compare-and-jump rule whose taken result is the raw Cmp value
  // instead of the Cond's taken output: the selection engine never
  // tries it (the shipped full library carries many of these).
  std::vector<LintFinding> Findings =
      auditLibraryText("rule cmp_je\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Cmp[eq](a0, a1)\n"
                       "  n1 = Cond(n0)\n"
                       "  results(n0, n1.1)\n"
                       "}\n"
                       "endrule\n");
  std::vector<const LintFinding *> Jump =
      byCode(Findings, "inapplicable-jump-rule");
  ASSERT_EQ(Jump.size(), 1u);
  EXPECT_EQ(Jump[0]->Severity, "warning");
  EXPECT_EQ(Jump[0]->Goal, "cmp_je");
}

TEST(RuleAudit, ApplicableJumpRuleIsNotFlagged) {
  std::vector<LintFinding> Findings =
      auditLibraryText("rule cmp_je\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Cmp[eq](a0, a1)\n"
                       "  n1 = Cond(n0)\n"
                       "  results(n1.0, n1.1)\n"
                       "}\n"
                       "endrule\n");
  EXPECT_TRUE(byCode(Findings, "inapplicable-jump-rule").empty());
}

TEST(RuleAudit, FlagsNonNormalizedRule) {
  // Add(a0, 0) folds away under normalization, so normalized subjects
  // can never match the pattern.
  std::vector<LintFinding> Findings =
      auditLibraryText("rule add_ri\n"
                       "graph w8 args(bv8, bv8) {\n"
                       "  n0 = Const[0x00:8]()\n"
                       "  n1 = Add(a0, n0)\n"
                       "  results(n1)\n"
                       "}\n"
                       "endrule\n");
  std::vector<const LintFinding *> NonNormal =
      byCode(Findings, "non-normalized-rule");
  ASSERT_EQ(NonNormal.size(), 1u);
  EXPECT_EQ(NonNormal[0]->Severity, "warning");
}

TEST(RuleAudit, ShippedStyleLibraryIsErrorFree) {
  // A small well-formed library mirroring shipped rules: no errors.
  std::vector<LintFinding> Findings =
      auditLibraryText("rule neg_r\n"
                       "graph w8 args(bv8) {\n"
                       "  n0 = Minus(a0)\n"
                       "  results(n0)\n"
                       "}\n"
                       "endrule\n"
                       "rule not_r\n"
                       "graph w8 args(bv8) {\n"
                       "  n0 = Not(a0)\n"
                       "  results(n0)\n"
                       "}\n"
                       "endrule\n");
  EXPECT_FALSE(lintHasErrors(Findings));
  EXPECT_TRUE(Findings.empty());
}

TEST(RuleAudit, ReportsAllSubsumersWhenAsked) {
  // Three structurally identical rules. Default presentation dedupes
  // to one shadowed-rule finding per rule (two findings); the full
  // relation has three pairs (#1 by #0, #2 by #0, #2 by #1).
  const std::string Text = "rule add_rr\n"
                           "graph w8 args(bv8, bv8) {\n"
                           "  n0 = Add(a0, a1)\n"
                           "  results(n0)\n"
                           "}\n"
                           "endrule\n"
                           "rule or_rr\n"
                           "graph w8 args(bv8, bv8) {\n"
                           "  n0 = Add(a0, a1)\n"
                           "  results(n0)\n"
                           "}\n"
                           "endrule\n"
                           "rule xor_rr\n"
                           "graph w8 args(bv8, bv8) {\n"
                           "  n0 = Add(a0, a1)\n"
                           "  results(n0)\n"
                           "}\n"
                           "endrule\n";
  std::vector<LintFinding> Deduped = auditLibraryText(Text);
  EXPECT_EQ(byCode(Deduped, "shadowed-rule").size(), 2u);

  LintOptions All;
  All.ReportAllSubsumers = true;
  std::vector<LintFinding> Full = auditLibraryText(Text, All);
  EXPECT_EQ(byCode(Full, "shadowed-rule").size(), 3u);
}

TEST(RuleAudit, FindingFingerprintsSurviveReordering) {
  // The baseline key must identify a finding by rule content, not by
  // its current priority index: inserting an unrelated rule shifts
  // every index but must not change the fingerprint.
  const std::string Shadow = "rule add_rr\n"
                             "graph w8 args(bv8, bv8) {\n"
                             "  n0 = Add(a0, a1)\n"
                             "  results(n0)\n"
                             "}\n"
                             "endrule\n"
                             "rule or_rr\n"
                             "graph w8 args(bv8, bv8) {\n"
                             "  n0 = Add(a0, a1)\n"
                             "  results(n0)\n"
                             "}\n"
                             "endrule\n";
  const std::string Unrelated = "rule sub_ri\n"
                                "graph w8 args(bv8, bv8) {\n"
                                "  n0 = Const[0x05:8]()\n"
                                "  n1 = Sub(a0, n0)\n"
                                "  results(n1)\n"
                                "}\n"
                                "endrule\n";
  std::vector<LintFinding> FirstCopy, SecondCopy;
  std::vector<LintFinding> A = auditLibraryText(Shadow);
  std::vector<LintFinding> B = auditLibraryText(Unrelated + Shadow);
  for (const LintFinding *F : byCode(A, "shadowed-rule"))
    FirstCopy.push_back(*F);
  for (const LintFinding *F : byCode(B, "shadowed-rule"))
    SecondCopy.push_back(*F);
  ASSERT_EQ(FirstCopy.size(), 1u);
  ASSERT_EQ(SecondCopy.size(), 1u);
  EXPECT_FALSE(FirstCopy[0].Fingerprint.empty());
  EXPECT_EQ(FirstCopy[0].Fingerprint, SecondCopy[0].Fingerprint);
  // The sub_ri insertion really did shift the rule's index.
  EXPECT_NE(FirstCopy[0].RuleIndex, SecondCopy[0].RuleIndex);
}

TEST(LintBaseline, SuppressesAcknowledgedFindings) {
  LintFinding Old;
  Old.Code = "shadowed-rule";
  Old.Severity = "warning";
  Old.Message = "old finding";
  Old.Library = "lib.dat";
  Old.Goal = "add_rr";
  Old.Fingerprint = "deadbeef";

  LintFinding New;
  New.Code = "shadowed-rule";
  New.Severity = "warning";
  New.Message = "new finding";
  New.Library = "lib.dat";
  New.Goal = "or_rr";
  New.Fingerprint = "0badcafe";

  LintFinding NoFp;
  NoFp.Code = "unreadable-file";
  NoFp.Severity = "error";
  NoFp.Message = "cannot read";
  NoFp.File = "gone.dat";

  // A baseline is just a previously-published findings report.
  std::string BaselineJson = findingsToJson({Old});
  std::set<std::string> Baseline = parseBaselineFingerprints(BaselineJson);
  EXPECT_EQ(Baseline.count("deadbeef"), 1u);

  std::vector<LintFinding> Findings = {Old, New, NoFp};
  size_t Suppressed = suppressBaselinedFindings(Findings, Baseline);
  EXPECT_EQ(Suppressed, 1u);
  ASSERT_EQ(Findings.size(), 2u);
  EXPECT_EQ(Findings[0].Message, "new finding");
  // Findings without a fingerprint never match a baseline.
  EXPECT_EQ(Findings[1].Code, "unreadable-file");

  std::string Json = findingsToJson(Findings, Suppressed);
  EXPECT_NE(Json.find("\"suppressed\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"fingerprint\": \"0badcafe\""), std::string::npos);
}

TEST(IrAudit, FlagsMalformedIr) {
  std::vector<LintFinding> Findings =
      auditIrText("graph w8 args(bv8) {\n", "bad.ir");
  ASSERT_EQ(Findings.size(), 1u);
  EXPECT_EQ(Findings[0].Code, "malformed-ir");
  EXPECT_EQ(Findings[0].Severity, "error");
  EXPECT_EQ(Findings[0].File, "bad.ir");
  EXPECT_TRUE(lintHasErrors(Findings));
}

TEST(IrAudit, FlagsDanglingMemoryChain) {
  // The store's memory token neither feeds another operation nor
  // escapes through the results: the verifier reports the dangle.
  std::vector<LintFinding> Findings =
      auditIrText("graph w8 args(mem, bv8, bv8) {\n"
                  "  n0 = Store(a0, a1, a2)\n"
                  "  results(a2)\n"
                  "}\n",
                  "dangle.ir");
  std::vector<const LintFinding *> Verifier =
      byCode(Findings, "verifier-error");
  ASSERT_GE(Verifier.size(), 1u);
  EXPECT_EQ(Verifier[0]->Severity, "error");
  EXPECT_NE(Verifier[0]->Message.find("dangles"), std::string::npos);
}

TEST(IrAudit, FlagsProvableUbShift) {
  std::vector<LintFinding> Findings =
      auditIrText("graph w8 args(bv8) {\n"
                  "  n0 = Const[0x09:8]()\n"
                  "  n1 = Shl(a0, n0)\n"
                  "  results(n1)\n"
                  "}\n",
                  "ub.ir");
  std::vector<const LintFinding *> Ub = byCode(Findings, "ub-shift");
  ASSERT_EQ(Ub.size(), 1u);
  EXPECT_EQ(Ub[0]->Severity, "error");
  EXPECT_TRUE(lintHasErrors(Findings));
}

TEST(IrAudit, NotesUnprovenShift) {
  std::vector<LintFinding> Findings =
      auditIrText("graph w8 args(bv8, bv8) {\n"
                  "  n0 = Shl(a0, a1)\n"
                  "  results(n0)\n"
                  "}\n",
                  "unproven.ir");
  std::vector<const LintFinding *> Notes = byCode(Findings, "unproven-shift");
  ASSERT_EQ(Notes.size(), 1u);
  EXPECT_EQ(Notes[0]->Severity, "note");
  EXPECT_FALSE(lintHasErrors(Findings));
}

TEST(IrAudit, MaskedShiftIsClean) {
  std::vector<LintFinding> Findings =
      auditIrText("graph w8 args(bv8, bv8) {\n"
                  "  n0 = Const[0x07:8]()\n"
                  "  n1 = And(a1, n0)\n"
                  "  n2 = Shl(a0, n1)\n"
                  "  results(n2)\n"
                  "}\n",
                  "clean.ir");
  EXPECT_TRUE(Findings.empty());
}

TEST(LintJson, CountsAndEscapes) {
  LintFinding Error;
  Error.Code = "ub-shift";
  Error.Severity = "error";
  Error.Message = "say \"hi\"\\";
  Error.File = "a.ir";

  LintFinding Warning;
  Warning.Code = "shadowed-rule";
  Warning.Severity = "warning";
  Warning.Message = "later rule never fires";
  Warning.Library = "lib.dat";
  Warning.Goal = "add_rr";
  Warning.RuleIndex = 3;

  LintFinding Note;
  Note.Code = "unproven-shift";
  Note.Severity = "note";
  Note.Message = "line1\nline2";
  Note.File = "b.ir";

  std::string Json = findingsToJson({Error, Warning, Note});
  EXPECT_NE(Json.find("\"errors\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"warnings\": 1"), std::string::npos);
  EXPECT_NE(Json.find("\"notes\": 1"), std::string::npos);
  EXPECT_NE(Json.find("say \\\"hi\\\"\\\\"), std::string::npos);
  EXPECT_NE(Json.find("line1\\nline2"), std::string::npos);
  EXPECT_NE(Json.find("\"ruleIndex\": 3"), std::string::npos);
  EXPECT_NE(Json.find("\"goal\": \"add_rr\""), std::string::npos);

  EXPECT_TRUE(lintHasErrors({Error, Warning, Note}));
  EXPECT_FALSE(lintHasErrors({Warning, Note}));
  EXPECT_FALSE(lintHasErrors({}));
}

} // namespace
