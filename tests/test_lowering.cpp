//===- test_lowering.cpp - FunctionLowering scaffolding tests ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/Lowering.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

Function makeTwoBlockFunction() {
  Function F("low", W);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  BasicBlock *Next =
      F.createBlock("next", {Sort::memory(), Sort::value(W)});
  {
    Graph &G = Entry->body();
    NodeRef Sum = G.createBinary(Opcode::Add, G.arg(1),
                                 G.createConst(BitValue(W, 7)));
    Entry->setJump(Next, {G.arg(0), Sum});
  }
  {
    Graph &G = Next->body();
    Next->setReturn({G.arg(0), G.arg(1)});
  }
  return F;
}

} // namespace

TEST(FunctionLowering, SkeletonAndArgRegs) {
  Function F = makeTwoBlockFunction();
  FunctionLowering Lowering(F, "test");

  // One machine block per IR block.
  EXPECT_EQ(Lowering.machineFunction().blocks().size(), 2u);
  // Entry has two value arguments (memory gets no register).
  MachineBlock *Entry = Lowering.machineBlock(F.blocks()[0].get());
  EXPECT_EQ(Entry->ArgRegs.size(), 2u);
  MachineBlock *Next = Lowering.machineBlock(F.blocks()[1].get());
  EXPECT_EQ(Next->ArgRegs.size(), 1u);

  // Block arguments are pre-mapped; memory maps to a None operand.
  const Graph &Body = F.blocks()[0]->body();
  EXPECT_TRUE(Lowering.hasValue(Body.arg(0)));
  EXPECT_TRUE(Lowering.value(Body.arg(0)).isNone());
  EXPECT_TRUE(Lowering.value(Body.arg(1)).isReg());
}

TEST(FunctionLowering, OperandHelpers) {
  Function F = makeTwoBlockFunction();
  FunctionLowering Lowering(F, "test");
  MachineBlock *Entry = Lowering.machineBlock(F.blocks()[0].get());
  const Graph &Body = F.blocks()[0]->body();

  // The Const node feeding the Add.
  NodeRef ConstRef;
  for (const auto &N : Body.nodes())
    if (N->opcode() == Opcode::Const)
      ConstRef = NodeRef(N.get(), 0);
  ASSERT_TRUE(ConstRef.isValid());

  // flexOperand yields an immediate without emitting code.
  MOperand Flexible = Lowering.flexOperand(Entry, ConstRef);
  EXPECT_TRUE(Flexible.isImm());
  EXPECT_EQ(Entry->instructions().size(), 0u);

  // regOperand materializes it once with a mov.
  bool Materialized = false;
  MOperand Reg = Lowering.regOperand(Entry, ConstRef, &Materialized);
  EXPECT_TRUE(Reg.isReg());
  EXPECT_TRUE(Materialized);
  EXPECT_EQ(Entry->instructions().size(), 1u);
  EXPECT_EQ(Entry->instructions()[0].Op, MOpcode::Mov);

  // Second request reuses the register.
  MOperand Again = Lowering.regOperand(Entry, ConstRef);
  EXPECT_TRUE(Again.isReg());
  EXPECT_EQ(Again.R, Reg.R);
  EXPECT_EQ(Entry->instructions().size(), 1u);
}

TEST(FunctionLowering, TerminatorsAndEdgeMoves) {
  Function F = makeTwoBlockFunction();
  FunctionLowering Lowering(F, "test");

  // Lower the entry block's body minimally: give the Add a register.
  const Graph &Body = F.blocks()[0]->body();
  NodeRef SumRef;
  for (const auto &N : Body.nodes())
    if (N->opcode() == Opcode::Add)
      SumRef = NodeRef(N.get(), 0);
  MReg SumReg = Lowering.machineFunction().newReg();
  Lowering.setValue(SumRef, MOperand::reg(SumReg));

  Lowering.lowerTerminator(F.blocks()[0].get(),
                           [](MachineBlock *, NodeRef) {
                             ADD_FAILURE() << "no branch expected";
                             return CondCode::E;
                           });
  Lowering.lowerTerminator(F.blocks()[1].get(),
                           [](MachineBlock *, NodeRef) {
                             ADD_FAILURE() << "no branch expected";
                             return CondCode::E;
                           });

  MachineBlock *Entry = Lowering.machineBlock(F.blocks()[0].get());
  const MTerminator &Term = Entry->terminator();
  EXPECT_EQ(Term.TermKind, MTerminator::Kind::Jmp);
  // One edge move (the memory token is skipped), into the target's
  // argument register, sourced from the Add's register.
  MachineBlock *Next = Lowering.machineBlock(F.blocks()[1].get());
  ASSERT_EQ(Term.ThenMoves.size(), 1u);
  EXPECT_EQ(Term.ThenMoves[0].first, Next->ArgRegs[0]);
  EXPECT_TRUE(Term.ThenMoves[0].second.isReg());
  EXPECT_EQ(Term.ThenMoves[0].second.R, SumReg);

  // Return: memory skipped, one value operand.
  const MTerminator &RetTerm = Next->terminator();
  EXPECT_EQ(RetTerm.TermKind, MTerminator::Kind::Ret);
  ASSERT_EQ(RetTerm.ReturnValues.size(), 1u);
  EXPECT_TRUE(RetTerm.ReturnValues[0].isReg());
}
