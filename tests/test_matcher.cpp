//===- test_matcher.cpp - DAG pattern matcher tests ----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/Matcher.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;
const std::vector<ArgRole> RegReg = {ArgRole::Reg, ArgRole::Reg};
const std::vector<ArgRole> RegImm = {ArgRole::Reg, ArgRole::Imm};

/// Subject: r = (x + 5) & x over one argument.
struct Subject {
  Graph G{W, {Sort::value(W)}};
  Node *Add = nullptr;
  Node *And = nullptr;

  Subject() {
    NodeRef Sum = G.createBinary(Opcode::Add, G.arg(0),
                                 G.createConst(BitValue(W, 5)));
    Add = Sum.Def;
    NodeRef Masked = G.createBinary(Opcode::And, Sum, G.arg(0));
    And = Masked.Def;
    G.setResults({Masked});
  }
};

} // namespace

TEST(Matcher, PlainBinaryMatch) {
  Subject S;
  Graph Pattern(W, {Sort::value(W), Sort::value(W)});
  Pattern.setResults(
      {Pattern.createBinary(Opcode::And, Pattern.arg(0), Pattern.arg(1))});

  const Node *Root = patternRoot(Pattern);
  ASSERT_NE(Root, nullptr);
  std::optional<MatchResult> Match = matchPattern(Pattern, RegReg, Root,
                                                  S.And);
  ASSERT_TRUE(Match.has_value());
  // a0 binds the Add value, a1 the argument.
  EXPECT_EQ(Match->ArgBindings[0].Def, S.Add);
  EXPECT_EQ(Match->ArgBindings[1].Def, S.G.arg(0).Def);
  EXPECT_EQ(Match->CoveredNodes.size(), 1u);
}

TEST(Matcher, DeepMatchCoversInterior) {
  Subject S;
  // Pattern And(Add(a0, a1), a0) with a1 an immediate.
  Graph Pattern(W, {Sort::value(W), Sort::value(W)});
  NodeRef Sum =
      Pattern.createBinary(Opcode::Add, Pattern.arg(0), Pattern.arg(1));
  Pattern.setResults(
      {Pattern.createBinary(Opcode::And, Sum, Pattern.arg(0))});

  std::optional<MatchResult> Match =
      matchPattern(Pattern, RegImm, patternRoot(Pattern), S.And);
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->CoveredNodes.size(), 2u);
  ASSERT_TRUE(Match->ArgBindings[1].isValid());
  EXPECT_EQ(Match->ArgBindings[1].Def->opcode(), Opcode::Const);
}

TEST(Matcher, RepeatedArgumentMustBindSameValue) {
  // Pattern And(a0, a0) requires both operands equal.
  Graph Pattern(W, {Sort::value(W)});
  Pattern.setResults(
      {Pattern.createBinary(Opcode::And, Pattern.arg(0), Pattern.arg(0))});

  Subject S; // And(Add(...), arg) has different operands.
  EXPECT_FALSE(matchPattern(Pattern, {ArgRole::Reg}, patternRoot(Pattern),
                            S.And)
                   .has_value());

  Graph Same(W, {Sort::value(W)});
  NodeRef Masked =
      Same.createBinary(Opcode::And, Same.arg(0), Same.arg(0));
  Same.setResults({Masked});
  EXPECT_TRUE(matchPattern(Pattern, {ArgRole::Reg}, patternRoot(Pattern),
                           Masked.Def)
                  .has_value());
}

TEST(Matcher, ImmRoleRequiresConstant) {
  Subject S;
  Graph Pattern(W, {Sort::value(W), Sort::value(W)});
  Pattern.setResults(
      {Pattern.createBinary(Opcode::Add, Pattern.arg(0), Pattern.arg(1))});
  // At the Add node: a1 would bind the Const 5 -> ok with Imm role.
  EXPECT_TRUE(matchPattern(Pattern, RegImm, patternRoot(Pattern), S.Add)
                  .has_value());
  // Swapped roles: a0 (Imm) would bind the argument -> reject.
  EXPECT_FALSE(matchPattern(Pattern, {ArgRole::Imm, ArgRole::Reg},
                            patternRoot(Pattern), S.Add)
                   .has_value());
}

TEST(Matcher, ConstantValuesMustBeEqual) {
  Subject S; // Contains Const 5.
  Graph Pattern(W, {Sort::value(W)});
  Pattern.setResults({Pattern.createBinary(
      Opcode::Add, Pattern.arg(0), Pattern.createConst(BitValue(W, 5)))});
  EXPECT_TRUE(matchPattern(Pattern, {ArgRole::Reg}, patternRoot(Pattern),
                           S.Add)
                  .has_value());

  Graph Pattern6(W, {Sort::value(W)});
  Pattern6.setResults({Pattern6.createBinary(
      Opcode::Add, Pattern6.arg(0), Pattern6.createConst(BitValue(W, 6)))});
  EXPECT_FALSE(matchPattern(Pattern6, {ArgRole::Reg},
                            patternRoot(Pattern6), S.Add)
                   .has_value());
}

TEST(Matcher, RelationMustMatch) {
  Graph SubjectG(W, {Sort::value(W), Sort::value(W)});
  NodeRef Cmp =
      SubjectG.createCmp(Relation::Slt, SubjectG.arg(0), SubjectG.arg(1));
  SubjectG.setResults({Cmp});

  for (Relation Rel : {Relation::Slt, Relation::Ult}) {
    Graph Pattern(W, {Sort::value(W), Sort::value(W)});
    Pattern.setResults(
        {Pattern.createCmp(Rel, Pattern.arg(0), Pattern.arg(1))});
    bool Expect = Rel == Relation::Slt;
    EXPECT_EQ(matchPattern(Pattern, RegReg, patternRoot(Pattern), Cmp.Def)
                  .has_value(),
              Expect);
  }
}

TEST(Matcher, MultiResultIndicesRespected) {
  // Subject: Load feeding an Add with the *value* result.
  Graph SubjectG(W, {Sort::memory(), Sort::value(W), Sort::value(W)});
  Node *Load = SubjectG.createLoad(SubjectG.arg(0), SubjectG.arg(1));
  NodeRef Sum = SubjectG.createBinary(Opcode::Add, NodeRef(Load, 1),
                                      SubjectG.arg(2));
  SubjectG.setResults({NodeRef(Load, 0), Sum});

  // Pattern add_rm: [Load.0, Add(Load.1, a2)].
  Graph Pattern(W, {Sort::memory(), Sort::value(W), Sort::value(W)});
  Node *PLoad = Pattern.createLoad(Pattern.arg(0), Pattern.arg(1));
  NodeRef PSum = Pattern.createBinary(Opcode::Add, NodeRef(PLoad, 1),
                                      Pattern.arg(2));
  Pattern.setResults({NodeRef(PLoad, 0), PSum});

  const Node *Root = patternRoot(Pattern);
  ASSERT_NE(Root, nullptr);
  EXPECT_EQ(Root->opcode(), Opcode::Add); // Covering root, not the Load.

  std::vector<ArgRole> Roles = {ArgRole::Mem, ArgRole::Reg, ArgRole::Reg};
  std::optional<MatchResult> Match =
      matchPattern(Pattern, Roles, Root, Sum.Def);
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->CoveredNodes.size(), 2u);
}

TEST(Matcher, RootlessDisconnectedPattern) {
  // Two independent comparisons: no single result covers both.
  Graph Pattern(W, {Sort::value(W), Sort::value(W)});
  NodeRef A = Pattern.createCmp(Relation::Slt, Pattern.arg(0),
                                Pattern.arg(1));
  NodeRef B = Pattern.createCmp(Relation::Sge, Pattern.arg(0),
                                Pattern.arg(1));
  Pattern.setResults({A, B});
  EXPECT_EQ(patternRoot(Pattern), nullptr);
}

TEST(Matcher, MatchValueForJumpPatterns) {
  // Pattern Cond(Cmp<slt>(a0, a1)); subject branch condition.
  Graph Pattern(W, {Sort::value(W), Sort::value(W)});
  NodeRef PCmp =
      Pattern.createCmp(Relation::Slt, Pattern.arg(0), Pattern.arg(1));
  Node *Jump = Pattern.createCond(PCmp);
  Pattern.setResults({NodeRef(Jump, 0), NodeRef(Jump, 1)});

  Graph SubjectG(W, {Sort::value(W), Sort::value(W)});
  NodeRef SCmp =
      SubjectG.createCmp(Relation::Slt, SubjectG.arg(0), SubjectG.arg(1));
  SubjectG.setResults({});

  std::optional<MatchResult> Match =
      matchPatternValue(Pattern, RegReg, Jump->operand(0), SCmp);
  ASSERT_TRUE(Match.has_value());
  EXPECT_EQ(Match->CoveredNodes.size(), 1u); // The Cmp only.
}

TEST(Matcher, ShiftPreconditionOnMatchedConstants) {
  // Pattern Shl(a0, a1) with a1 immediate; subject shifts by 12 > 7.
  Graph Pattern(W, {Sort::value(W), Sort::value(W)});
  Pattern.setResults(
      {Pattern.createBinary(Opcode::Shl, Pattern.arg(0), Pattern.arg(1))});

  Graph SubjectG(W, {Sort::value(W)});
  NodeRef BadShift = SubjectG.createBinary(
      Opcode::Shl, SubjectG.arg(0), SubjectG.createConst(BitValue(W, 12)));
  SubjectG.setResults({BadShift});

  std::optional<MatchResult> Match =
      matchPattern(Pattern, RegImm, patternRoot(Pattern), BadShift.Def);
  ASSERT_TRUE(Match.has_value());
  EXPECT_FALSE(
      matchedConstantsSatisfyPreconditions(Pattern, *Match, W));

  Graph GoodSubject(W, {Sort::value(W)});
  NodeRef GoodShift = GoodSubject.createBinary(
      Opcode::Shl, GoodSubject.arg(0),
      GoodSubject.createConst(BitValue(W, 3)));
  GoodSubject.setResults({GoodShift});
  Match = matchPattern(Pattern, RegImm, patternRoot(Pattern),
                       GoodShift.Def);
  ASSERT_TRUE(Match.has_value());
  EXPECT_TRUE(matchedConstantsSatisfyPreconditions(Pattern, *Match, W));
}

TEST(Matcher, OpcodeMismatchFails) {
  Subject S;
  Graph Pattern(W, {Sort::value(W), Sort::value(W)});
  Pattern.setResults(
      {Pattern.createBinary(Opcode::Or, Pattern.arg(0), Pattern.arg(1))});
  EXPECT_FALSE(matchPattern(Pattern, RegReg, patternRoot(Pattern), S.And)
                   .has_value());
}
