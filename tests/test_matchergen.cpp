//===- test_matchergen.cpp - Matcher-automaton compiler tests ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Normalizer.h"
#include "isel/AutomatonSelector.h"
#include "isel/Matcher.h"
#include "matchergen/MatcherAutomaton.h"
#include "refsel/ReferenceSelectors.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

/// A prepared library over the hand-curated reference rules.
struct MatchergenTest : public ::testing::Test {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase GnuRules = buildGnuLikeRules(W);
  PreparedLibrary Library{GnuRules, Goals};
  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);

  /// The rules the linear selector would try for body subject \p S
  /// (root-opcode prefilter only).
  std::vector<uint32_t> linearBodyCandidates(const Node *S) const {
    std::vector<uint32_t> Out;
    for (const PreparedRule &R : Library.rules())
      if (!R.IsJumpRule && R.Root->opcode() == S->opcode())
        Out.push_back(R.Index);
    return Out;
  }

  /// The rules that fully match at \p S per the reference matcher.
  std::vector<uint32_t> fullMatches(const Node *S) const {
    std::vector<uint32_t> Out;
    for (const PreparedRule &R : Library.rules()) {
      if (R.IsJumpRule)
        continue;
      if (matchPattern(R.TheRule->Pattern, R.Goal->Spec->argRoles(), R.Root,
                       S))
        Out.push_back(R.Index);
    }
    return Out;
  }
};

bool isSubset(const std::vector<uint32_t> &Inner,
              const std::vector<uint32_t> &Outer) {
  for (uint32_t X : Inner)
    if (std::find(Outer.begin(), Outer.end(), X) == Outer.end())
      return false;
  return true;
}

} // namespace

TEST_F(MatchergenTest, SharesCommonPrefixes) {
  // The trie must be smaller than one path per rule: the reference
  // library has many rules with the same root opcode (add_rr, add_ri,
  // lea forms, ...), whose prefixes collapse into shared states.
  uint64_t TotalSymbols = 0;
  for (const PreparedRule &R : Library.rules())
    TotalSymbols +=
        R.TheRule->Pattern.numOperations() + R.TheRule->Pattern.numArgs();
  EXPECT_GT(Automaton.numStates(), 2u);
  EXPECT_LT(Automaton.numTransitions(), TotalSymbols);
  // A tree: every state except the two roots has exactly one parent.
  EXPECT_EQ(Automaton.numTransitions(), Automaton.numStates() - 2);
}

TEST_F(MatchergenTest, CandidatesAreSupersetOfMatchesAndSubsetOfLinear) {
  // Subjects with various shapes, including ones no rule matches.
  Graph G(W, {Sort::memory(), Sort::value(W), Sort::value(W)});
  std::vector<const Node *> Subjects;
  NodeRef Sum = G.createBinary(Opcode::Add, G.arg(1), G.arg(2));
  Subjects.push_back(Sum.Def);
  NodeRef Imm = G.createBinary(Opcode::Add, G.arg(1),
                               G.createConst(BitValue(W, 7)));
  Subjects.push_back(Imm.Def);
  NodeRef Blsr = G.createBinary(
      Opcode::And, G.arg(1),
      G.createBinary(Opcode::Sub, G.arg(1), G.createConst(BitValue(W, 1))));
  Subjects.push_back(Blsr.Def);
  Node *Load = G.createLoad(G.arg(0), G.arg(1));
  Subjects.push_back(Load);
  NodeRef Mux = G.createMux(G.createCmp(Relation::Ult, G.arg(1), G.arg(2)),
                            G.arg(1), G.arg(2));
  Subjects.push_back(Mux.Def);

  for (const Node *S : Subjects) {
    std::vector<uint32_t> Candidates;
    Automaton.matchBody(S, Candidates, nullptr);
    EXPECT_TRUE(std::is_sorted(Candidates.begin(), Candidates.end()));
    EXPECT_TRUE(isSubset(Candidates, linearBodyCandidates(S)))
        << "automaton offered a rule the linear prefilter would not";
    EXPECT_TRUE(isSubset(fullMatches(S), Candidates))
        << "automaton missed a rule that fully matches";
  }
}

TEST_F(MatchergenTest, ConstantValuesDiscriminate) {
  // Two subjects that differ only in a constant must reach different
  // accept states: blsr's decrement subtree must not fire for x - 2.
  // Subjects are normalized like every selector input (x - c becomes
  // x + (-c)).
  auto makeSubject = [](uint64_t Decrement) {
    Graph G(W, {Sort::value(W)});
    NodeRef R = G.createBinary(
        Opcode::And, G.arg(0),
        G.createBinary(Opcode::Sub, G.arg(0),
                       G.createConst(BitValue(W, Decrement))));
    G.setResults({R});
    return normalizeGraph(G);
  };
  Graph Good = makeSubject(1);
  Graph Bad = makeSubject(2);

  std::vector<uint32_t> GoodRules, BadRules;
  Automaton.matchBody(Good.results()[0].Def, GoodRules, nullptr);
  Automaton.matchBody(Bad.results()[0].Def, BadRules, nullptr);
  // The blsr rule (And(a, Sub(a, 1))) is a candidate only for Good.
  bool FoundBlsr = false;
  for (uint32_t Index : GoodRules) {
    const PreparedRule &R = Library.rules()[Index];
    if (R.Goal->Name == "blsr") {
      FoundBlsr = true;
      EXPECT_EQ(std::find_if(BadRules.begin(), BadRules.end(),
                             [&](uint32_t B) { return B == Index; }),
                BadRules.end());
    }
  }
  EXPECT_TRUE(FoundBlsr) << "reference library lost its blsr rule?";
}

TEST_F(MatchergenTest, StateVisitCounterAdvances) {
  Graph G(W, {Sort::value(W), Sort::value(W)});
  NodeRef Sum = G.createBinary(Opcode::Add, G.arg(0), G.arg(1));
  uint64_t Visited = 0;
  std::vector<uint32_t> Rules;
  Automaton.matchBody(Sum.Def, Rules, &Visited);
  EXPECT_GT(Visited, 0u);
  EXPECT_FALSE(Rules.empty());
}

TEST_F(MatchergenTest, SerializationRoundTrips) {
  std::string Text = Automaton.serialize();
  std::string Error;
  std::optional<MatcherAutomaton> Loaded =
      MatcherAutomaton::deserialize(Text, &Error);
  ASSERT_TRUE(Loaded) << Error;
  EXPECT_EQ(Loaded->numStates(), Automaton.numStates());
  EXPECT_EQ(Loaded->numTransitions(), Automaton.numTransitions());
  EXPECT_EQ(Loaded->numRules(), Automaton.numRules());
  EXPECT_EQ(Loaded->libraryFingerprint(), Automaton.libraryFingerprint());
  // Byte-exact round trip: the format is deterministic.
  EXPECT_EQ(Loaded->serialize(), Text);
  EXPECT_TRUE(automatonStalenessError(*Loaded, Library).empty());

  // The reloaded automaton produces identical candidates.
  Graph G(W, {Sort::value(W), Sort::value(W)});
  NodeRef Sum = G.createBinary(Opcode::Add, G.arg(0), G.arg(1));
  std::vector<uint32_t> A, B;
  Automaton.matchBody(Sum.Def, A, nullptr);
  Loaded->matchBody(Sum.Def, B, nullptr);
  EXPECT_EQ(A, B);
}

TEST_F(MatchergenTest, RejectsWrongVersionTag) {
  std::string Text = Automaton.serialize();
  std::string Stale = Text;
  Stale.replace(Stale.find("-v1"), 3, "-v0");
  std::string Error;
  EXPECT_FALSE(MatcherAutomaton::deserialize(Stale, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);

  EXPECT_FALSE(MatcherAutomaton::deserialize("", &Error));
  EXPECT_FALSE(MatcherAutomaton::deserialize("garbage\nfile\n", &Error));
}

TEST_F(MatchergenTest, RejectsTruncatedAndCorruptFiles) {
  std::string Text = Automaton.serialize();
  // Truncation: cut before the end marker.
  std::string Truncated = Text.substr(0, Text.size() / 2);
  std::string Error;
  EXPECT_FALSE(MatcherAutomaton::deserialize(Truncated, &Error));

  // An edge pointing past the state table.
  std::string BadEdge = Text;
  size_t EdgeAt = BadEdge.find("\nedge ");
  ASSERT_NE(EdgeAt, std::string::npos);
  BadEdge.replace(EdgeAt, 7, "\nedge 999999 ");
  EXPECT_FALSE(MatcherAutomaton::deserialize(BadEdge, &Error));

  // An unknown opcode mnemonic.
  std::string BadOp = Text;
  size_t NodeAt = BadOp.find(" node ");
  ASSERT_NE(NodeAt, std::string::npos);
  size_t OpStart = BadOp.find(' ', NodeAt + 6) + 1;
  size_t OpEnd = BadOp.find_first_of(" \n", OpStart);
  BadOp.replace(OpStart, OpEnd - OpStart, "Frobnicate");
  EXPECT_FALSE(MatcherAutomaton::deserialize(BadOp, &Error));
}

TEST_F(MatchergenTest, StaleLibraryIsRejected) {
  // An automaton compiled from the clang-like library must be flagged
  // as stale against the gnu-like one, and vice versa.
  PatternDatabase ClangRules = buildClangLikeRules(W);
  PreparedLibrary ClangLibrary(ClangRules, Goals);
  MatcherAutomaton ClangAutomaton = buildMatcherAutomaton(ClangLibrary);

  EXPECT_TRUE(automatonStalenessError(Automaton, Library).empty());
  EXPECT_TRUE(automatonStalenessError(ClangAutomaton, ClangLibrary).empty());
  EXPECT_FALSE(automatonStalenessError(ClangAutomaton, Library).empty());
  EXPECT_FALSE(automatonStalenessError(Automaton, ClangLibrary).empty());
}

TEST_F(MatchergenTest, FingerprintTracksRuleChanges) {
  // Adding one rule changes the prepared-library fingerprint, so any
  // previously serialized automaton becomes stale.
  PatternDatabase Grown = buildGnuLikeRules(W);
  {
    Graph Pattern(W, {Sort::value(W), Sort::value(W)});
    NodeRef Weird = Pattern.createBinary(
        Opcode::Xor, Pattern.createBinary(Opcode::And, Pattern.arg(0),
                                          Pattern.arg(1)),
        Pattern.arg(1));
    Pattern.setResults({Weird});
    Grown.add("xor_rr", std::move(Pattern));
  }
  PreparedLibrary GrownLibrary(Grown, Goals);
  EXPECT_NE(GrownLibrary.fingerprint(), Library.fingerprint());
  EXPECT_FALSE(automatonStalenessError(Automaton, GrownLibrary).empty());
}

TEST_F(MatchergenTest, DagReconvergenceIsLeafChecked) {
  // A pattern whose operation node is *shared* (a DAG): r = Add(t, t)
  // with t = Not(a0). The flattening re-walks the shared node, so the
  // automaton accepts any subject of shape Add(Not(x), Not(y)) — the
  // full matcher then rejects y != x at the leaf. The automaton must
  // offer the rule for both shapes (superset), and matchPattern must
  // accept only the truly re-convergent subject.
  PatternDatabase Db;
  {
    Graph Pattern(W, {Sort::value(W)});
    NodeRef T = Pattern.createUnary(Opcode::Not, Pattern.arg(0));
    NodeRef R = Pattern.createBinary(Opcode::Add, T, T);
    Pattern.setResults({R});
    Db.add("add_rr", std::move(Pattern));
  }
  PreparedLibrary DagLibrary(Db, Goals);
  ASSERT_EQ(DagLibrary.rules().size(), 1u);
  MatcherAutomaton DagAutomaton = buildMatcherAutomaton(DagLibrary);

  Graph G(W, {Sort::value(W), Sort::value(W)});
  // Reconvergent subject: one shared Not node.
  NodeRef SharedNot = G.createUnary(Opcode::Not, G.arg(0));
  NodeRef Reconverges = G.createBinary(Opcode::Add, SharedNot, SharedNot);
  // Tree-shaped subject: two distinct Not nodes over distinct values.
  NodeRef Split = G.createBinary(Opcode::Add,
                                 G.createUnary(Opcode::Not, G.arg(0)),
                                 G.createUnary(Opcode::Not, G.arg(1)));

  const PreparedRule &Rule = DagLibrary.rules()[0];
  for (NodeRef Subject : {Reconverges, Split}) {
    std::vector<uint32_t> Candidates;
    DagAutomaton.matchBody(Subject.Def, Candidates, nullptr);
    EXPECT_EQ(Candidates, std::vector<uint32_t>{0})
        << "automaton must offer the DAG rule structurally";
  }
  EXPECT_TRUE(matchPattern(Rule.TheRule->Pattern, Rule.Goal->Spec->argRoles(),
                           Rule.Root, Reconverges.Def));
  EXPECT_FALSE(matchPattern(Rule.TheRule->Pattern,
                            Rule.Goal->Spec->argRoles(), Rule.Root,
                            Split.Def))
      << "full matcher must reject broken re-convergence at the leaf";
}
