//===- test_matchergen.cpp - Matcher-automaton compiler tests ------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Normalizer.h"
#include "isel/AutomatonSelector.h"
#include "isel/Matcher.h"
#include "matchergen/BinaryAutomaton.h"
#include "matchergen/MatcherAutomaton.h"
#include "refsel/ReferenceSelectors.h"
#include "support/AtomicFile.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

/// A prepared library over the hand-curated reference rules.
struct MatchergenTest : public ::testing::Test {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase GnuRules = buildGnuLikeRules(W);
  PreparedLibrary Library{GnuRules, Goals};
  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);

  /// The rules the linear selector would try for body subject \p S
  /// (root-opcode prefilter only).
  std::vector<uint32_t> linearBodyCandidates(const Node *S) const {
    std::vector<uint32_t> Out;
    for (const PreparedRule &R : Library.rules())
      if (!R.IsJumpRule && R.Root->opcode() == S->opcode())
        Out.push_back(R.Index);
    return Out;
  }

  /// The rules that fully match at \p S per the reference matcher.
  std::vector<uint32_t> fullMatches(const Node *S) const {
    std::vector<uint32_t> Out;
    for (const PreparedRule &R : Library.rules()) {
      if (R.IsJumpRule)
        continue;
      if (matchPattern(R.TheRule->Pattern, R.Goal->Spec->argRoles(), R.Root,
                       S))
        Out.push_back(R.Index);
    }
    return Out;
  }
};

bool isSubset(const std::vector<uint32_t> &Inner,
              const std::vector<uint32_t> &Outer) {
  for (uint32_t X : Inner)
    if (std::find(Outer.begin(), Outer.end(), X) == Outer.end())
      return false;
  return true;
}

} // namespace

TEST_F(MatchergenTest, SharesCommonPrefixes) {
  // The trie must be smaller than one path per rule: the reference
  // library has many rules with the same root opcode (add_rr, add_ri,
  // lea forms, ...), whose prefixes collapse into shared states.
  uint64_t TotalSymbols = 0;
  for (const PreparedRule &R : Library.rules())
    TotalSymbols +=
        R.TheRule->Pattern.numOperations() + R.TheRule->Pattern.numArgs();
  EXPECT_GT(Automaton.numStates(), 2u);
  EXPECT_LT(Automaton.numTransitions(), TotalSymbols);
  // A tree: every state except the two roots has exactly one parent.
  EXPECT_EQ(Automaton.numTransitions(), Automaton.numStates() - 2);
}

TEST_F(MatchergenTest, CandidatesAreSupersetOfMatchesAndSubsetOfLinear) {
  // Subjects with various shapes, including ones no rule matches.
  Graph G(W, {Sort::memory(), Sort::value(W), Sort::value(W)});
  std::vector<const Node *> Subjects;
  NodeRef Sum = G.createBinary(Opcode::Add, G.arg(1), G.arg(2));
  Subjects.push_back(Sum.Def);
  NodeRef Imm = G.createBinary(Opcode::Add, G.arg(1),
                               G.createConst(BitValue(W, 7)));
  Subjects.push_back(Imm.Def);
  NodeRef Blsr = G.createBinary(
      Opcode::And, G.arg(1),
      G.createBinary(Opcode::Sub, G.arg(1), G.createConst(BitValue(W, 1))));
  Subjects.push_back(Blsr.Def);
  Node *Load = G.createLoad(G.arg(0), G.arg(1));
  Subjects.push_back(Load);
  NodeRef Mux = G.createMux(G.createCmp(Relation::Ult, G.arg(1), G.arg(2)),
                            G.arg(1), G.arg(2));
  Subjects.push_back(Mux.Def);

  for (const Node *S : Subjects) {
    std::vector<uint32_t> Candidates;
    Automaton.matchBody(S, Candidates, nullptr);
    EXPECT_TRUE(std::is_sorted(Candidates.begin(), Candidates.end()));
    EXPECT_TRUE(isSubset(Candidates, linearBodyCandidates(S)))
        << "automaton offered a rule the linear prefilter would not";
    EXPECT_TRUE(isSubset(fullMatches(S), Candidates))
        << "automaton missed a rule that fully matches";
  }
}

TEST_F(MatchergenTest, ConstantValuesDiscriminate) {
  // Two subjects that differ only in a constant must reach different
  // accept states: blsr's decrement subtree must not fire for x - 2.
  // Subjects are normalized like every selector input (x - c becomes
  // x + (-c)).
  auto makeSubject = [](uint64_t Decrement) {
    Graph G(W, {Sort::value(W)});
    NodeRef R = G.createBinary(
        Opcode::And, G.arg(0),
        G.createBinary(Opcode::Sub, G.arg(0),
                       G.createConst(BitValue(W, Decrement))));
    G.setResults({R});
    return normalizeGraph(G);
  };
  Graph Good = makeSubject(1);
  Graph Bad = makeSubject(2);

  std::vector<uint32_t> GoodRules, BadRules;
  Automaton.matchBody(Good.results()[0].Def, GoodRules, nullptr);
  Automaton.matchBody(Bad.results()[0].Def, BadRules, nullptr);
  // The blsr rule (And(a, Sub(a, 1))) is a candidate only for Good.
  bool FoundBlsr = false;
  for (uint32_t Index : GoodRules) {
    const PreparedRule &R = Library.rules()[Index];
    if (R.Goal->Name == "blsr") {
      FoundBlsr = true;
      EXPECT_EQ(std::find_if(BadRules.begin(), BadRules.end(),
                             [&](uint32_t B) { return B == Index; }),
                BadRules.end());
    }
  }
  EXPECT_TRUE(FoundBlsr) << "reference library lost its blsr rule?";
}

TEST_F(MatchergenTest, StateVisitCounterAdvances) {
  Graph G(W, {Sort::value(W), Sort::value(W)});
  NodeRef Sum = G.createBinary(Opcode::Add, G.arg(0), G.arg(1));
  uint64_t Visited = 0;
  std::vector<uint32_t> Rules;
  Automaton.matchBody(Sum.Def, Rules, &Visited);
  EXPECT_GT(Visited, 0u);
  EXPECT_FALSE(Rules.empty());
}

TEST_F(MatchergenTest, SerializationRoundTrips) {
  std::string Text = Automaton.serialize();
  std::string Error;
  std::optional<MatcherAutomaton> Loaded =
      MatcherAutomaton::deserialize(Text, &Error);
  ASSERT_TRUE(Loaded) << Error;
  EXPECT_EQ(Loaded->numStates(), Automaton.numStates());
  EXPECT_EQ(Loaded->numTransitions(), Automaton.numTransitions());
  EXPECT_EQ(Loaded->numRules(), Automaton.numRules());
  EXPECT_EQ(Loaded->libraryFingerprint(), Automaton.libraryFingerprint());
  // Byte-exact round trip: the format is deterministic.
  EXPECT_EQ(Loaded->serialize(), Text);
  EXPECT_TRUE(automatonStalenessError(*Loaded, Library).empty());

  // The reloaded automaton produces identical candidates.
  Graph G(W, {Sort::value(W), Sort::value(W)});
  NodeRef Sum = G.createBinary(Opcode::Add, G.arg(0), G.arg(1));
  std::vector<uint32_t> A, B;
  Automaton.matchBody(Sum.Def, A, nullptr);
  Loaded->matchBody(Sum.Def, B, nullptr);
  EXPECT_EQ(A, B);
}

TEST_F(MatchergenTest, RejectsWrongVersionTag) {
  std::string Text = Automaton.serialize();
  std::string Stale = Text;
  Stale.replace(Stale.find("-v2"), 3, "-v0");
  std::string Error;
  EXPECT_FALSE(MatcherAutomaton::deserialize(Stale, &Error));
  EXPECT_NE(Error.find("version"), std::string::npos);

  EXPECT_FALSE(MatcherAutomaton::deserialize("", &Error));
  EXPECT_FALSE(MatcherAutomaton::deserialize("garbage\nfile\n", &Error));
}

TEST_F(MatchergenTest, RejectsTruncatedAndCorruptFiles) {
  std::string Text = Automaton.serialize();
  // Truncation: cut before the end marker.
  std::string Truncated = Text.substr(0, Text.size() / 2);
  std::string Error;
  EXPECT_FALSE(MatcherAutomaton::deserialize(Truncated, &Error));

  // An edge pointing past the state table.
  std::string BadEdge = Text;
  size_t EdgeAt = BadEdge.find("\nedge ");
  ASSERT_NE(EdgeAt, std::string::npos);
  BadEdge.replace(EdgeAt, 7, "\nedge 999999 ");
  EXPECT_FALSE(MatcherAutomaton::deserialize(BadEdge, &Error));

  // An unknown opcode mnemonic.
  std::string BadOp = Text;
  size_t NodeAt = BadOp.find(" node ");
  ASSERT_NE(NodeAt, std::string::npos);
  size_t OpStart = BadOp.find(' ', NodeAt + 6) + 1;
  size_t OpEnd = BadOp.find_first_of(" \n", OpStart);
  BadOp.replace(OpStart, OpEnd - OpStart, "Frobnicate");
  EXPECT_FALSE(MatcherAutomaton::deserialize(BadOp, &Error));
}

TEST_F(MatchergenTest, StaleLibraryIsRejected) {
  // An automaton compiled from the clang-like library must be flagged
  // as stale against the gnu-like one, and vice versa.
  PatternDatabase ClangRules = buildClangLikeRules(W);
  PreparedLibrary ClangLibrary(ClangRules, Goals);
  MatcherAutomaton ClangAutomaton = buildMatcherAutomaton(ClangLibrary);

  EXPECT_TRUE(automatonStalenessError(Automaton, Library).empty());
  EXPECT_TRUE(automatonStalenessError(ClangAutomaton, ClangLibrary).empty());
  EXPECT_FALSE(automatonStalenessError(ClangAutomaton, Library).empty());
  EXPECT_FALSE(automatonStalenessError(Automaton, ClangLibrary).empty());
}

TEST_F(MatchergenTest, FingerprintTracksRuleChanges) {
  // Adding one rule changes the prepared-library fingerprint, so any
  // previously serialized automaton becomes stale.
  PatternDatabase Grown = buildGnuLikeRules(W);
  {
    Graph Pattern(W, {Sort::value(W), Sort::value(W)});
    NodeRef Weird = Pattern.createBinary(
        Opcode::Xor, Pattern.createBinary(Opcode::And, Pattern.arg(0),
                                          Pattern.arg(1)),
        Pattern.arg(1));
    Pattern.setResults({Weird});
    Grown.add("xor_rr", std::move(Pattern));
  }
  PreparedLibrary GrownLibrary(Grown, Goals);
  EXPECT_NE(GrownLibrary.fingerprint(), Library.fingerprint());
  EXPECT_FALSE(automatonStalenessError(Automaton, GrownLibrary).empty());
}

TEST_F(MatchergenTest, DagReconvergenceIsLeafChecked) {
  // A pattern whose operation node is *shared* (a DAG): r = Add(t, t)
  // with t = Not(a0). The flattening re-walks the shared node, so the
  // automaton accepts any subject of shape Add(Not(x), Not(y)) — the
  // full matcher then rejects y != x at the leaf. The automaton must
  // offer the rule for both shapes (superset), and matchPattern must
  // accept only the truly re-convergent subject.
  PatternDatabase Db;
  {
    Graph Pattern(W, {Sort::value(W)});
    NodeRef T = Pattern.createUnary(Opcode::Not, Pattern.arg(0));
    NodeRef R = Pattern.createBinary(Opcode::Add, T, T);
    Pattern.setResults({R});
    Db.add("add_rr", std::move(Pattern));
  }
  PreparedLibrary DagLibrary(Db, Goals);
  ASSERT_EQ(DagLibrary.rules().size(), 1u);
  MatcherAutomaton DagAutomaton = buildMatcherAutomaton(DagLibrary);

  Graph G(W, {Sort::value(W), Sort::value(W)});
  // Reconvergent subject: one shared Not node.
  NodeRef SharedNot = G.createUnary(Opcode::Not, G.arg(0));
  NodeRef Reconverges = G.createBinary(Opcode::Add, SharedNot, SharedNot);
  // Tree-shaped subject: two distinct Not nodes over distinct values.
  NodeRef Split = G.createBinary(Opcode::Add,
                                 G.createUnary(Opcode::Not, G.arg(0)),
                                 G.createUnary(Opcode::Not, G.arg(1)));

  const PreparedRule &Rule = DagLibrary.rules()[0];
  for (NodeRef Subject : {Reconverges, Split}) {
    std::vector<uint32_t> Candidates;
    DagAutomaton.matchBody(Subject.Def, Candidates, nullptr);
    EXPECT_EQ(Candidates, std::vector<uint32_t>{0})
        << "automaton must offer the DAG rule structurally";
  }
  EXPECT_TRUE(matchPattern(Rule.TheRule->Pattern, Rule.Goal->Spec->argRoles(),
                           Rule.Root, Reconverges.Def));
  EXPECT_FALSE(matchPattern(Rule.TheRule->Pattern,
                            Rule.Goal->Spec->argRoles(), Rule.Root,
                            Split.Def))
      << "full matcher must reject broken re-convergence at the leaf";
}

//===----------------------------------------------------------------------===//
// Binary format ("selgen-matcher-automaton-bin-v1")
//===----------------------------------------------------------------------===//

namespace {

/// Copies an image into 8-byte-aligned storage: fromMemory requires an
/// aligned base (which any mmap or heap allocation provides), and a
/// std::string's buffer does not guarantee it.
struct AlignedImage {
  explicit AlignedImage(const std::string &Bytes)
      : Words(Bytes.size() / 8 + 1), Size(Bytes.size()) {
    std::memcpy(Words.data(), Bytes.data(), Bytes.size());
  }
  const void *data() const { return Words.data(); }

  std::vector<uint64_t> Words;
  size_t Size;
};

/// Attempts a load and returns the typed rejection (None on success).
BinaryAutomatonError loadCode(const std::string &Bytes) {
  AlignedImage Image(Bytes);
  BinaryAutomatonError Code = BinaryAutomatonError::None;
  std::string Error;
  std::optional<BinaryAutomatonView> View =
      BinaryAutomatonView::fromMemory(Image.data(), Image.Size, &Error,
                                      &Code);
  EXPECT_EQ(View.has_value(), Code == BinaryAutomatonError::None) << Error;
  if (!View) {
    EXPECT_FALSE(Error.empty());
  }
  return Code;
}

/// Recomputes both CRCs after a deliberate field edit, so targeted
/// corruptions reach the bounds/structure checks instead of being
/// masked by the integrity checks.
void fixCrcs(std::string &Image) {
  binfmt::Header H;
  std::memcpy(&H, Image.data(), sizeof(H));
  H.PayloadCrc =
      crc32(Image.data() + sizeof(H), Image.size() - sizeof(H));
  H.HeaderCrc = crc32(&H, offsetof(binfmt::Header, HeaderCrc));
  std::memcpy(&Image[0], &H, sizeof(H));
}

binfmt::Header headerOf(const std::string &Image) {
  binfmt::Header H;
  std::memcpy(&H, Image.data(), sizeof(H));
  return H;
}

void putField(std::string &Image, size_t Offset, uint32_t Value) {
  std::memcpy(&Image[Offset], &Value, sizeof(Value));
}

} // namespace

TEST_F(MatchergenTest, BinaryRoundTripMatchesText) {
  std::string Image = Automaton.serializeBinary();
  AlignedImage Aligned(Image);
  std::string Error;
  std::optional<BinaryAutomatonView> View =
      BinaryAutomatonView::fromMemory(Aligned.data(), Aligned.Size, &Error);
  ASSERT_TRUE(View) << Error;
  EXPECT_EQ(View->numStates(), Automaton.numStates());
  EXPECT_EQ(View->numTransitions(), Automaton.numTransitions());
  EXPECT_EQ(View->numRules(), Automaton.numRules());
  EXPECT_EQ(View->libraryFingerprint(), Automaton.libraryFingerprint());
  EXPECT_TRUE(automatonStalenessError(*View, Library).empty());

  // binary -> heap -> text equals heap -> text: the two encodings
  // describe the identical automaton.
  EXPECT_EQ(View->toAutomaton().serialize(), Automaton.serialize());
  // And the binary encoding itself is deterministic.
  EXPECT_EQ(Automaton.serializeBinary(), Image);

  // Candidate sets off the mapped image match the heap automaton's.
  Graph G(W, {Sort::memory(), Sort::value(W), Sort::value(W)});
  std::vector<const Node *> Subjects;
  Subjects.push_back(
      G.createBinary(Opcode::Add, G.arg(1), G.arg(2)).Def);
  Subjects.push_back(
      G.createBinary(Opcode::Add, G.arg(1), G.createConst(BitValue(W, 7)))
          .Def);
  Subjects.push_back(G.createLoad(G.arg(0), G.arg(1)));
  Subjects.push_back(
      G.createMux(G.createCmp(Relation::Ult, G.arg(1), G.arg(2)), G.arg(1),
                  G.arg(2))
          .Def);
  for (const Node *S : Subjects) {
    std::vector<uint32_t> FromHeap, FromView;
    uint64_t HeapVisited = 0, ViewVisited = 0;
    Automaton.matchBody(S, FromHeap, &HeapVisited);
    View->matchBody(S, FromView, &ViewVisited);
    EXPECT_EQ(FromHeap, FromView);
    EXPECT_EQ(HeapVisited, ViewVisited);
  }
}

TEST_F(MatchergenTest, BinaryFileRoundTripAndSniffing) {
  std::string BinPath = ::testing::TempDir() + "matchergen_rt.matb";
  std::string TextPath = ::testing::TempDir() + "matchergen_rt.mat";
  ASSERT_TRUE(Automaton.writeBinaryFile(BinPath));
  ASSERT_TRUE(Automaton.writeFile(TextPath));
  EXPECT_TRUE(isBinaryAutomatonFile(BinPath));
  EXPECT_FALSE(isBinaryAutomatonFile(TextPath));
  EXPECT_FALSE(isBinaryAutomatonFile(TextPath + ".does-not-exist"));

  std::string Error;
  std::unique_ptr<MappedAutomaton> Mapped =
      MatcherAutomaton::mapBinary(BinPath, &Error);
  ASSERT_TRUE(Mapped) << Error;
  EXPECT_EQ(Mapped->sizeBytes(), Automaton.serializeBinary().size());
  EXPECT_EQ(Mapped->view().toAutomaton().serialize(), Automaton.serialize());

  EXPECT_FALSE(MatcherAutomaton::mapBinary(TextPath, &Error));
  EXPECT_FALSE(
      MatcherAutomaton::mapBinary(BinPath + ".does-not-exist", &Error));
}

TEST_F(MatchergenTest, BinaryRejectsTruncation) {
  std::string Image = Automaton.serializeBinary();
  // Every truncation point must be rejected, typed, and crash-free:
  // short of a header it is TooSmall, otherwise the total size or the
  // payload CRC can no longer hold.
  for (size_t Len = 0; Len < Image.size();
       Len += (Len < sizeof(binfmt::Header) ? 13 : 101)) {
    BinaryAutomatonError Code = loadCode(Image.substr(0, Len));
    EXPECT_NE(Code, BinaryAutomatonError::None) << "length " << Len;
    if (Len < sizeof(binfmt::Header)) {
      EXPECT_EQ(Code, BinaryAutomatonError::TooSmall) << "length " << Len;
    }
  }
  EXPECT_EQ(loadCode(Image.substr(0, Image.size() - 1)),
            BinaryAutomatonError::SizeMismatch);
}

TEST_F(MatchergenTest, BinaryRejectsEveryBitFlip) {
  std::string Image = Automaton.serializeBinary();
  // Deterministic single-bit mutation sweep. Every byte of the image
  // is covered by one of the two CRCs (and most by a stronger check
  // first), so no flip may survive — and none may crash or index out
  // of the arena.
  size_t Stride = std::max<size_t>(1, Image.size() / 256);
  for (size_t Pos = 0; Pos < Image.size(); Pos += Stride) {
    for (unsigned Bit : {0u, 4u, 7u}) {
      std::string Mutated = Image;
      Mutated[Pos] = static_cast<char>(Mutated[Pos] ^ (1u << Bit));
      EXPECT_NE(loadCode(Mutated), BinaryAutomatonError::None)
          << "surviving flip at byte " << Pos << " bit " << Bit;
    }
  }
}

TEST_F(MatchergenTest, BinaryRejectsForeignEndianAndVersion) {
  std::string Image = Automaton.serializeBinary();

  // Byte-swapped magic: the image of an opposite-endian writer.
  std::string Swapped = Image;
  std::swap(Swapped[0], Swapped[3]);
  std::swap(Swapped[1], Swapped[2]);
  EXPECT_EQ(loadCode(Swapped), BinaryAutomatonError::ForeignEndian);

  // Correct magic but byte-swapped endianness tag.
  std::string BadTag = Image;
  std::swap(BadTag[8], BadTag[11]);
  std::swap(BadTag[9], BadTag[10]);
  EXPECT_EQ(loadCode(BadTag), BinaryAutomatonError::ForeignEndian);

  std::string NotMagic = Image;
  NotMagic[0] = 'X';
  EXPECT_EQ(loadCode(NotMagic), BinaryAutomatonError::BadMagic);

  std::string Future = Image;
  putField(Future, offsetof(binfmt::Header, Version), binfmt::Version + 1);
  fixCrcs(Future);
  EXPECT_EQ(loadCode(Future), BinaryAutomatonError::BadVersion);

  // A flipped header byte without a CRC fix-up is HeaderCorrupt.
  std::string Corrupt = Image;
  Corrupt[offsetof(binfmt::Header, NumStates)] ^= 1;
  EXPECT_EQ(loadCode(Corrupt), BinaryAutomatonError::HeaderCorrupt);

  // A flipped payload byte with a fixed header is PayloadCorrupt.
  std::string Rot = Image;
  Rot[Rot.size() - 1] = static_cast<char>(Rot[Rot.size() - 1] ^ 0x10);
  binfmt::Header H = headerOf(Rot);
  putField(Rot, offsetof(binfmt::Header, HeaderCrc), H.HeaderCrc);
  EXPECT_EQ(loadCode(Rot), BinaryAutomatonError::PayloadCorrupt);

  EXPECT_EQ(loadCode(std::string(200, '\0')),
            BinaryAutomatonError::BadMagic);
}

TEST_F(MatchergenTest, BinaryRejectsOversizedOffsetsTyped) {
  std::string Image = Automaton.serializeBinary();
  binfmt::Header H = headerOf(Image);

  // Section offset far past the arena: BadSection even though the
  // CRCs check out, and no dereference ever happens.
  std::string HugeOff = Image;
  putField(HugeOff, offsetof(binfmt::Header, EdgesOff), 0xFFFFFFF0u);
  fixCrcs(HugeOff);
  EXPECT_EQ(loadCode(HugeOff), BinaryAutomatonError::BadSection);

  // Count overflowing the arena (offset * stride wraps in 32 bits; the
  // 64-bit bounds check must still catch it).
  std::string HugeCount = Image;
  putField(HugeCount, offsetof(binfmt::Header, NumStates), 0x40000000u);
  fixCrcs(HugeCount);
  EXPECT_EQ(loadCode(HugeCount), BinaryAutomatonError::BadSection);

  // Misaligned section offset.
  std::string Odd = Image;
  putField(Odd, offsetof(binfmt::Header, AcceptsOff), H.AcceptsOff | 2);
  fixCrcs(Odd);
  EXPECT_EQ(loadCode(Odd), BinaryAutomatonError::BadSection);

  // Lying total size.
  std::string Lies = Image;
  putField(Lies, offsetof(binfmt::Header, TotalBytes), H.TotalBytes + 64);
  fixCrcs(Lies);
  EXPECT_EQ(loadCode(Lies), BinaryAutomatonError::SizeMismatch);

  // Misaligned buffer base (checked before any content is read).
  AlignedImage Aligned(Image);
  BinaryAutomatonError Code = BinaryAutomatonError::None;
  EXPECT_FALSE(BinaryAutomatonView::fromMemory(
      reinterpret_cast<const char *>(Aligned.data()) + 4, Aligned.Size,
      nullptr, &Code));
  EXPECT_EQ(Code, BinaryAutomatonError::Misaligned);
}

TEST_F(MatchergenTest, BinaryRejectsBadStructureTyped) {
  std::string Image = Automaton.serializeBinary();
  binfmt::Header H = headerOf(Image);
  ASSERT_GT(H.NumEdges, 0u);

  // Root state id out of range.
  std::string BadRoot = Image;
  putField(BadRoot, offsetof(binfmt::Header, BodyRoot), H.NumStates);
  fixCrcs(BadRoot);
  EXPECT_EQ(loadCode(BadRoot), BinaryAutomatonError::BadStructure);

  // First edge's target state out of range.
  std::string BadEdge = Image;
  putField(BadEdge, H.EdgesOff + offsetof(binfmt::Edge, To), H.NumStates);
  fixCrcs(BadEdge);
  EXPECT_EQ(loadCode(BadEdge), BinaryAutomatonError::BadStructure);

  // First edge's kind is neither wildcard nor node.
  std::string BadKind = Image;
  BadKind[H.EdgesOff + offsetof(binfmt::Edge, Kind)] = 7;
  fixCrcs(BadKind);
  EXPECT_EQ(loadCode(BadKind), BinaryAutomatonError::BadStructure);

  // First accept entry names a rule past the library.
  ASSERT_GT(H.NumAccepts, 0u);
  std::string BadAccept = Image;
  putField(BadAccept, H.AcceptsOff, H.NumRules);
  fixCrcs(BadAccept);
  EXPECT_EQ(loadCode(BadAccept), BinaryAutomatonError::BadStructure);

  // First state's edge span runs past the edge table.
  std::string BadSpan = Image;
  putField(BadSpan, H.StatesOff + offsetof(binfmt::State, EdgeCount),
           H.NumEdges + 1);
  fixCrcs(BadSpan);
  EXPECT_EQ(loadCode(BadSpan), BinaryAutomatonError::BadStructure);

  // Root index ordinal past the body root's edge list.
  ASSERT_GT(H.RootPoolCount, 0u);
  std::string BadPool = Image;
  putField(BadPool, H.RootPoolOff, H.NumEdges);
  fixCrcs(BadPool);
  EXPECT_EQ(loadCode(BadPool), BinaryAutomatonError::BadStructure);
}
