//===- test_memory_model.cpp - M-value encoding tests --------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "semantics/MemoryModel.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

/// Fixture with a 3-valid-pointer model at width 8, pointers being
/// p, p+1, p+2 over a symbolic p.
class MemoryModelTest : public ::testing::Test {
protected:
  SmtContext Smt;
  z3::expr P = Smt.bvConst("p", 8);
  MemoryModel Model{Smt,
                    {P, (P + Smt.ctx().bv_val(1, 8)).simplify(),
                     (P + Smt.ctx().bv_val(2, 8)).simplify()}};

  /// Checks validity of a boolean expression.
  bool isValid(const z3::expr &E) {
    SmtSolver Solver(Smt);
    Solver.add(!E);
    return Solver.check() == SmtResult::Unsat;
  }
};

} // namespace

TEST_F(MemoryModelTest, Layout) {
  EXPECT_EQ(Model.numValidPointers(), 3u);
  EXPECT_EQ(Model.byteWidth(), 8u);
  // |V| * (w + 1) = 3 * 9 = 27 bits (the paper's BitVec36 example has
  // 4 pointers: 4 * 9 = 36).
  EXPECT_EQ(Model.mvalueWidth(), 27u);
  EXPECT_TRUE(Model.hasMemory());
}

TEST_F(MemoryModelTest, PaperStore32Example) {
  // The paper's store32 has V = [p, p+1, p+2, p+3] and M = BitVec36.
  MemoryModel Wide(Smt, {P, (P + 1).simplify(), (P + 2).simplify(),
                         (P + 3).simplify()});
  EXPECT_EQ(Wide.mvalueWidth(), 36u);
}

TEST_F(MemoryModelTest, StoreThenLoadSameAddress) {
  z3::expr M = Smt.bvConst("m", Model.mvalueWidth());
  z3::expr X = Smt.bvConst("x", 8);
  z3::expr Stored = Model.store(M, P, X);
  auto [Loaded, After] = Model.load(Stored, P);
  EXPECT_TRUE(isValid(Loaded == X));
  // The load set the access flag of the first valid pointer.
  EXPECT_TRUE(isValid(Model.accessFlagAt(After, 0) ==
                      Smt.ctx().bv_val(1, 1)));
}

TEST_F(MemoryModelTest, StoreDoesNotTouchOtherSlots) {
  z3::expr M = Smt.bvConst("m", Model.mvalueWidth());
  z3::expr X = Smt.bvConst("x", 8);
  z3::expr Stored = Model.store(M, P, X);
  EXPECT_TRUE(isValid(Model.contentsAt(Stored, 1) ==
                      Model.contentsAt(M, 1)));
  EXPECT_TRUE(isValid(Model.contentsAt(Stored, 2) ==
                      Model.contentsAt(M, 2)));
  EXPECT_TRUE(isValid(Model.accessFlagAt(Stored, 0) ==
                      Model.accessFlagAt(M, 0)));
}

TEST_F(MemoryModelTest, AliasingUsesFirstMatch) {
  // Aliasing model: V = [q, q] (the same pointer twice, as a syntactic
  // analysis of a specification might produce). Only slot 0 is ever
  // used (paper Section 4.1's fixed-order rule).
  z3::expr Q = Smt.bvConst("q", 8);
  MemoryModel Aliased(Smt, {Q, Q});
  z3::expr M = Smt.bvConst("m2", Aliased.mvalueWidth());
  z3::expr X = Smt.bvConst("x2", 8);
  z3::expr Stored = Aliased.store(M, Q, X);
  EXPECT_TRUE(isValid(Aliased.contentsAt(Stored, 0) == X));
  EXPECT_TRUE(isValid(Aliased.contentsAt(Stored, 1) ==
                      Aliased.contentsAt(M, 1)));
  auto [Loaded, After] = Aliased.load(Stored, Q);
  EXPECT_TRUE(isValid(Loaded == X));
  EXPECT_TRUE(isValid(Aliased.accessFlagAt(After, 1) ==
                      Aliased.accessFlagAt(M, 1)));
}

TEST_F(MemoryModelTest, InRange) {
  EXPECT_TRUE(isValid(Model.inRange(P)));
  EXPECT_TRUE(isValid(Model.inRange((P + 2).simplify())));
  // p+5 can never equal p, p+1, or p+2 (mod 256 arithmetic with fixed
  // offsets).
  EXPECT_TRUE(isValid(!Model.inRange((P + 5).simplify())));
}

TEST_F(MemoryModelTest, MultiByteRoundTrip) {
  z3::expr M = Smt.bvConst("m3", Model.mvalueWidth());
  z3::expr X = Smt.bvConst("x3", 16);
  z3::expr Stored = Model.storeValue(M, P, X);
  auto [Loaded, After] = Model.loadValue(Stored, P, 2);
  (void)After;
  EXPECT_TRUE(isValid(Loaded == X));
  // Little endian: the low byte lands at the first pointer.
  EXPECT_TRUE(isValid(Model.contentsAt(Stored, 0) == X.extract(7, 0)));
  EXPECT_TRUE(isValid(Model.contentsAt(Stored, 1) == X.extract(15, 8)));
}

TEST_F(MemoryModelTest, Masks) {
  BitValue Contents = Model.contentsMask();
  BitValue Flags = Model.flagsMask();
  EXPECT_EQ(Contents.width(), 27u);
  EXPECT_TRUE(Contents.bitAnd(Flags).isZero());
  EXPECT_TRUE(Contents.bitOr(Flags).isAllOnes());
  EXPECT_EQ(Flags.popcount(), 3u);
  EXPECT_EQ(Contents.popcount(), 24u);
  EXPECT_TRUE(Flags.bit(8));
  EXPECT_TRUE(Flags.bit(17));
  EXPECT_TRUE(Flags.bit(26));
}

TEST_F(MemoryModelTest, MemoryFreeModel) {
  MemoryModel Empty(Smt, {});
  EXPECT_FALSE(Empty.hasMemory());
  EXPECT_EQ(Empty.mvalueWidth(), 1u); // Sort must still exist.
  SmtSolver Solver(Smt);
  Solver.add(Empty.inRange(P)); // Nothing is in range.
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}
