//===- test_minimizer.cpp - Proof-carrying library minimization ----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The minimizer's contract: deletions lean only on kept survivors (in
// a shadow chain the certificates name the transitive survivor, never
// a rule that is itself deleted), an SMT timeout keeps the rule, the
// cost policy only deletes what the chosen model says the survivor
// matches at no extra cost, rules the preparation cannot see pass
// through untouched — and, end to end, first-match minimization of the
// shipped basic library leaves every workload's machine code
// byte-identical while linting clean of shadowed rules.
//
//===----------------------------------------------------------------------===//

#include "analysis/LibraryMinimizer.h"
#include "analysis/RuleAudit.h"
#include "eval/Workloads.h"
#include "isel/AutomatonSelector.h"
#include "support/FaultInjection.h"
#include "x86/Goals.h"
#include "x86/MachineIR.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

struct MinimizerTest : public ::testing::Test {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());

  PatternDatabase parse(const std::string &Text) {
    std::string Error;
    PatternDatabase Db = PatternDatabase::deserialize(Text, &Error);
    EXPECT_EQ(Error, "");
    return Db;
  }
};

/// printMachineFunction output minus the header line (which carries
/// the selector name); everything below must be byte-identical.
std::string asmBody(const MachineFunction &MF) {
  std::string Text = printMachineFunction(MF);
  size_t Newline = Text.find('\n');
  return Newline == std::string::npos ? std::string()
                                      : Text.substr(Newline + 1);
}

} // namespace

TEST_F(MinimizerTest, ShadowChainCitesTransitiveSurvivor) {
  // Three structurally identical rules: under first-match the first
  // one claims every subject. Both deletions must cite rule #0 — the
  // transitive survivor — never the middle rule, which is itself dead.
  PatternDatabase Db = parse("rule add_rr\n"
                             "graph w8 args(bv8, bv8) {\n"
                             "  n0 = Add(a0, a1)\n"
                             "  results(n0)\n"
                             "}\n"
                             "endrule\n"
                             "rule or_rr\n"
                             "graph w8 args(bv8, bv8) {\n"
                             "  n0 = Add(a0, a1)\n"
                             "  results(n0)\n"
                             "}\n"
                             "endrule\n"
                             "rule xor_rr\n"
                             "graph w8 args(bv8, bv8) {\n"
                             "  n0 = Add(a0, a1)\n"
                             "  results(n0)\n"
                             "}\n"
                             "endrule\n");
  MinimizeResult Result = minimizeLibrary(Db, Goals);
  EXPECT_EQ(Result.RulesBefore, 3u);
  EXPECT_EQ(Result.RulesAfter, 1u);
  ASSERT_EQ(Result.Certificates.size(), 2u);
  for (const DeletionCertificate &C : Result.Certificates) {
    EXPECT_EQ(C.SubsumerIndex, 0u);
    EXPECT_EQ(C.SubsumerGoal, "add_rr");
    EXPECT_NE(C.Class, RuleClass::Live);
    EXPECT_FALSE(C.PatternFingerprint.empty());
    // Identical patterns carry no shift precondition: the subsumption
    // is purely structural, no SMT query to fingerprint.
    EXPECT_FALSE(C.NeededSmt);
  }
  ASSERT_EQ(Result.Classes.size(), 3u);
  EXPECT_EQ(Result.Classes[0], RuleClass::Live);
  EXPECT_NE(Result.Classes[1], RuleClass::Live);
  EXPECT_NE(Result.Classes[2], RuleClass::Live);
  EXPECT_EQ(Result.Minimized.rules().front().GoalName, "add_rr");

  // Fixpoint: minimizing the output again deletes nothing.
  MinimizeResult Again = minimizeLibrary(Result.Minimized, Goals);
  EXPECT_EQ(Again.Certificates.size(), 0u);
  EXPECT_EQ(Again.RulesAfter, Again.RulesBefore);
}

TEST_F(MinimizerTest, SmtTimeoutKeepsTheRule) {
  // Two identical shifted patterns: the subsumption needs an SMT
  // entailment query (the subsumer has a live shift). When the solver
  // comes back unknown, the pair must stay out of the relation — the
  // rule is kept, never unsoundly deleted.
  const std::string Text = "rule shl_rc\n"
                           "graph w8 args(bv8, bv8) {\n"
                           "  n0 = Shl(a0, a1)\n"
                           "  results(n0)\n"
                           "}\n"
                           "endrule\n"
                           "rule shr_rc\n"
                           "graph w8 args(bv8, bv8) {\n"
                           "  n0 = Shl(a0, a1)\n"
                           "  results(n0)\n"
                           "}\n"
                           "endrule\n";
  PatternDatabase Db = parse(Text);

  ASSERT_TRUE(FaultInjector::get().configure("solver_unknown@p=1,seed=1"));
  MinimizeResult Timeout = minimizeLibrary(Db, Goals);
  FaultInjector::get().disarm();
  EXPECT_EQ(Timeout.Certificates.size(), 0u);
  EXPECT_EQ(Timeout.RulesAfter, 2u);
  EXPECT_GE(Timeout.SmtInconclusive, 1u);
  EXPECT_EQ(Timeout.Classes[0], RuleClass::Live);
  EXPECT_EQ(Timeout.Classes[1], RuleClass::Live);

  // With a working solver the same pair is provable and carries the
  // query fingerprint in its certificate.
  MinimizeResult Sound = minimizeLibrary(Db, Goals);
  ASSERT_EQ(Sound.Certificates.size(), 1u);
  EXPECT_TRUE(Sound.Certificates[0].NeededSmt);
  EXPECT_FALSE(Sound.Certificates[0].SmtQueryFingerprint.empty());
  EXPECT_EQ(Sound.RulesAfter, 1u);
}

TEST_F(MinimizerTest, DominatedPolicyRespectsTheCostModel) {
  // sete's recipe emits two instructions (cmp + setcc, 1 + 2 cycles);
  // imul_rr emits one 3-cycle imul. With identical patterns the
  // earlier sete rule shadows the imul rule, and it dominates under
  // the latency model (3 <= 3) but not under the unit model (2 > 1):
  // the dominated policy must keep the rule there.
  const GoalInstruction *Sete = Goals.find("sete");
  const GoalInstruction *Imul = Goals.find("imul_rr");
  ASSERT_TRUE(Sete && Imul);
  RuleCost SeteCost = deriveRuleCost(*Sete);
  RuleCost ImulCost = deriveRuleCost(*Imul);
  ASSERT_GT(SeteCost.Instructions, ImulCost.Instructions);
  ASSERT_LE(SeteCost.Latency, ImulCost.Latency);

  const std::string Text = "rule sete\n"
                           "graph w8 args(bv8, bv8) {\n"
                           "  n0 = Mul(a0, a1)\n"
                           "  results(n0)\n"
                           "}\n"
                           "endrule\n"
                           "rule imul_rr\n"
                           "graph w8 args(bv8, bv8) {\n"
                           "  n0 = Mul(a0, a1)\n"
                           "  results(n0)\n"
                           "}\n"
                           "endrule\n";
  PatternDatabase Db = parse(Text);

  MinimizeOptions Unit;
  Unit.Policy = MinimizePolicy::Dominated;
  Unit.Model = CostKind::Unit;
  MinimizeResult KeptResult = minimizeLibrary(Db, Goals, Unit);
  EXPECT_EQ(KeptResult.Certificates.size(), 0u);
  EXPECT_EQ(KeptResult.RulesAfter, 2u);
  // Still *classified* shadowed — just not deletable under this model.
  EXPECT_EQ(KeptResult.Classes[1], RuleClass::Shadowed);

  MinimizeOptions Latency;
  Latency.Policy = MinimizePolicy::Dominated;
  Latency.Model = CostKind::Latency;
  MinimizeResult DeletedResult = minimizeLibrary(Db, Goals, Latency);
  ASSERT_EQ(DeletedResult.Certificates.size(), 1u);
  EXPECT_EQ(DeletedResult.Certificates[0].Class, RuleClass::CostDominated);
  EXPECT_EQ(DeletedResult.Certificates[0].Goal, "imul_rr");
  EXPECT_EQ(DeletedResult.Certificates[0].SubsumerGoal, "sete");
  EXPECT_EQ(DeletedResult.RulesAfter, 1u);
}

TEST_F(MinimizerTest, UnsatisfiablePreconditionRuleIsDeleted) {
  // Three shift rules: an in-range constant amount (live), an
  // out-of-range constant amount (P+ unsatisfiable and the engine's
  // matched-constant gate rejects every match: unfireable), and a
  // *computed* amount that is provably always out of range. The last
  // one must be kept — the runtime precondition gate never re-checks
  // computed amounts, so deleting it could change selection.
  const std::string Text = "rule shl_rc\n"
                           "graph w8 args(bv8) {\n"
                           "  n0 = Const[0x03:8]()\n"
                           "  n1 = Shl(a0, n0)\n"
                           "  results(n1)\n"
                           "}\n"
                           "endrule\n"
                           "rule shl_rc\n"
                           "graph w8 args(bv8) {\n"
                           "  n0 = Const[0x0c:8]()\n"
                           "  n1 = Shl(a0, n0)\n"
                           "  results(n1)\n"
                           "}\n"
                           "endrule\n"
                           "rule shl_rc\n"
                           "graph w8 args(bv8, bv8) {\n"
                           "  n0 = Const[0x08:8]()\n"
                           "  n1 = Or(a1, n0)\n"
                           "  n2 = Shl(a0, n1)\n"
                           "  results(n2)\n"
                           "}\n"
                           "endrule\n";
  PatternDatabase Db = parse(Text);

  MinimizeResult Result = minimizeLibrary(Db, Goals);
  ASSERT_EQ(Result.Certificates.size(), 1u);
  const DeletionCertificate &C = Result.Certificates[0];
  EXPECT_EQ(C.Class, RuleClass::Unfireable);
  EXPECT_EQ(C.Goal, "shl_rc");
  EXPECT_TRUE(C.NeededSmt);
  EXPECT_FALSE(C.SmtQueryFingerprint.empty());
  // No subsumer backs an unfireable deletion.
  EXPECT_TRUE(C.SubsumerGoal.empty());
  EXPECT_EQ(Result.RulesAfter, 2u);
  bool KeptInRange = false, KeptComputed = false, KeptOutOfRange = false;
  for (const Rule &R : Result.Minimized.rules()) {
    std::string Fp = R.Pattern.fingerprint();
    KeptInRange |= Fp.find("0x03") != std::string::npos;
    KeptComputed |= Fp.find("Or") != std::string::npos;
    KeptOutOfRange |= Fp.find("0x0c") != std::string::npos;
  }
  EXPECT_TRUE(KeptInRange);
  EXPECT_TRUE(KeptComputed);
  EXPECT_FALSE(KeptOutOfRange);

  // A wedged solver keeps the rule: the deletion needs the Unsat
  // verdict, and Unknown is not Unsat.
  ASSERT_TRUE(FaultInjector::get().configure("solver_unknown@p=1,seed=1"));
  MinimizeResult Timeout = minimizeLibrary(Db, Goals);
  FaultInjector::get().disarm();
  EXPECT_EQ(Timeout.Certificates.size(), 0u);
  EXPECT_EQ(Timeout.RulesAfter, 3u);
  EXPECT_GE(Timeout.SmtInconclusive, 1u);
}

TEST_F(MinimizerTest, UnpreparedRulesPassThrough) {
  // The rootless immediate-move identity rule and a rule whose goal no
  // target provides are invisible to preparation; the minimizer must
  // carry them into the output untouched.
  PatternDatabase Db = parse("rule mov_ri\n"
                             "graph w8 args(bv8) {\n"
                             "  results(a0)\n"
                             "}\n"
                             "endrule\n"
                             "rule no_such_goal\n"
                             "graph w8 args(bv8) {\n"
                             "  n0 = Not(a0)\n"
                             "  results(n0)\n"
                             "}\n"
                             "endrule\n"
                             "rule not_r\n"
                             "graph w8 args(bv8) {\n"
                             "  n0 = Not(a0)\n"
                             "  results(n0)\n"
                             "}\n"
                             "endrule\n");
  MinimizeResult Result = minimizeLibrary(Db, Goals);
  EXPECT_EQ(Result.Certificates.size(), 0u);
  EXPECT_EQ(Result.RulesAfter, 3u);
  EXPECT_GE(Result.UnpreparedKept, 2u);
  bool HasMovRi = false, HasForeign = false;
  for (const Rule &R : Result.Minimized.rules()) {
    HasMovRi |= R.GoalName == "mov_ri";
    HasForeign |= R.GoalName == "no_such_goal";
  }
  EXPECT_TRUE(HasMovRi);
  EXPECT_TRUE(HasForeign);
}

TEST_F(MinimizerTest, MinimizedShippedBasicLibraryPreservesSelection) {
  // The end-to-end anchor on a real artifact: first-match minimization
  // of the shipped basic library must delete something, leave every
  // workload's machine code byte-identical, and lint clean of
  // shadowed rules afterwards (the pass reaches a fixpoint).
  std::string Text;
  for (const char *Candidate :
       {"artifacts/rule-library-basic-w8.dat",
        "../artifacts/rule-library-basic-w8.dat",
        "../../artifacts/rule-library-basic-w8.dat"}) {
    std::ifstream In(Candidate);
    if (!In)
      continue;
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
    break;
  }
  if (Text.empty())
    GTEST_SKIP() << "shipped rule library not found";

  PatternDatabase Db = parse(Text);
  MinimizeResult Result = minimizeLibrary(Db, Goals);
  EXPECT_GT(Result.Certificates.size(), 0u);
  EXPECT_EQ(Result.RulesBefore - Result.Certificates.size(),
            Result.RulesAfter);

  AutomatonSelector Before(Db, Goals);
  AutomatonSelector After(Result.Minimized, Goals);
  for (const WorkloadProfile &Profile : cint2000Profiles()) {
    Function F = buildWorkload(Profile, W);
    SelectionResult B = Before.select(F);
    SelectionResult A = After.select(F);
    ASSERT_TRUE(B.MF && A.MF) << Profile.Name;
    EXPECT_EQ(asmBody(*B.MF), asmBody(*A.MF)) << Profile.Name;
  }

  PreparedLibrary Prepared(Result.Minimized, Goals);
  LintOptions Options;
  for (const LintFinding &F :
       auditPreparedLibrary(Prepared, W, "minimized.dat", Options))
    EXPECT_NE(F.Code, "shadowed-rule") << F.Message;
}
