//===- test_normalizer.cpp - IR normalization tests ----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/Normalizer.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <functional>

using namespace selgen;

namespace {

Graph unary(Opcode Op, std::function<NodeRef(Graph &)> MakeOperand) {
  Graph G(8, {Sort::value(8), Sort::value(8)});
  G.setResults({G.createUnary(Op, MakeOperand(G))});
  return G;
}

std::string normalizedExpr(const Graph &G) {
  return printGraphExpression(normalizeGraph(G));
}

} // namespace

TEST(Normalizer, ConstantFolding) {
  Graph G(8, {});
  NodeRef Sum = G.createBinary(Opcode::Add, G.createConst(BitValue(8, 40)),
                               G.createConst(BitValue(8, 2)));
  G.setResults({Sum});
  EXPECT_EQ(normalizedExpr(G), "Const(42)");
}

TEST(Normalizer, ShiftFoldingRespectsPrecondition) {
  Graph G(8, {});
  NodeRef V = G.createBinary(Opcode::Shl, G.createConst(BitValue(8, 1)),
                             G.createConst(BitValue(8, 9)));
  G.setResults({V});
  // Amount 9 >= width: undefined, must NOT fold.
  EXPECT_EQ(normalizedExpr(G), "Shl(Const(1), Const(9))");
}

TEST(Normalizer, ConstantsMoveRight) {
  Graph G(8, {Sort::value(8)});
  G.setResults({G.createBinary(Opcode::Add, G.createConst(BitValue(8, 7)),
                               G.arg(0))});
  EXPECT_EQ(normalizedExpr(G), "Add(a0, Const(7))");
}

TEST(Normalizer, SubOfConstantBecomesAdd) {
  Graph G(8, {Sort::value(8)});
  G.setResults({G.createBinary(Opcode::Sub, G.arg(0),
                               G.createConst(BitValue(8, 1)))});
  EXPECT_EQ(normalizedExpr(G), "Add(a0, Const(-1))");
}

TEST(Normalizer, StrengthReduction) {
  Graph G(8, {Sort::value(8)});
  G.setResults({G.createBinary(Opcode::Mul, G.arg(0),
                               G.createConst(BitValue(8, 8)))});
  EXPECT_EQ(normalizedExpr(G), "Shl(a0, Const(3))");
}

TEST(Normalizer, Identities) {
  // x + 0 -> x.
  Graph G1(8, {Sort::value(8)});
  G1.setResults({G1.createBinary(Opcode::Add, G1.arg(0),
                                 G1.createConst(BitValue::zero(8)))});
  EXPECT_EQ(normalizedExpr(G1), "a0");

  // x ^ x -> 0.
  Graph G2(8, {Sort::value(8)});
  G2.setResults({G2.createBinary(Opcode::Xor, G2.arg(0), G2.arg(0))});
  EXPECT_EQ(normalizedExpr(G2), "Const(0)");

  // x & ~0 -> x; x | ~0 -> ~0.
  Graph G3(8, {Sort::value(8)});
  G3.setResults({G3.createBinary(Opcode::And, G3.arg(0),
                                 G3.createConst(BitValue::allOnes(8)))});
  EXPECT_EQ(normalizedExpr(G3), "a0");

  // x ^ ~0 -> ~x.
  Graph G4(8, {Sort::value(8)});
  G4.setResults({G4.createBinary(Opcode::Xor, G4.arg(0),
                                 G4.createConst(BitValue::allOnes(8)))});
  EXPECT_EQ(normalizedExpr(G4), "Not(a0)");

  // 0 - x -> -x.
  Graph G5(8, {Sort::value(8)});
  G5.setResults({G5.createBinary(Opcode::Sub,
                                 G5.createConst(BitValue::zero(8)),
                                 G5.arg(0))});
  EXPECT_EQ(normalizedExpr(G5), "Minus(a0)");
}

TEST(Normalizer, DoubleInversion) {
  EXPECT_EQ(normalizedExpr(unary(Opcode::Not, [](Graph &G) {
              return G.createUnary(Opcode::Not, G.arg(0));
            })),
            "a0");
  EXPECT_EQ(normalizedExpr(unary(Opcode::Minus, [](Graph &G) {
              return G.createUnary(Opcode::Minus, G.arg(1));
            })),
            "a1");
}

TEST(Normalizer, ConstantReassociation) {
  // (x + 3) + 4 -> x + 7.
  Graph G(8, {Sort::value(8)});
  NodeRef Inner = G.createBinary(Opcode::Add, G.arg(0),
                                 G.createConst(BitValue(8, 3)));
  G.setResults({G.createBinary(Opcode::Add, Inner,
                               G.createConst(BitValue(8, 4)))});
  EXPECT_EQ(normalizedExpr(G), "Add(a0, Const(7))");
}

TEST(Normalizer, CommonSubexpressionElimination) {
  Graph G(8, {Sort::value(8), Sort::value(8)});
  NodeRef A = G.createBinary(Opcode::Add, G.arg(0), G.arg(1));
  NodeRef B = G.createBinary(Opcode::Add, G.arg(0), G.arg(1));
  G.setResults({G.createBinary(Opcode::Xor, A, B)});
  // Identical Adds merge, then x ^ x -> 0.
  EXPECT_EQ(normalizedExpr(G), "Const(0)");
}

TEST(Normalizer, CmpConstantMovesRight) {
  Graph G(8, {Sort::value(8)});
  G.setResults({G.createCmp(Relation::Slt, G.createConst(BitValue(8, 5)),
                            G.arg(0))});
  // 5 < x becomes x > 5.
  EXPECT_EQ(normalizedExpr(G), "Cmp<sgt>(a0, Const(5))");
}

TEST(Normalizer, MuxSameOperands) {
  Graph G(8, {Sort::value(8), Sort::value(8)});
  NodeRef Cmp = G.createCmp(Relation::Eq, G.arg(0), G.arg(1));
  G.setResults({G.createMux(Cmp, G.arg(0), G.arg(0))});
  EXPECT_EQ(normalizedExpr(G), "a0");
}

TEST(Normalizer, IsNormalizedFilter) {
  // Already canonical.
  Graph Canonical(8, {Sort::value(8)});
  Canonical.setResults({Canonical.createBinary(
      Opcode::Add, Canonical.arg(0), Canonical.createConst(BitValue(8, 1)))});
  EXPECT_TRUE(isNormalized(Canonical));

  // Constant on the left: the compiler would never emit this.
  Graph Reversed(8, {Sort::value(8)});
  Reversed.setResults({Reversed.createBinary(
      Opcode::Add, Reversed.createConst(BitValue(8, 1)), Reversed.arg(0))});
  EXPECT_FALSE(isNormalized(Reversed));
}

// --- Property tests ------------------------------------------------------

namespace {

/// Builds a random graph over two value arguments.
Graph randomGraph(Rng &Random, unsigned Width, unsigned NumOps) {
  Graph G(Width, {Sort::value(Width), Sort::value(Width)});
  std::vector<NodeRef> Pool = {G.arg(0), G.arg(1)};
  auto pick = [&] { return Pool[Random.nextBelow(Pool.size())]; };
  for (unsigned I = 0; I < NumOps; ++I) {
    switch (Random.nextBelow(12)) {
    case 0:
      Pool.push_back(G.createConst(Random.nextInterestingBitValue(Width)));
      break;
    case 1:
      Pool.push_back(G.createBinary(Opcode::Add, pick(), pick()));
      break;
    case 2:
      Pool.push_back(G.createBinary(Opcode::Sub, pick(), pick()));
      break;
    case 3:
      Pool.push_back(G.createBinary(Opcode::Mul, pick(), pick()));
      break;
    case 4:
      Pool.push_back(G.createBinary(Opcode::And, pick(), pick()));
      break;
    case 5:
      Pool.push_back(G.createBinary(Opcode::Or, pick(), pick()));
      break;
    case 6:
      Pool.push_back(G.createBinary(Opcode::Xor, pick(), pick()));
      break;
    case 7:
      Pool.push_back(G.createUnary(Opcode::Not, pick()));
      break;
    case 8:
      Pool.push_back(G.createUnary(Opcode::Minus, pick()));
      break;
    case 9:
      Pool.push_back(G.createBinary(
          Opcode::Shl, pick(),
          G.createConst(BitValue(Width, Random.nextBelow(Width)))));
      break;
    case 10:
      Pool.push_back(G.createBinary(
          Opcode::Shr, pick(),
          G.createConst(BitValue(Width, Random.nextBelow(Width)))));
      break;
    case 11: {
      NodeRef Cmp = G.createCmp(
          allRelations()[Random.nextBelow(allRelations().size())], pick(),
          pick());
      Pool.push_back(G.createMux(Cmp, pick(), pick()));
      break;
    }
    }
  }
  G.setResults({Pool.back()});
  return G;
}

} // namespace

TEST(NormalizerProperty, IdempotentAndSemanticsPreserving) {
  Rng Random(2026);
  for (int Trial = 0; Trial < 150; ++Trial) {
    Graph G = randomGraph(Random, 8, 2 + Random.nextBelow(10));
    Graph N = normalizeGraph(G);
    EXPECT_TRUE(isWellFormed(N));

    // Idempotence: normalizing twice changes nothing.
    EXPECT_EQ(normalizeGraph(N).fingerprint(), N.fingerprint());

    // Semantics preservation on random inputs (shift preconditions are
    // met by construction: all shift amounts are constants < width).
    for (int Input = 0; Input < 10; ++Input) {
      std::vector<EvalValue> Args = {
          EvalValue::fromBits(Random.nextBitValue(8)),
          EvalValue::fromBits(Random.nextBitValue(8))};
      EvalResult Before = evaluateGraph(G, Args);
      EvalResult After = evaluateGraph(N, Args);
      ASSERT_FALSE(Before.Undefined);
      ASSERT_FALSE(After.Undefined);
      EXPECT_EQ(Before.Results[0].Bits, After.Results[0].Bits)
          << "graph: " << printGraphExpression(G)
          << "\nnormalized: " << printGraphExpression(N);
    }
  }
}

TEST(NormalizerProperty, NeverGrows) {
  Rng Random(777);
  for (int Trial = 0; Trial < 100; ++Trial) {
    Graph G = randomGraph(Random, 8, 2 + Random.nextBelow(8));
    Graph N = normalizeGraph(G);
    EXPECT_LE(N.numOperations(), G.numOperations());
  }
}
