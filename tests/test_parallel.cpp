//===- test_parallel.cpp - Parallel synthesis and edge-move tests --------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "isel/HandwrittenSelector.h"
#include "pattern/ParallelBuilder.h"
#include "x86/Emulator.h"

#include <gtest/gtest.h>

#include <set>

using namespace selgen;

namespace {
constexpr unsigned W = 8;
} // namespace

TEST(ParallelBuilder, MatchesSequentialResult) {
  GoalLibrary All = GoalLibrary::build(W, {"Basic"});
  GoalLibrary Goals = GoalLibrary::subset(
      std::move(All), {"neg_r", "not_r", "add_rr", "xor_rr", "cmp_je"});

  SynthesisOptions Options;
  Options.Width = W;
  Options.QueryTimeoutMs = 30000;
  Options.TimeBudgetSeconds = 30;

  LibraryBuildReport SequentialReport, ParallelReport;
  SmtContext Smt;
  PatternDatabase Sequential =
      synthesizeRuleLibrary(Smt, Goals, Options, &SequentialReport);
  PatternDatabase Parallel = synthesizeRuleLibraryParallel(
      Goals, Options, /*NumThreads=*/3, &ParallelReport);

  ASSERT_EQ(Sequential.size(), Parallel.size());
  // Same rule sets (fingerprint multisets are equal).
  std::multiset<std::string> A, B;
  for (const Rule &R : Sequential.rules())
    A.insert(R.GoalName + "|" + R.Pattern.fingerprint());
  for (const Rule &R : Parallel.rules())
    B.insert(R.GoalName + "|" + R.Pattern.fingerprint());
  EXPECT_EQ(A, B);
  EXPECT_EQ(SequentialReport.TotalGoals, ParallelReport.TotalGoals);
  EXPECT_EQ(SequentialReport.TotalPatterns, ParallelReport.TotalPatterns);
}

TEST(ParallelBuilder, TotalModeListApplies) {
  GoalLibrary All = GoalLibrary::build(W, {"Bmi"});
  GoalLibrary Goals = GoalLibrary::subset(std::move(All), {"blsr"});

  SynthesisOptions Options;
  Options.Width = W;
  Options.QueryTimeoutMs = 30000;
  Options.TimeBudgetSeconds = 60;

  PatternDatabase Database = synthesizeRuleLibraryParallel(
      Goals, Options, 2, nullptr, /*TotalModeGoals=*/{"blsr"});
  // Total mode pushes the minimal size to 3 (the canonical idiom).
  for (const Rule &R : Database.rules())
    EXPECT_GE(R.Pattern.numOperations(), 3u);
  EXPECT_FALSE(Database.rules().empty());
}

TEST(EdgeMoves, ParallelSwapSemantics) {
  // A loop block that swaps its two arguments each iteration: the edge
  // moves (x <- y, y <- x) must be parallel, not sequential.
  Function F("swap", W);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  BasicBlock *Loop = F.createBlock(
      "loop",
      {Sort::memory(), Sort::value(W), Sort::value(W), Sort::value(W)});
  BasicBlock *Exit = F.createBlock("exit", {Sort::memory(), Sort::value(W)});
  {
    Graph &G = Entry->body();
    Entry->setJump(Loop, {G.arg(0), G.createConst(BitValue::zero(W)),
                          G.arg(1), G.arg(2)});
  }
  {
    Graph &G = Loop->body();
    NodeRef I = G.arg(1), X = G.arg(2), Y = G.arg(3);
    NodeRef NextI =
        G.createBinary(Opcode::Add, I, G.createConst(BitValue(W, 1)));
    NodeRef Continue = G.createCmp(Relation::Ult, NextI,
                                   G.createConst(BitValue(W, 2)));
    // Swap x and y on the back edge.
    Loop->setBranch(Continue, Loop, {G.arg(0), NextI, Y, X}, Exit,
                    {G.arg(0), X});
  }
  {
    Graph &G = Exit->body();
    Exit->setReturn({G.arg(0), G.arg(1)});
  }

  // Two iterations mean exactly one swap on the back edge; compute
  // the expected value with the IR interpreter, then demand the
  // machine code agrees (a sequential-move bug would collapse x and y).
  FunctionResult Reference =
      runFunction(F, {BitValue(W, 0xAA), BitValue(W, 0x55)}, MemoryState());
  ASSERT_FALSE(Reference.Undefined);

  HandwrittenSelector Selector;
  SelectionResult Selected = Selector.select(F);
  std::map<MReg, BitValue> Regs;
  const auto &ArgRegs = Selected.MF->entry()->ArgRegs;
  Regs[ArgRegs[0]] = BitValue(W, 0xAA);
  Regs[ArgRegs[1]] = BitValue(W, 0x55);
  MachineRunResult Machine =
      runMachineFunction(*Selected.MF, Regs, MemoryState());
  ASSERT_EQ(Machine.ReturnValues.size(), 1u);
  EXPECT_EQ(Machine.ReturnValues[0], Reference.ReturnValues[0]);
  // And the reference itself saw a real swap (sanity).
  EXPECT_EQ(Reference.ReturnValues[0].zextValue(), 0x55u);
}
