//===- test_pattern_db.cpp - Pattern database tests ----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/PatternDatabase.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

Graph addPattern(bool Swapped) {
  Graph G(W, {Sort::value(W), Sort::value(W)});
  NodeRef Lhs = Swapped ? G.arg(1) : G.arg(0);
  NodeRef Rhs = Swapped ? G.arg(0) : G.arg(1);
  G.setResults({G.createBinary(Opcode::Add, Lhs, Rhs)});
  return G;
}

Graph blsrPattern() {
  Graph G(W, {Sort::value(W)});
  G.setResults({G.createBinary(
      Opcode::And,
      G.createBinary(Opcode::Add, G.arg(0),
                     G.createConst(BitValue::allOnes(W))),
      G.arg(0))});
  return G;
}

Graph nonNormalizedPattern() {
  // Const on the left of a commutative op: the normalizer reorders it.
  Graph G(W, {Sort::value(W)});
  G.setResults({G.createBinary(Opcode::Add, G.createConst(BitValue(W, 1)),
                               G.arg(0))});
  return G;
}

} // namespace

TEST(PatternDatabase, AddRejectsExactDuplicates) {
  PatternDatabase DB;
  EXPECT_TRUE(DB.add("add_rr", addPattern(false)));
  EXPECT_FALSE(DB.add("add_rr", addPattern(false)));
  EXPECT_TRUE(DB.add("add_rr", addPattern(true))); // Different wiring.
  EXPECT_TRUE(DB.add("lea_bi", addPattern(false))); // Different goal.
  EXPECT_EQ(DB.size(), 3u);
  EXPECT_EQ(DB.rulesForGoal("add_rr").size(), 2u);
}

TEST(PatternDatabase, MergeAggregates) {
  PatternDatabase A, B;
  A.add("add_rr", addPattern(false));
  B.add("add_rr", addPattern(false)); // Duplicate across runs.
  B.add("blsr", blsrPattern());
  A.merge(std::move(B));
  EXPECT_EQ(A.size(), 2u);
}

TEST(PatternDatabase, CommutativeDuplicateFilter) {
  PatternDatabase DB;
  DB.add("add_rr", addPattern(false));
  DB.add("add_rr", addPattern(true));
  EXPECT_EQ(DB.filterCommutativeDuplicates(), 1u);
  EXPECT_EQ(DB.size(), 1u);
}

TEST(PatternDatabase, NonNormalizedFilter) {
  PatternDatabase DB;
  DB.add("add_ri", nonNormalizedPattern());
  DB.add("blsr", blsrPattern());
  EXPECT_EQ(DB.filterNonNormalized(), 1u);
  ASSERT_EQ(DB.size(), 1u);
  EXPECT_EQ(DB.rules()[0].GoalName, "blsr");
}

TEST(PatternDatabase, SortSpecificFirst) {
  PatternDatabase DB;
  DB.add("add_rr", addPattern(false)); // 1 op, 0 consts.
  DB.add("blsr", blsrPattern());       // 3 ops.
  DB.add("inc_r", [&] {
    Graph G(W, {Sort::value(W)});
    G.setResults({G.createBinary(Opcode::Add, G.arg(0),
                                 G.createConst(BitValue(W, 1)))});
    return G;
  }());
  DB.sortSpecificFirst();
  EXPECT_EQ(DB.rules()[0].GoalName, "blsr");
  EXPECT_EQ(DB.rules()[1].GoalName, "inc_r");
  EXPECT_EQ(DB.rules()[2].GoalName, "add_rr");
}

TEST(PatternDatabase, SerializationRoundTrip) {
  PatternDatabase DB;
  DB.add("add_rr", addPattern(false));
  DB.add("blsr", blsrPattern());
  DB.add("mov_ri", [&] {
    Graph G(W, {Sort::value(W)});
    G.setResults({G.arg(0)}); // Identity pattern.
    return G;
  }());

  std::string Error;
  PatternDatabase Loaded = PatternDatabase::deserialize(DB.serialize(),
                                                        &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  ASSERT_EQ(Loaded.size(), DB.size());
  for (size_t I = 0; I < DB.size(); ++I) {
    EXPECT_EQ(Loaded.rules()[I].GoalName, DB.rules()[I].GoalName);
    EXPECT_EQ(Loaded.rules()[I].Pattern.fingerprint(),
              DB.rules()[I].Pattern.fingerprint());
  }
}

TEST(PatternDatabase, DeserializeRejectsGarbage) {
  std::string Error;
  PatternDatabase DB = PatternDatabase::deserialize("lorem ipsum", &Error);
  EXPECT_EQ(DB.size(), 0u);
  EXPECT_FALSE(Error.empty());

  Error.clear();
  DB = PatternDatabase::deserialize("rule foo\ngraph w8 args(bv8) {\n",
                                    &Error);
  EXPECT_FALSE(Error.empty());
}

TEST(PatternDatabase, FileRoundTrip) {
  PatternDatabase DB;
  DB.add("blsr", blsrPattern());
  std::string Path = ::testing::TempDir() + "/selgen_rules_test.dat";
  DB.saveToFile(Path);
  PatternDatabase Loaded = PatternDatabase::loadFromFile(Path);
  ASSERT_EQ(Loaded.size(), 1u);
  EXPECT_EQ(Loaded.rules()[0].Pattern.fingerprint(),
            DB.rules()[0].Pattern.fingerprint());
  std::remove(Path.c_str());
}
