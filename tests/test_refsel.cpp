//===- test_refsel.cpp - Reference selector rule sets --------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
//
// The GnuLike/ClangLike rule sets are hand-written, exactly like real
// compilers' md/td files — so we verify every one of their rules with
// Z3 against the goal's formal semantics, which is precisely the
// paper's pitch ("manually specifying these rules is tedious and
// error-prone").
//
//===----------------------------------------------------------------------===//

#include "ir/Normalizer.h"
#include "ir/Printer.h"
#include "refsel/ReferenceSelectors.h"
#include "synth/Cegis.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {
constexpr unsigned W = 8;
} // namespace

TEST(ReferenceRules, AllRulesNormalized) {
  for (const PatternDatabase &Database :
       {buildGnuLikeRules(W), buildClangLikeRules(W)})
    for (const Rule &R : Database.rules())
      EXPECT_TRUE(isNormalized(R.Pattern))
          << R.GoalName << ": " << printGraphExpression(R.Pattern);
}

TEST(ReferenceRules, AllRulesVerifyAgainstGoalSemantics) {
  SmtContext Smt;
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  for (const PatternDatabase &Database :
       {buildGnuLikeRules(W), buildClangLikeRules(W)}) {
    for (const Rule &R : Database.rules()) {
      const GoalInstruction *Goal = Goals.find(R.GoalName);
      ASSERT_NE(Goal, nullptr) << R.GoalName;
      if (R.Pattern.numOperations() == 0)
        continue; // Identity rules (mov_ri) have nothing to verify.
      EXPECT_TRUE(verifyPatternAgainstGoal(Smt, W, *Goal->Spec,
                                           R.Pattern, nullptr, 30000))
          << R.GoalName << ": " << printGraphExpression(R.Pattern);
    }
  }
}

TEST(ReferenceRules, InterfacesMatchGoals) {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  for (const PatternDatabase &Database :
       {buildGnuLikeRules(W), buildClangLikeRules(W)}) {
    for (const Rule &R : Database.rules()) {
      const GoalInstruction *Goal = Goals.find(R.GoalName);
      ASSERT_NE(Goal, nullptr) << R.GoalName;
      ASSERT_EQ(R.Pattern.numArgs(), Goal->Spec->argSorts().size())
          << R.GoalName;
      for (unsigned I = 0; I < R.Pattern.numArgs(); ++I)
        EXPECT_EQ(R.Pattern.argSort(I), Goal->Spec->argSorts()[I])
            << R.GoalName << " arg " << I;
      ASSERT_EQ(R.Pattern.results().size(),
                Goal->Spec->resultSorts().size())
          << R.GoalName;
      for (unsigned I = 0; I < R.Pattern.results().size(); ++I)
        EXPECT_EQ(R.Pattern.results()[I].sort(),
                  Goal->Spec->resultSorts()[I])
            << R.GoalName << " result " << I;
    }
  }
}

TEST(ReferenceRules, RuleSetsDifferByDesign) {
  PatternDatabase Gnu = buildGnuLikeRules(W);
  PatternDatabase Clang = buildClangLikeRules(W);
  // Clang-like has andn/blsi/setcc; gnu-like has test-jumps and dec.
  EXPECT_FALSE(Clang.rulesForGoal("andn").empty());
  EXPECT_TRUE(Gnu.rulesForGoal("andn").empty());
  EXPECT_FALSE(Gnu.rulesForGoal("test_je").empty());
  EXPECT_TRUE(Clang.rulesForGoal("test_je").empty());
  EXPECT_FALSE(Clang.rulesForGoal("sete").empty());
  EXPECT_TRUE(Gnu.rulesForGoal("sete").empty());
  // Both support the classic blsr idiom (paper Section 7.4).
  EXPECT_FALSE(Gnu.rulesForGoal("blsr").empty());
  EXPECT_FALSE(Clang.rulesForGoal("blsr").empty());
}
