//===- test_resume.cpp - Checkpoint/resume and fault-injection tests -----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
//
// The robustness layer, proven rather than assumed:
//
//   * RunJournal unit tests: record round-trips, torn-tail quarantine,
//     config fingerprint survival.
//   * Fault determinism: a library synthesized under injected solver
//     faults is byte-identical to a clean run's.
//   * The headline end-to-end property: a selgen-synth run SIGKILLed
//     mid-flight (at the deterministic kill_after_finish crash point)
//     and resumed with --resume produces a byte-identical rule library
//     to an uninterrupted run, with zero re-synthesis of the goals
//     whose finish records survived.
//
// The end-to-end tests exec the real selgen-synth binary, whose path
// the build injects as SELGEN_SYNTH_TOOL.
//
//===----------------------------------------------------------------------===//

#include "pattern/ParallelBuilder.h"
#include "pattern/RunJournal.h"
#include "support/AtomicFile.h"
#include "support/FaultInjection.h"
#include "support/Statistics.h"
#include "x86/Goals.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

using namespace selgen;

namespace {

std::string freshDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "selgen_resume_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

GoalSynthesisResult makeResult(const std::string &Name, bool Complete) {
  GoalSynthesisResult Result;
  Result.GoalName = Name;
  Result.Complete = Complete;
  Result.MinimalSize = 2;
  Result.Counterexamples = 7;
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// RunJournal unit tests.
//===----------------------------------------------------------------------===//

TEST(RunJournal, RecordRoundTrip) {
  std::string Dir = freshDir("roundtrip");
  {
    std::unique_ptr<RunJournal> Journal = RunJournal::open(Dir, "cfg-abc");
    ASSERT_NE(Journal, nullptr);
    Journal->recordStart("k1", "goalA");
    Journal->recordFinish("k1", makeResult("goalA", true));
    Journal->recordStart("k2", "goalB"); // In flight at the "crash".
    Journal->recordStart("k3", "goalC");
    Journal->recordIncomplete("k3", "goalC", "timeout");
  }

  RunJournal::LoadResult Replay = RunJournal::load(Dir);
  EXPECT_TRUE(Replay.Existed);
  EXPECT_EQ(Replay.ConfigFingerprint, "cfg-abc");
  EXPECT_EQ(Replay.CorruptRecords, 0u);

  ASSERT_EQ(Replay.Finished.count("k1"), 1u);
  const GoalSynthesisResult &Result = Replay.Finished.at("k1");
  EXPECT_EQ(Result.GoalName, "goalA");
  EXPECT_TRUE(Result.Complete);
  EXPECT_EQ(Result.MinimalSize, 2u);
  EXPECT_EQ(Result.Counterexamples, 7u);

  EXPECT_EQ(Replay.InFlight, (std::set<std::string>{"k2"}));
  EXPECT_EQ(Replay.IncompleteCauses.at("k3"), "timeout");
}

TEST(RunJournal, TornTailIsQuarantined) {
  std::string Dir = freshDir("torntail");
  {
    std::unique_ptr<RunJournal> Journal = RunJournal::open(Dir, "cfg");
    ASSERT_NE(Journal, nullptr);
    Journal->recordFinish("k1", makeResult("goalA", true));
  }
  // A crash mid-append: a finish record missing its tail (no newline).
  std::string Path = RunJournal::journalPath(Dir);
  {
    std::ofstream Tear(Path, std::ios::app | std::ios::binary);
    Tear << "{\"type\":\"finish\",\"key\":\"k2\",\"goal\":\"goalB\",\"le";
  }

  RunJournal::LoadResult Replay = RunJournal::load(Dir);
  EXPECT_EQ(Replay.CorruptRecords, 1u);
  EXPECT_EQ(Replay.Finished.count("k1"), 1u); // Valid prefix survives.
  EXPECT_EQ(Replay.Finished.count("k2"), 0u);
  // Evidence preserved, journal truncated back to the valid prefix.
  EXPECT_TRUE(std::filesystem::exists(Path + ".bad"));
  RunJournal::LoadResult Again = RunJournal::load(Dir);
  EXPECT_EQ(Again.CorruptRecords, 0u);
  EXPECT_EQ(Again.Finished.count("k1"), 1u);

  // The truncated journal accepts new appends cleanly.
  std::unique_ptr<RunJournal> Journal = RunJournal::open(Dir, "cfg");
  ASSERT_NE(Journal, nullptr);
  Journal->recordFinish("k2", makeResult("goalB", true));
  Journal.reset();
  RunJournal::LoadResult Final = RunJournal::load(Dir);
  EXPECT_EQ(Final.Finished.size(), 2u);
  EXPECT_EQ(Final.ConfigFingerprint, "cfg");
}

TEST(RunJournal, CorruptedChecksumRejectsRecord) {
  std::string Dir = freshDir("badcrc");
  {
    std::unique_ptr<RunJournal> Journal = RunJournal::open(Dir, "cfg");
    ASSERT_NE(Journal, nullptr);
    Journal->recordFinish("k1", makeResult("goalA", true));
  }
  // Flip one byte inside the finish record's payload: the line is
  // still well-formed JSON, but the CRC frame must reject it.
  std::string Path = RunJournal::journalPath(Dir);
  std::string Contents = readFileToString(Path).value_or("");
  size_t Pos = Contents.find("goalA", Contents.find("\"result\""));
  ASSERT_NE(Pos, std::string::npos);
  Contents[Pos] = 'X';
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out << Contents;
  }

  RunJournal::LoadResult Replay = RunJournal::load(Dir);
  EXPECT_GE(Replay.CorruptRecords, 1u);
  EXPECT_EQ(Replay.Finished.count("k1"), 0u);
}

TEST(RunJournal, InjectedTornAppendIsDetected) {
  std::string Dir = freshDir("faultappend");
  ASSERT_TRUE(FaultInjector::get().configure("journal_truncate@n=2"));
  {
    std::unique_ptr<RunJournal> Journal = RunJournal::open(Dir, "cfg");
    ASSERT_NE(Journal, nullptr);
    Journal->recordFinish("k1", makeResult("goalA", true)); // Torn.
  }
  FaultInjector::get().disarm();

  RunJournal::LoadResult Replay = RunJournal::load(Dir);
  EXPECT_GE(Replay.CorruptRecords, 1u);
  EXPECT_EQ(Replay.Finished.count("k1"), 0u);
  EXPECT_EQ(Replay.ConfigFingerprint, "cfg"); // Header record intact.
}

//===----------------------------------------------------------------------===//
// Fault injection must never change a completed run's library.
//===----------------------------------------------------------------------===//

TEST(FaultDeterminism, SolverFaultsPreserveLibraryBytes) {
  GoalLibrary All = GoalLibrary::build(8, {"Basic"});
  GoalLibrary Goals =
      GoalLibrary::subset(std::move(All), {"mov_ri", "not_r", "and_rr"});

  SynthesisOptions Options;
  Options.Width = 8;
  Options.FindAllMinimal = true;
  Options.TimeBudgetSeconds = 30;
  Options.QueryTimeoutMs = 30000;
  Options.QueryRetryScale = {1, 1, 1}; // Ride over injected faults.

  ParallelBuildOptions Build;
  Build.NumThreads = 1;

  PatternDatabase Clean =
      synthesizeRuleLibraryParallel(Goals, Options, Build);

  ASSERT_TRUE(
      FaultInjector::get().configure("solver_throw@p=0.05,seed=11"));
  PatternDatabase Faulted =
      synthesizeRuleLibraryParallel(Goals, Options, Build);
  uint64_t Fired = FaultInjector::get().firedCount("solver_throw");
  FaultInjector::get().disarm();

  EXPECT_GT(Fired, 0u); // The sweep actually exercised the fault path.
  EXPECT_EQ(Clean.serialize(), Faulted.serialize());
}

//===----------------------------------------------------------------------===//
// End-to-end: SIGKILL mid-run, resume, byte-identical library.
//===----------------------------------------------------------------------===//

#ifdef SELGEN_SYNTH_TOOL

/// Runs selgen-synth with \p Args (plus an optional SELGEN_FAULTS
/// value), stdout/stderr to \p LogPath; returns the raw wait status.
int runTool(const std::vector<std::string> &Args, const std::string &Faults,
            const std::string &LogPath) {
  pid_t Child = ::fork();
  if (Child == 0) {
    if (!Faults.empty())
      ::setenv("SELGEN_FAULTS", Faults.c_str(), 1);
    else
      ::unsetenv("SELGEN_FAULTS");
    if (FILE *Log = ::freopen(LogPath.c_str(), "a", stdout))
      (void)Log;
    ::dup2(::fileno(stdout), ::fileno(stderr));
    std::vector<char *> Argv;
    std::string Tool = SELGEN_SYNTH_TOOL;
    Argv.push_back(Tool.data());
    std::vector<std::string> Mutable = Args;
    for (std::string &Arg : Mutable)
      Argv.push_back(Arg.data());
    Argv.push_back(nullptr);
    ::execv(Tool.c_str(), Argv.data());
    ::_exit(127);
  }
  int Status = 0;
  ::waitpid(Child, &Status, 0);
  return Status;
}

TEST(ResumeEndToEnd, KilledRunResumesByteIdentical) {
  std::string Dir = freshDir("endtoend");
  std::string Log = Dir + "/log.txt";
  const std::vector<std::string> Common = {
      "--goals", "mov_ri,neg_r,not_r,add_rr", "--width", "8",
      "--threads", "1",  "--budget", "30",    "--no-cache"};

  // Control: one uninterrupted run.
  std::vector<std::string> Control = Common;
  Control.insert(Control.end(), {"--output", Dir + "/control.dat"});
  int Status = runTool(Control, "", Log);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
      << readFileToString(Log).value_or("");

  // Crash run: SIGKILL lands right after the second finish record is
  // durable — the worst possible moment short of tearing a write.
  std::vector<std::string> Crash = Common;
  Crash.insert(Crash.end(), {"--run-dir", Dir + "/run", "--output",
                             Dir + "/resumed.dat"});
  Status = runTool(Crash, "kill_after_finish@n=2", Log);
  ASSERT_TRUE(WIFSIGNALED(Status) && WTERMSIG(Status) == SIGKILL)
      << "status " << Status << "\n"
      << readFileToString(Log).value_or("");
  EXPECT_FALSE(std::filesystem::exists(Dir + "/resumed.dat"));

  // Resume: the two journaled goals are served with zero re-synthesis,
  // the remaining two run, and the library comes out byte-identical.
  std::vector<std::string> Resume = Common;
  Resume.insert(Resume.end(),
                {"--resume", Dir + "/run", "--output", Dir + "/resumed.dat",
                 "--stats-json", Dir + "/stats.json"});
  Status = runTool(Resume, "", Log);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
      << readFileToString(Log).value_or("");

  std::optional<std::string> ControlBytes =
      readFileToString(Dir + "/control.dat");
  std::optional<std::string> ResumedBytes =
      readFileToString(Dir + "/resumed.dat");
  ASSERT_TRUE(ControlBytes.has_value());
  ASSERT_TRUE(ResumedBytes.has_value());
  EXPECT_EQ(*ControlBytes, *ResumedBytes);

  // The journal, not re-synthesis, supplied the finished goals.
  std::string Stats = readFileToString(Dir + "/stats.json").value_or("");
  EXPECT_NE(Stats.find("\"journal.hits\": 2"), std::string::npos) << Stats;
}

TEST(ResumeEndToEnd, MismatchedConfigIsRefused) {
  std::string Dir = freshDir("mismatch");
  std::string Log = Dir + "/log.txt";

  std::vector<std::string> First = {
      "--goals",   "mov_ri", "--width",  "8",
      "--threads", "1",      "--budget", "30",
      "--no-cache", "--run-dir", Dir + "/run",
      "--output",  Dir + "/first.dat"};
  int Status = runTool(First, "", Log);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0)
      << readFileToString(Log).value_or("");

  // Same directory, different goal set: must refuse, not mix.
  std::vector<std::string> Second = {
      "--goals",   "mov_ri,not_r", "--width",  "8",
      "--threads", "1",            "--budget", "30",
      "--no-cache", "--resume", Dir + "/run",
      "--output",  Dir + "/second.dat"};
  Status = runTool(Second, "", Log);
  ASSERT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 1)
      << readFileToString(Log).value_or("");
  EXPECT_FALSE(std::filesystem::exists(Dir + "/second.dat"));
}

#endif // SELGEN_SYNTH_TOOL
