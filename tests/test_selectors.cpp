//===- test_selectors.cpp - Instruction selector tests -------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Normalizer.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "refsel/ReferenceSelectors.h"
#include "support/Rng.h"
#include "x86/Emulator.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

/// Counts instructions with a given opcode.
unsigned countOpcode(const MachineFunction &MF, MOpcode Op) {
  unsigned Count = 0;
  for (const auto &Block : MF.blocks())
    for (const MachineInstr &Instr : Block->instructions())
      Count += Instr.Op == Op ? 1 : 0;
  return Count;
}

/// Runs both the IR interpreter and the machine function; true if all
/// return values and memory bytes agree.
bool agreesWithInterpreter(const Function &F, const MachineFunction &MF,
                           const std::vector<BitValue> &Args,
                           const MemoryState &Memory) {
  FunctionResult Reference = runFunction(F, Args, Memory);
  if (Reference.Undefined)
    return true;
  std::map<MReg, BitValue> Regs;
  const auto &ArgRegs = MF.entry()->ArgRegs;
  for (size_t I = 0; I < ArgRegs.size(); ++I)
    Regs[ArgRegs[I]] = Args[I];
  MachineRunResult Machine = runMachineFunction(MF, Regs, Memory);
  if (Machine.ReturnValues.size() != Reference.ReturnValues.size())
    return false;
  for (size_t I = 0; I < Reference.ReturnValues.size(); ++I)
    if (Machine.ReturnValues[I] != Reference.ReturnValues[I])
      return false;
  for (const auto &[Address, Value] : Reference.FinalMemory->bytes())
    if (Machine.Memory.peekByte(Address) != Value)
      return false;
  return true;
}

/// One-block function over [mem, a, b] returning [mem', result].
Function singleBlock(const std::function<NodeRef(Graph &)> &Build,
                     bool WithMemoryResult = false) {
  Function F("f", W);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  Graph &G = Entry->body();
  NodeRef Result = Build(G);
  NodeRef Memory = G.arg(0);
  if (WithMemoryResult) {
    // Build() returns the final memory token in that case.
    Entry->setReturn({Result});
  } else {
    Entry->setReturn({Memory, Result});
  }
  return F;
}

/// The goal library and the hand-curated rules, shared by the tests.
struct SelectorTest : public ::testing::Test {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase GnuRules = buildGnuLikeRules(W);
  HandwrittenSelector Handwritten;

  void differential(const Function &F, InstructionSelector &Selector,
                    int Runs = 60) {
    SelectionResult Selected = Selector.select(F);
    Rng Random(99);
    for (int Run = 0; Run < Runs; ++Run) {
      std::vector<BitValue> Args;
      for (unsigned I = 1; I < F.entry()->body().numArgs(); ++I)
        Args.push_back(Random.nextInterestingBitValue(W));
      MemoryState Memory;
      for (int B = 0; B < 12; ++B)
        Memory.storeByte(Random.nextBelow(256),
                         static_cast<uint8_t>(Random.nextBelow(256)));
      EXPECT_TRUE(agreesWithInterpreter(F, *Selected.MF, Args, Memory))
          << Selector.name() << " run " << Run;
    }
  }
};

} // namespace

TEST_F(SelectorTest, HandwrittenFoldsReadModifyWrite) {
  // store [a], load [a] + b  ==>  add (a), b.
  Function F = singleBlock(
      [](Graph &G) {
        Node *Load = G.createLoad(G.arg(0), G.arg(1));
        NodeRef Sum =
            G.createBinary(Opcode::Add, NodeRef(Load, 1), G.arg(2));
        return G.createStore(NodeRef(Load, 0), G.arg(1), Sum);
      },
      /*WithMemoryResult=*/true);

  SelectionResult R = Handwritten.select(F);
  // One add with a memory destination, no separate mov load/store.
  EXPECT_EQ(R.MF->numInstructions(), 1u);
  EXPECT_EQ(countOpcode(*R.MF, MOpcode::Add), 1u);
  differential(F, Handwritten);
}

TEST_F(SelectorTest, HandwrittenFoldsLea) {
  // a + b*4 + 3 => one lea.
  Function F = singleBlock([](Graph &G) {
    NodeRef Scaled = G.createBinary(Opcode::Shl, G.arg(2),
                                    G.createConst(BitValue(W, 2)));
    return G.createBinary(
        Opcode::Add, G.createBinary(Opcode::Add, G.arg(1), Scaled),
        G.createConst(BitValue(W, 3)));
  });
  SelectionResult R = Handwritten.select(F);
  EXPECT_EQ(countOpcode(*R.MF, MOpcode::Lea), 1u);
  EXPECT_EQ(R.MF->numInstructions(), 1u);
  differential(F, Handwritten);
}

TEST_F(SelectorTest, HandwrittenReusesSubFlags) {
  // z = a - b; if (a < b) ... : the cmp is folded into the sub.
  Function F("subcmp", W);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  BasicBlock *Then = F.createBlock("then", {Sort::memory(), Sort::value(W)});
  BasicBlock *Else = F.createBlock("else", {Sort::memory(), Sort::value(W)});
  {
    Graph &G = Entry->body();
    NodeRef Difference = G.createBinary(Opcode::Sub, G.arg(1), G.arg(2));
    NodeRef Less = G.createCmp(Relation::Ult, G.arg(1), G.arg(2));
    Entry->setBranch(Less, Then, {G.arg(0), Difference}, Else,
                     {G.arg(0), Difference});
  }
  for (BasicBlock *BB : {Then, Else}) {
    Graph &G = BB->body();
    BB->setReturn({G.arg(0), G.arg(1)});
  }

  SelectionResult R = Handwritten.select(F);
  EXPECT_EQ(countOpcode(*R.MF, MOpcode::Cmp), 0u) << "flag reuse missing";
  EXPECT_EQ(countOpcode(*R.MF, MOpcode::Sub), 1u);
  differential(F, Handwritten);
}

TEST_F(SelectorTest, HandwrittenFoldsLoadIntoArithmetic) {
  // b + load [a]  =>  add with memory source.
  Function F = singleBlock([](Graph &G) {
    Node *Load = G.createLoad(G.arg(0), G.arg(1));
    return G.createBinary(Opcode::Add, G.arg(2), NodeRef(Load, 1));
  });
  SelectionResult R = Handwritten.select(F);
  bool FoldedLoad = false;
  for (const MachineInstr &Instr : R.MF->entry()->instructions())
    FoldedLoad |= Instr.Op == MOpcode::Add && Instr.Src2.isMem();
  EXPECT_TRUE(FoldedLoad);
  differential(F, Handwritten);
}

TEST_F(SelectorTest, HandwrittenDoesNotFoldLoadPastStore) {
  // load [a]; store [b]; use the load: folding would reorder.
  Function F = singleBlock(
      [](Graph &G) {
        Node *Load = G.createLoad(G.arg(0), G.arg(1));
        NodeRef Stored = G.createStore(NodeRef(Load, 0), G.arg(2),
                                       G.createConst(BitValue(W, 9)));
        NodeRef Sum =
            G.createBinary(Opcode::Add, G.arg(2), NodeRef(Load, 1));
        G.setResults({Stored, Sum});
        (void)Sum;
        return Stored;
      },
      /*WithMemoryResult=*/true);
  // Rebuild with both results.
  Function F2("f2", W);
  BasicBlock *Entry = F2.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  Graph &G = Entry->body();
  Node *Load = G.createLoad(G.arg(0), G.arg(1));
  NodeRef Stored = G.createStore(NodeRef(Load, 0), G.arg(2),
                                 G.createConst(BitValue(W, 9)));
  NodeRef Sum = G.createBinary(Opcode::Add, G.arg(2), NodeRef(Load, 1));
  Entry->setReturn({Stored, Sum});

  SelectionResult R = Handwritten.select(F2);
  // The load must be a standalone mov, not folded into the add.
  for (const MachineInstr &Instr : R.MF->entry()->instructions()) {
    if (Instr.Op == MOpcode::Add) {
      EXPECT_FALSE(Instr.Src2.isMem());
    }
  }
  differential(F2, Handwritten);
}

TEST_F(SelectorTest, GeneratedCoversWithReferenceRules) {
  auto Gnu = makeReferenceSelector("gnu-like", GnuRules, Goals);
  Function F = singleBlock([](Graph &G) {
    NodeRef T = G.createBinary(Opcode::Xor, G.arg(1), G.arg(2));
    return G.createBinary(Opcode::And, T,
                          G.createUnary(Opcode::Not, G.arg(1)));
  });
  normalizeFunction(F);
  SelectionResult R = Gnu->select(F);
  EXPECT_GT(R.coverage(), 0.5);
  differential(F, *Gnu);
}

TEST_F(SelectorTest, GeneratedSelectsBlsrIdiom) {
  auto Gnu = makeReferenceSelector("gnu-like", GnuRules, Goals);
  Function F = singleBlock([](Graph &G) {
    return G.createBinary(
        Opcode::And, G.arg(1),
        G.createBinary(Opcode::Sub, G.arg(1),
                       G.createConst(BitValue(W, 1))));
  });
  normalizeFunction(F);
  SelectionResult R = Gnu->select(F);
  EXPECT_EQ(countOpcode(*R.MF, MOpcode::Blsr), 1u);
  differential(F, *Gnu);
}

TEST_F(SelectorTest, GeneratedMatchesJumpRules) {
  Function F("jump", W);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  BasicBlock *Then = F.createBlock("then", {Sort::memory()});
  BasicBlock *Else = F.createBlock("else", {Sort::memory()});
  {
    Graph &G = Entry->body();
    NodeRef Less = G.createCmp(Relation::Slt, G.arg(1), G.arg(2));
    Entry->setBranch(Less, Then, {G.arg(0)}, Else, {G.arg(0)});
  }
  {
    Graph &G = Then->body();
    Then->setReturn({G.arg(0), G.createConst(BitValue(W, 1))});
  }
  {
    Graph &G = Else->body();
    Else->setReturn({G.arg(0), G.createConst(BitValue(W, 0))});
  }

  auto Gnu = makeReferenceSelector("gnu-like", GnuRules, Goals);
  SelectionResult R = Gnu->select(F);
  EXPECT_EQ(R.MF->entry()->terminator().TermKind, MTerminator::Kind::Jcc);
  EXPECT_EQ(R.MF->entry()->terminator().CC, CondCode::L);
  differential(F, *Gnu);
}

TEST_F(SelectorTest, GeneratedFallsBackGracefully) {
  // An empty rule library: everything goes through the fallback and
  // the result is still correct.
  PatternDatabase Empty;
  GeneratedSelector Bare(Empty, Goals);
  EXPECT_EQ(Bare.numRules(), 0u);

  Function F = singleBlock([](Graph &G) {
    NodeRef Cmp = G.createCmp(Relation::Ugt, G.arg(1), G.arg(2));
    NodeRef Mux = G.createMux(Cmp, G.arg(1), G.arg(2)); // unsigned max
    Node *Load = G.createLoad(G.arg(0), Mux);
    return G.createBinary(Opcode::Sub, NodeRef(Load, 1), G.arg(2));
  });
  SelectionResult R = Bare.select(F);
  EXPECT_EQ(R.CoveredOperations, 0u);
  EXPECT_GT(R.FallbackOperations, 0u);
  EXPECT_DOUBLE_EQ(R.coverage(), 0.0);
  differential(F, Bare);
}

TEST_F(SelectorTest, CoverageAccounting) {
  auto Gnu = makeReferenceSelector("gnu-like", GnuRules, Goals);
  Function F = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::Add, G.arg(1), G.arg(2));
  });
  SelectionResult R = Gnu->select(F);
  EXPECT_EQ(R.TotalOperations, 1u);
  EXPECT_EQ(R.CoveredOperations, 1u);
  EXPECT_DOUBLE_EQ(R.coverage(), 1.0);
}

TEST_F(SelectorTest, ReferenceSelectorsDiffer) {
  PatternDatabase Clang = buildClangLikeRules(W);
  // Clang-like has andn; Gnu-like does not.
  Function F = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::And, G.createUnary(Opcode::Not, G.arg(1)),
                          G.arg(2));
  });
  normalizeFunction(F);
  auto GnuSel = makeReferenceSelector("gnu-like", GnuRules, Goals);
  auto ClangSel = makeReferenceSelector("clang-like", Clang, Goals);
  SelectionResult RG = GnuSel->select(F);
  SelectionResult RC = ClangSel->select(F);
  EXPECT_EQ(countOpcode(*RC.MF, MOpcode::Andn), 1u);
  EXPECT_EQ(countOpcode(*RG.MF, MOpcode::Andn), 0u);
  EXPECT_LT(RC.MF->numInstructions(), RG.MF->numInstructions());
  differential(F, *GnuSel);
  differential(F, *ClangSel);
}

TEST_F(SelectorTest, MatchedShiftPreconditionBlocksRule) {
  // shl by 12 at width 8 is undefined IR; the shl_ri rule must not
  // fire, but the fallback still emits something deterministic.
  auto Gnu = makeReferenceSelector("gnu-like", GnuRules, Goals);
  Function F = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::Shl, G.arg(1),
                          G.createConst(BitValue(W, 12)));
  });
  SelectionResult R = Gnu->select(F);
  (void)R; // Selection must simply not crash; behaviour is undefined IR.
}

TEST_F(SelectorTest, RandomProgramsDifferential) {
  PatternDatabase Clang = buildClangLikeRules(W);
  auto GnuSel = makeReferenceSelector("gnu-like", GnuRules, Goals);
  auto ClangSel = makeReferenceSelector("clang-like", Clang, Goals);

  Rng Random(31415);
  for (int Trial = 0; Trial < 25; ++Trial) {
    Function F = singleBlock([&](Graph &G) {
      std::vector<NodeRef> Pool = {G.arg(1), G.arg(2)};
      auto pick = [&] { return Pool[Random.nextBelow(Pool.size())]; };
      for (int I = 0; I < 8; ++I) {
        switch (Random.nextBelow(7)) {
        case 0:
          Pool.push_back(G.createBinary(Opcode::Add, pick(), pick()));
          break;
        case 1:
          Pool.push_back(G.createBinary(Opcode::Sub, pick(), pick()));
          break;
        case 2:
          Pool.push_back(G.createBinary(Opcode::And, pick(), pick()));
          break;
        case 3:
          Pool.push_back(G.createBinary(Opcode::Xor, pick(), pick()));
          break;
        case 4:
          Pool.push_back(G.createUnary(Opcode::Not, pick()));
          break;
        case 5:
          Pool.push_back(
              G.createConst(Random.nextInterestingBitValue(W)));
          break;
        case 6: {
          NodeRef Cmp = G.createCmp(
              allRelations()[Random.nextBelow(allRelations().size())],
              pick(), pick());
          Pool.push_back(G.createMux(Cmp, pick(), pick()));
          break;
        }
        }
      }
      return Pool.back();
    });
    normalizeFunction(F);
    differential(F, Handwritten, 15);
    differential(F, *GnuSel, 15);
    differential(F, *ClangSel, 15);
  }
}
