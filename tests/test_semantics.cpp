//===- test_semantics.cpp - SMT semantics vs interpreter tests -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
//
// The central consistency property of the whole system: the symbolic
// semantics (semantics/IrSemantics) and the concrete semantics
// (ir/Interpreter) must agree. The synthesizer trusts the former, the
// evaluation pipeline the latter.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/Printer.h"
#include "semantics/IrSemantics.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

class SemanticsTest : public ::testing::Test {
protected:
  SmtContext Smt;

  /// Evaluates a bit-vector expression that must simplify to a
  /// constant.
  BitValue constEval(const z3::expr &E) {
    z3::expr Simplified = E.simplify();
    SmtSolver Solver(Smt); // Model-based fallback for stubborn terms.
    EXPECT_EQ(Solver.check(), SmtResult::Sat);
    return Smt.evalBits(Solver.model(), Simplified);
  }

  bool constEvalBool(const z3::expr &E) {
    SmtSolver Solver(Smt);
    EXPECT_EQ(Solver.check(), SmtResult::Sat);
    return Smt.evalBool(Solver.model(), E.simplify());
  }
};

} // namespace

TEST_F(SemanticsTest, RelationCodesRoundTrip) {
  for (Relation Rel : allRelations())
    EXPECT_EQ(relationFromCode(relationCode(Rel)), Rel);
}

TEST_F(SemanticsTest, RelationExprMatchesInterpreter) {
  Rng Random(11);
  for (int Trial = 0; Trial < 50; ++Trial) {
    BitValue A = Random.nextInterestingBitValue(8);
    BitValue B = Random.nextInterestingBitValue(8);
    for (Relation Rel : allRelations()) {
      z3::expr E = relationExpr(Rel, Smt.literal(A), Smt.literal(B));
      EXPECT_EQ(constEvalBool(E), evaluateRelation(Rel, A, B))
          << relationName(Rel) << "(" << A.toUnsignedString() << ", "
          << B.toUnsignedString() << ")";
    }
  }
}

TEST_F(SemanticsTest, RelationCodeCascade) {
  BitValue A(8, 5), B(8, 250);
  for (Relation Rel : allRelations()) {
    z3::expr Code = Smt.ctx().bv_val(relationCode(Rel), 4);
    z3::expr E = relationExprFromCode(Smt, Code, Smt.literal(A),
                                      Smt.literal(B));
    EXPECT_EQ(constEvalBool(E), evaluateRelation(Rel, A, B));
  }
}

TEST_F(SemanticsTest, ShiftPreconditions) {
  unsigned Width = 8;
  IrOpSpec Shl(Opcode::Shl, Width);
  MemoryModel NoMemory(Smt, {});
  SemanticsContext Context{Smt, Width, &NoMemory, {}};
  z3::expr X = Smt.literal(BitValue(8, 1));

  z3::expr InRange = Shl.precondition(
      Context, {X, Smt.literal(BitValue(8, 7))}, {});
  z3::expr OutOfRange = Shl.precondition(
      Context, {X, Smt.literal(BitValue(8, 8))}, {});
  EXPECT_TRUE(constEvalBool(InRange));
  EXPECT_FALSE(constEvalBool(OutOfRange));
}

TEST_F(SemanticsTest, GraphSemanticsMatchesInterpreterOnRandomGraphs) {
  unsigned Width = 8;
  Rng Random(4242);

  for (int Trial = 0; Trial < 60; ++Trial) {
    // Random straight-line graph over two arguments.
    Graph G(Width, {Sort::value(Width), Sort::value(Width)});
    std::vector<NodeRef> Pool = {G.arg(0), G.arg(1)};
    auto pick = [&] { return Pool[Random.nextBelow(Pool.size())]; };
    unsigned NumOps = 2 + Random.nextBelow(8);
    for (unsigned I = 0; I < NumOps; ++I) {
      switch (Random.nextBelow(9)) {
      case 0:
        Pool.push_back(G.createBinary(Opcode::Add, pick(), pick()));
        break;
      case 1:
        Pool.push_back(G.createBinary(Opcode::Sub, pick(), pick()));
        break;
      case 2:
        Pool.push_back(G.createBinary(Opcode::Mul, pick(), pick()));
        break;
      case 3:
        Pool.push_back(G.createBinary(Opcode::And, pick(), pick()));
        break;
      case 4:
        Pool.push_back(G.createBinary(Opcode::Xor, pick(), pick()));
        break;
      case 5:
        Pool.push_back(G.createUnary(Opcode::Not, pick()));
        break;
      case 6:
        Pool.push_back(G.createUnary(Opcode::Minus, pick()));
        break;
      case 7:
        Pool.push_back(G.createConst(Random.nextInterestingBitValue(Width)));
        break;
      case 8: {
        NodeRef Cmp = G.createCmp(
            allRelations()[Random.nextBelow(allRelations().size())], pick(),
            pick());
        Pool.push_back(G.createMux(Cmp, pick(), pick()));
        break;
      }
      }
    }
    G.setResults({Pool.back()});

    for (int Input = 0; Input < 5; ++Input) {
      BitValue A = Random.nextBitValue(Width);
      BitValue B = Random.nextBitValue(Width);

      EvalResult Concrete = evaluateGraph(
          G, {EvalValue::fromBits(A), EvalValue::fromBits(B)});
      ASSERT_FALSE(Concrete.Undefined);

      MemoryModel NoMemory(Smt, {});
      SemanticsContext Context{Smt, Width, &NoMemory, {}};
      GraphSemantics Symbolic = buildGraphSemantics(
          Context, G, {Smt.literal(A), Smt.literal(B)});
      EXPECT_EQ(constEval(Symbolic.Results[0]), Concrete.Results[0].Bits)
          << printGraphExpression(G) << " on " << A.toHexString() << ", "
          << B.toHexString();
      EXPECT_TRUE(constEvalBool(Symbolic.Precondition));
    }
  }
}

TEST_F(SemanticsTest, GraphSemanticsMemoryAgreesWithInterpreter) {
  unsigned Width = 8;
  // Pattern: store a2 to [a1], load it back, add 1.
  Graph G(Width, {Sort::memory(), Sort::value(Width), Sort::value(Width)});
  NodeRef Stored = G.createStore(G.arg(0), G.arg(1), G.arg(2));
  Node *Load = G.createLoad(Stored, G.arg(1));
  NodeRef Sum = G.createBinary(Opcode::Add, NodeRef(Load, 1),
                               G.createConst(BitValue(Width, 1)));
  G.setResults({NodeRef(Load, 0), Sum});

  // Symbolic side: one valid pointer (the address argument).
  z3::expr Pointer = Smt.literal(BitValue(Width, 0x40));
  MemoryModel Model(Smt, {Pointer});
  SemanticsContext Context{Smt, Width, &Model, {}};
  z3::expr MemoryIn = Smt.literal(BitValue(Model.mvalueWidth(), 0));
  z3::expr ValueIn = Smt.literal(BitValue(Width, 0x21));
  GraphSemantics Symbolic =
      buildGraphSemantics(Context, G, {MemoryIn, Pointer, ValueIn});

  EXPECT_EQ(constEval(Symbolic.Results[1]).zextValue(), 0x22u);
  // Memory result: contents byte 0x21, access flag set.
  BitValue MemOut = constEval(Symbolic.Results[0]);
  EXPECT_EQ(MemOut.extract(7, 0).zextValue(), 0x21u);
  EXPECT_TRUE(MemOut.bit(8));
  // Every range condition holds (the pattern only touches the valid
  // pointer).
  for (const z3::expr &Range : Symbolic.RangeConditions)
    EXPECT_TRUE(constEvalBool(Range));

  // Concrete side agrees.
  auto Memory = std::make_shared<MemoryState>();
  EvalResult Concrete = evaluateGraph(
      G, {EvalValue::fromMemory(Memory),
          EvalValue::fromBits(BitValue(Width, 0x40)),
          EvalValue::fromBits(BitValue(Width, 0x21))});
  EXPECT_EQ(Concrete.Results[1].Bits.zextValue(), 0x22u);
  EXPECT_EQ(Concrete.Results[0].Mem->peekByte(0x40), 0x21u);
}

TEST_F(SemanticsTest, RangeConditionViolatedForForeignPointer) {
  unsigned Width = 8;
  Graph G(Width, {Sort::memory(), Sort::value(Width)});
  Node *Load = G.createLoad(
      G.arg(0), G.createBinary(Opcode::Add, G.arg(1),
                               G.createConst(BitValue(Width, 5))));
  G.setResults({NodeRef(Load, 0), NodeRef(Load, 1)});

  // Valid pointers: only a1 itself; the pattern loads a1+5.
  z3::expr Pointer = Smt.bvConst("ptr", Width);
  MemoryModel Model(Smt, {Pointer});
  SemanticsContext Context{Smt, Width, &Model, {}};
  z3::expr MemoryIn = Smt.bvConst("mem", Model.mvalueWidth());
  GraphSemantics Symbolic =
      buildGraphSemantics(Context, G, {MemoryIn, Pointer});

  ASSERT_FALSE(Symbolic.RangeConditions.empty());
  SmtSolver Solver(Smt);
  Solver.add(Smt.mkAnd(Symbolic.RangeConditions));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}

TEST_F(SemanticsTest, ConstAndCmpInternalsAreTyped) {
  IrOpSpec Const(Opcode::Const, 16);
  ASSERT_EQ(Const.internalSorts().size(), 1u);
  EXPECT_EQ(Const.internalSorts()[0], Sort::value(16));

  IrOpSpec Cmp(Opcode::Cmp, 16);
  ASSERT_EQ(Cmp.internalSorts().size(), 1u);
  EXPECT_EQ(Cmp.internalSorts()[0], Sort::value(4));
  EXPECT_TRUE(Cmp.resultSorts()[0].isBool());
}

TEST_F(SemanticsTest, AccessesMemoryFlag) {
  EXPECT_TRUE(IrOpSpec(Opcode::Load, 8).accessesMemory());
  EXPECT_TRUE(IrOpSpec(Opcode::Store, 8).accessesMemory());
  EXPECT_FALSE(IrOpSpec(Opcode::Add, 8).accessesMemory());
}
