//===- test_serve.cpp - Compile-server tests -----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The compile server's contract is the same as the automaton
// selector's, one level up: machine code streamed back by a resident
// multi-threaded selgen-served must be byte-identical to what a
// single-shot `selgen-compile --selector auto` run produces. These
// tests cover the batch payload codec (total decoders), the
// multi-threaded SelectionService against sequential selection, the
// frame loop over a socketpair, and the real spawned server binary
// including its SIGTERM shutdown path.
//
//===----------------------------------------------------------------------===//

#include "eval/Workloads.h"
#include "refsel/ReferenceSelectors.h"
#include "serve/ImageReloader.h"
#include "serve/SelectionServer.h"
#include "support/FaultInjection.h"
#include "support/Wire.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

std::vector<std::string> allWorkloadNames() {
  std::vector<std::string> Names;
  for (const WorkloadProfile &Profile : cint2000Profiles())
    Names.push_back(Profile.Name);
  return Names;
}

/// The server-side fixture: one prepared library, one binary image in
/// aligned storage, one validated view over it.
struct ServeTest : public ::testing::Test {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase Rules = buildGnuLikeRules(W);
  PreparedLibrary Library{Rules, Goals};
  std::vector<uint64_t> ImageWords;
  size_t ImageSize = 0;
  BinaryAutomatonView View;

  void SetUp() override {
    std::string Image = buildMatcherAutomaton(Library).serializeBinary();
    ImageWords.resize(Image.size() / 8 + 1);
    std::memcpy(ImageWords.data(), Image.data(), Image.size());
    ImageSize = Image.size();
    std::string Error;
    std::optional<BinaryAutomatonView> Validated =
        BinaryAutomatonView::fromMemory(ImageWords.data(), ImageSize,
                                        &Error);
    ASSERT_TRUE(Validated) << Error;
    View = *Validated;
  }

  /// What single-shot sequential selection produces for \p Name.
  std::string sequentialAsm(const std::string &Name) {
    for (const WorkloadProfile &Profile : cint2000Profiles())
      if (Profile.Name == Name) {
        AutomatonSelector Selector(Rules, Goals);
        return printMachineFunction(
            *Selector.select(buildWorkload(Profile, W)).MF);
      }
    ADD_FAILURE() << "unknown workload " << Name;
    return "";
  }
};

} // namespace

TEST(ServeProtocol, BatchRequestRoundTrips) {
  BatchRequest Request;
  Request.Id = 0xDEADBEEFCAFEull;
  Request.Width = 8;
  Request.Workloads = {"164.gzip", "300.twolf", "164.gzip"};
  std::string Error;
  std::optional<BatchRequest> Decoded =
      decodeBatchRequest(encodeBatchRequest(Request), &Error);
  ASSERT_TRUE(Decoded) << Error;
  EXPECT_EQ(Decoded->Id, Request.Id);
  EXPECT_EQ(Decoded->Width, Request.Width);
  EXPECT_EQ(Decoded->Workloads, Request.Workloads);

  BatchRequest Empty;
  Empty.Width = 16;
  ASSERT_TRUE(decodeBatchRequest(encodeBatchRequest(Empty), &Error));
}

TEST(ServeProtocol, BatchReplyRoundTrips) {
  BatchReply Reply;
  Reply.Id = 42;
  Reply.WallUs = 1234.5;
  BatchReply::Result R;
  R.Workload = "164.gzip";
  R.TotalOperations = 100;
  R.CoveredOperations = 90;
  R.FallbackOperations = 10;
  R.RulesTried = 1234;
  R.NodesVisited = 5678;
  R.SelectUs = 17.25;
  // Asm is a raw byte-counted block: newlines, spaces, and even the
  // codec's own keywords inside it must survive untouched.
  R.Asm = "f.automaton:\n  end\nresult fake 1 2 3\n";
  Reply.Results.push_back(R);
  Reply.Results.push_back(R);
  Reply.Results[1].Workload = "300.twolf";
  Reply.Results[1].Asm = ""; // Empty block is legal too.

  std::string Error;
  std::optional<BatchReply> Decoded =
      decodeBatchReply(encodeBatchReply(Reply), &Error);
  ASSERT_TRUE(Decoded) << Error;
  EXPECT_EQ(Decoded->Id, Reply.Id);
  EXPECT_DOUBLE_EQ(Decoded->WallUs, Reply.WallUs);
  ASSERT_EQ(Decoded->Results.size(), 2u);
  EXPECT_EQ(Decoded->Results[0].Asm, R.Asm);
  EXPECT_EQ(Decoded->Results[0].RulesTried, R.RulesTried);
  EXPECT_EQ(Decoded->Results[0].NodesVisited, R.NodesVisited);
  EXPECT_DOUBLE_EQ(Decoded->Results[0].SelectUs, R.SelectUs);
  EXPECT_EQ(Decoded->Results[1].Workload, "300.twolf");
  EXPECT_EQ(Decoded->Results[1].Asm, "");
}

TEST(ServeProtocol, DecodersAreTotal) {
  std::string Error;
  EXPECT_FALSE(decodeBatchRequest("", &Error));
  EXPECT_FALSE(decodeBatchRequest("garbage\n", &Error));
  EXPECT_FALSE(decodeBatchRequest("selgen-serve-batch-v1\n", &Error));
  EXPECT_FALSE(decodeBatchRequest(
      "selgen-serve-batch-v1\nid 1\nwidth 8\n", &Error))
      << "missing end trailer must be rejected";
  EXPECT_FALSE(decodeBatchRequest(
      "selgen-serve-batch-v1\nid 1\nwidth 0\nend\n", &Error));
  EXPECT_FALSE(decodeBatchRequest(
      "selgen-serve-batch-v1\nid x\nwidth 8\nend\n", &Error));
  EXPECT_FALSE(decodeBatchRequest(
      "selgen-serve-batch-v1\nid 1\nwidth 8\nend\nextra\n", &Error));

  BatchReply Reply;
  BatchReply::Result R;
  R.Workload = "164.gzip";
  R.Asm = "some asm\n";
  Reply.Results.push_back(R);
  std::string Good = encodeBatchReply(Reply);
  EXPECT_TRUE(decodeBatchReply(Good, &Error)) << Error;
  // A lying asm byte count cannot read out of the payload.
  std::string Lying = Good;
  size_t Pos = Lying.find(" 9\n"); // R.Asm.size() == 9.
  ASSERT_NE(Pos, std::string::npos);
  Lying.replace(Pos, 3, " 9999999\n");
  EXPECT_FALSE(decodeBatchReply(Lying, &Error));
  EXPECT_FALSE(decodeBatchReply(Good.substr(0, Good.size() / 2), &Error));
  EXPECT_FALSE(decodeBatchReply("", &Error));
}

TEST_F(ServeTest, ConcurrentBatchesMatchSequentialSelection) {
  // The acceptance bar: a multi-threaded service compiling a shuffled,
  // duplicated batch returns, per entry, bytes identical to one-shot
  // sequential selection.
  SelectionService Service(Library, View, W, 4);
  BatchRequest Request;
  Request.Id = 7;
  Request.Width = W;
  for (int Round = 0; Round < 3; ++Round)
    for (const std::string &Name : allWorkloadNames())
      Request.Workloads.push_back(Name);

  std::string Error;
  std::optional<BatchReply> Reply = Service.process(Request, &Error);
  ASSERT_TRUE(Reply) << Error;
  EXPECT_EQ(Reply->Id, Request.Id);
  ASSERT_EQ(Reply->Results.size(), Request.Workloads.size());
  for (size_t I = 0; I < Reply->Results.size(); ++I) {
    const BatchReply::Result &R = Reply->Results[I];
    EXPECT_EQ(R.Workload, Request.Workloads[I]);
    EXPECT_EQ(R.Asm, sequentialAsm(R.Workload)) << R.Workload;
    EXPECT_GT(R.TotalOperations, 0u);
    EXPECT_GT(R.RulesTried, 0u);
    EXPECT_GT(R.NodesVisited, 0u);
  }
  EXPECT_EQ(Service.telemetry().Batches, 1u);
  EXPECT_EQ(Service.telemetry().Functions, Request.Workloads.size());

  // Identical results again from a heap-automaton service: the mapped
  // image is an encoding detail, not a behavior change.
  MatcherAutomaton Heap = buildMatcherAutomaton(Library);
  SelectionService HeapService(Library, Heap, W, 2);
  std::optional<BatchReply> HeapReply = HeapService.process(Request, &Error);
  ASSERT_TRUE(HeapReply) << Error;
  for (size_t I = 0; I < Reply->Results.size(); ++I)
    EXPECT_EQ(HeapReply->Results[I].Asm, Reply->Results[I].Asm);
}

TEST_F(ServeTest, RejectsWidthMismatchAndUnknownWorkloads) {
  SelectionService Service(Library, View, W, 2);
  BatchRequest Request;
  Request.Width = W + 8;
  Request.Workloads = {"164.gzip"};
  std::string Error;
  EXPECT_FALSE(Service.process(Request, &Error));
  EXPECT_NE(Error.find("width"), std::string::npos);

  Request.Width = W;
  Request.Workloads = {"164.gzip", "999.bogus"};
  EXPECT_FALSE(Service.process(Request, &Error));
  EXPECT_NE(Error.find("999.bogus"), std::string::npos);
  EXPECT_EQ(Service.telemetry().Batches, 0u)
      << "failed batches must not count as served";
}

TEST_F(ServeTest, ServerLoopOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  signal(SIGPIPE, SIG_IGN);

  SelectionService Service(Library, View, W, 2);
  SelectionServer Server(Service, Fds[0], Fds[0]);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  // A malformed payload draws an Error frame, and the loop survives.
  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Request, "garbage"));
  wire::Frame Frame;
  ASSERT_EQ(wire::readFrame(Fds[1], Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Error);

  // An unknown workload draws an Error frame too.
  BatchRequest Bogus;
  Bogus.Width = W;
  Bogus.Workloads = {"999.bogus"};
  ASSERT_TRUE(
      wire::writeFrame(Fds[1], wire::Request, encodeBatchRequest(Bogus)));
  ASSERT_EQ(wire::readFrame(Fds[1], Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Error);

  // A real batch round-trips with byte-identical machine code.
  BatchRequest Request;
  Request.Id = 99;
  Request.Width = W;
  Request.Workloads = {"164.gzip", "181.mcf"};
  ASSERT_TRUE(
      wire::writeFrame(Fds[1], wire::Request, encodeBatchRequest(Request)));
  ASSERT_EQ(wire::readFrame(Fds[1], Frame), wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Response);
  std::string Error;
  std::optional<BatchReply> Reply = decodeBatchReply(Frame.Payload, &Error);
  ASSERT_TRUE(Reply) << Error;
  EXPECT_EQ(Reply->Id, 99u);
  ASSERT_EQ(Reply->Results.size(), 2u);
  EXPECT_EQ(Reply->Results[0].Asm, sequentialAsm("164.gzip"));
  EXPECT_EQ(Reply->Results[1].Asm, sequentialAsm("181.mcf"));

  // Shutdown ends the loop with exit code 0.
  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Shutdown, ""));
  ServerThread.join();
  EXPECT_EQ(Server.batchesServed(), 1u);
  close(Fds[0]);
  close(Fds[1]);
}

TEST_F(ServeTest, ServerLoopCondemnsGarbageStream) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  SelectionService Service(Library, View, W, 1);
  SelectionServer Server(Service, Fds[0], Fds[0]);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 2); });
  std::string Garbage = "this is not a frame at all............";
  ASSERT_TRUE(wire::writeAll(Fds[1], Garbage));
  ServerThread.join();
  close(Fds[0]);
  close(Fds[1]);
}

TEST_F(ServeTest, RequestStopEndsIdleLoop) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  SelectionService Service(Library, View, W, 1);
  SelectionServer Server(Service, Fds[0], Fds[0]);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });
  Server.requestStop();
  ServerThread.join(); // Must return within one poll tick, no traffic.
  close(Fds[0]);
  close(Fds[1]);
}

namespace {

/// Spawns the real selgen-served with stdin/stdout pipes. The test is
/// the parent side of the exact deployment topology.
struct SpawnedServer {
  pid_t Pid = -1;
  int ToChild = -1;   ///< Write requests here.
  int FromChild = -1; ///< Read replies here.

  void start(const std::vector<std::string> &Args) {
    int In[2], Out[2];
    ASSERT_EQ(pipe(In), 0);
    ASSERT_EQ(pipe(Out), 0);
    Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      dup2(In[0], STDIN_FILENO);
      dup2(Out[1], STDOUT_FILENO);
      close(In[0]);
      close(In[1]);
      close(Out[0]);
      close(Out[1]);
      std::vector<char *> Argv;
      for (const std::string &A : Args)
        Argv.push_back(const_cast<char *>(A.c_str()));
      Argv.push_back(nullptr);
      execv(Argv[0], Argv.data());
      _exit(127);
    }
    close(In[0]);
    close(Out[1]);
    ToChild = In[1];
    FromChild = Out[0];
  }

  int wait() {
    int Status = 0;
    EXPECT_EQ(waitpid(Pid, &Status, 0), Pid);
    return Status;
  }

  ~SpawnedServer() {
    if (ToChild >= 0)
      close(ToChild);
    if (FromChild >= 0)
      close(FromChild);
  }
};

} // namespace

TEST_F(ServeTest, SpawnedServerMatchesSequentialAndExitsCleanly) {
  // End to end against the real binary: write the library and a binary
  // automaton, start selgen-served on pipes, compile a batch, then
  // shut it down with a Shutdown frame.
  std::string LibraryPath = ::testing::TempDir() + "serve_rules.dat";
  std::string ImagePath = ::testing::TempDir() + "serve_rules.matb";
  Rules.saveToFile(LibraryPath);
  ASSERT_TRUE(
      buildMatcherAutomaton(Library).writeBinaryFile(ImagePath));

  SpawnedServer Server;
  Server.start({SELGEN_SERVED_TOOL, "--library", LibraryPath, "--automaton",
                ImagePath, "--threads", "4"});
  ASSERT_GE(Server.Pid, 0);

  BatchRequest Request;
  Request.Id = 1;
  Request.Width = W;
  Request.Workloads = allWorkloadNames();
  ASSERT_TRUE(wire::writeFrame(Server.ToChild, wire::Request,
                               encodeBatchRequest(Request)));
  wire::Frame Frame;
  ASSERT_EQ(wire::readFrame(Server.FromChild, Frame, 120000),
            wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Response);
  std::string Error;
  std::optional<BatchReply> Reply = decodeBatchReply(Frame.Payload, &Error);
  ASSERT_TRUE(Reply) << Error;
  ASSERT_EQ(Reply->Results.size(), Request.Workloads.size());
  for (const BatchReply::Result &R : Reply->Results)
    EXPECT_EQ(R.Asm, sequentialAsm(R.Workload)) << R.Workload;

  ASSERT_TRUE(wire::writeFrame(Server.ToChild, wire::Shutdown, ""));
  int Status = Server.wait();
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}

TEST_F(ServeTest, SpawnedServerShutsDownCleanlyOnSigterm) {
  std::string LibraryPath = ::testing::TempDir() + "serve_rules_term.dat";
  Rules.saveToFile(LibraryPath);

  // No automaton file: the server compiles one in memory at startup.
  SpawnedServer Server;
  Server.start({SELGEN_SERVED_TOOL, "--library", LibraryPath, "--threads",
                "2"});
  ASSERT_GE(Server.Pid, 0);

  // One request proves it is up and serving before the signal.
  BatchRequest Request;
  Request.Id = 2;
  Request.Width = W;
  Request.Workloads = {"164.gzip"};
  ASSERT_TRUE(wire::writeFrame(Server.ToChild, wire::Request,
                               encodeBatchRequest(Request)));
  wire::Frame Frame;
  ASSERT_EQ(wire::readFrame(Server.FromChild, Frame, 120000),
            wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Response);

  ASSERT_EQ(kill(Server.Pid, SIGTERM), 0);
  int Status = Server.wait();
  EXPECT_TRUE(WIFEXITED(Status)) << "SIGTERM must exit, not die on signal";
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}

//===----------------------------------------------------------------------===//
// Typed errors, health probes, and the hardening layer
//===----------------------------------------------------------------------===//

namespace {

/// Disarms fault injection on scope exit so one test's chaos cannot
/// leak into the next.
struct FaultGuard {
  ~FaultGuard() { FaultInjector::get().disarm(); }
};

/// Reads one frame with a test-sized deadline so a server bug hangs an
/// assertion, not the suite.
wire::ReadStatus readOne(int Fd, wire::Frame &Out, int64_t DeadlineMs = 30000) {
  return wire::readFrame(Fd, Out, DeadlineMs);
}

} // namespace

TEST(ServeProtocol, ServeErrorRoundTripsEveryCode) {
  for (ServeErrorCode Code :
       {ServeErrorCode::BadRequest, ServeErrorCode::Unsupported,
        ServeErrorCode::Timeout, ServeErrorCode::Overloaded,
        ServeErrorCode::ShuttingDown, ServeErrorCode::Internal}) {
    ServeError Error;
    Error.Code = Code;
    Error.RetryAfterMs = Code == ServeErrorCode::Overloaded ? 250 : 0;
    // Messages travel as byte-counted raw blocks: embedded newlines and
    // codec keywords must survive.
    Error.Message = "queue full\nend\nretry-after-ms 9\n";
    ServeError Decoded = decodeServeError(encodeServeError(Error));
    EXPECT_EQ(Decoded.Code, Code) << serveErrorCodeName(Code);
    EXPECT_EQ(Decoded.RetryAfterMs, Error.RetryAfterMs);
    EXPECT_EQ(Decoded.Message, Error.Message);
  }

  // Bare unstructured messages (the PR 6 wire style) decode as
  // Internal with the text preserved — never a decode failure.
  ServeError Legacy = decodeServeError("width mismatch: request 16");
  EXPECT_EQ(Legacy.Code, ServeErrorCode::Internal);
  EXPECT_EQ(Legacy.Message, "width mismatch: request 16");
  EXPECT_EQ(Legacy.RetryAfterMs, 0u);
}

TEST(ServeProtocol, HealthCodecRoundTripsAndStaysTotal) {
  EXPECT_TRUE(isHealthRequest(encodeHealthRequest()));
  EXPECT_FALSE(isHealthRequest(""));
  EXPECT_FALSE(isHealthRequest("selgen-serve-batch-v1\nend\n"));

  HealthReply Reply;
  Reply.UptimeMs = 123456;
  Reply.Width = 8;
  Reply.ImageFingerprint = "deadbeef01";
  Reply.ImageGeneration = 3;
  Reply.QueueDepth = 17;
  Reply.Batches = 99;
  Reply.Shed = 5;
  Reply.Timeouts = 2;
  Reply.Reloads = 3;
  Reply.ReloadFailures = 1;
  std::string Error;
  std::optional<HealthReply> Decoded =
      decodeHealthReply(encodeHealthReply(Reply), &Error);
  ASSERT_TRUE(Decoded) << Error;
  EXPECT_EQ(Decoded->UptimeMs, Reply.UptimeMs);
  EXPECT_EQ(Decoded->Width, Reply.Width);
  EXPECT_EQ(Decoded->ImageFingerprint, Reply.ImageFingerprint);
  EXPECT_EQ(Decoded->ImageGeneration, Reply.ImageGeneration);
  EXPECT_EQ(Decoded->QueueDepth, Reply.QueueDepth);
  EXPECT_EQ(Decoded->Shed, Reply.Shed);
  EXPECT_EQ(Decoded->Reloads, Reply.Reloads);
  EXPECT_EQ(Decoded->ReloadFailures, Reply.ReloadFailures);

  EXPECT_FALSE(decodeHealthReply("", &Error));
  EXPECT_FALSE(decodeHealthReply("garbage\n", &Error));
  EXPECT_FALSE(decodeHealthReply(encodeHealthRequest(), &Error));
  std::string Torn = encodeHealthReply(Reply);
  EXPECT_FALSE(decodeHealthReply(Torn.substr(0, Torn.size() / 2), &Error));
}

TEST_F(ServeTest, HealthProbeAnsweredInline) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  signal(SIGPIPE, SIG_IGN);
  SelectionService Service(Library, View, W, 2);
  SelectionServer Server(Service, Fds[0], Fds[0]);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  ASSERT_TRUE(
      wire::writeFrame(Fds[1], wire::Request, encodeHealthRequest()));
  wire::Frame Frame;
  ASSERT_EQ(readOne(Fds[1], Frame), wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Response);
  std::string Error;
  std::optional<HealthReply> Health = decodeHealthReply(Frame.Payload, &Error);
  ASSERT_TRUE(Health) << Error;
  EXPECT_EQ(Health->Width, W);
  EXPECT_EQ(Health->ImageFingerprint, Library.fingerprint());
  EXPECT_EQ(Health->ImageGeneration, 0u);
  EXPECT_EQ(Health->Batches, 0u);
  EXPECT_EQ(Health->Reloads, 0u);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Shutdown, ""));
  ServerThread.join();
  EXPECT_EQ(Server.stats().HealthProbes.load(), 1u);
  close(Fds[0]);
  close(Fds[1]);
}

TEST_F(ServeTest, OverloadShedsTypedOverloadedAndRecovers) {
  FaultGuard Guard;
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  signal(SIGPIPE, SIG_IGN);
  SelectionService Service(Library, View, W, 2);
  ServerOptions Options;
  Options.MaxQueue = 2;
  Options.PollMs = 20;
  Options.RetryAfterMs = 75;
  SelectionServer Server(Service, Fds[0], Fds[0], Options);

  // Stall the dispatcher on its first request so the next two arrive
  // against a held queue: slots go 1 (dispatching) + 1 (queued), and
  // the third must shed.
  ASSERT_TRUE(FaultInjector::get().configure("serve_dispatch_stall@n=1"));
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  BatchRequest Request;
  Request.Width = W;
  Request.Workloads = {"164.gzip"};
  std::string Encoded = encodeBatchRequest(Request);
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Request, Encoded));

  int Responses = 0, Overloads = 0;
  for (int I = 0; I < 3; ++I) {
    wire::Frame Frame;
    ASSERT_EQ(readOne(Fds[1], Frame), wire::ReadStatus::Ok);
    if (Frame.Type == wire::Response) {
      ++Responses;
      continue;
    }
    ASSERT_EQ(Frame.Type, wire::Error);
    ServeError Error = decodeServeError(Frame.Payload);
    EXPECT_EQ(Error.Code, ServeErrorCode::Overloaded)
        << serveErrorCodeName(Error.Code) << ": " << Error.Message;
    EXPECT_EQ(Error.RetryAfterMs, 75u) << "shed replies carry the hint";
    ++Overloads;
  }
  EXPECT_EQ(Responses, 2);
  EXPECT_EQ(Overloads, 1);

  // The shed was the reply, not the connection: a retry now succeeds.
  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Request, Encoded));
  wire::Frame Frame;
  ASSERT_EQ(readOne(Fds[1], Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Response);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Shutdown, ""));
  ServerThread.join();
  EXPECT_EQ(Server.stats().Shed.load(), 1u);
  EXPECT_EQ(Server.stats().Batches.load(), 3u);
  close(Fds[0]);
  close(Fds[1]);
}

TEST_F(ServeTest, QueuedRequestPastDeadlineGetsTypedTimeout) {
  FaultGuard Guard;
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  signal(SIGPIPE, SIG_IGN);
  SelectionService Service(Library, View, W, 2);
  ServerOptions Options;
  Options.RequestDeadlineMs = 100; // Far below the 400ms injected stall.
  Options.PollMs = 20;
  SelectionServer Server(Service, Fds[0], Fds[0], Options);
  ASSERT_TRUE(FaultInjector::get().configure("serve_dispatch_stall@n=1"));
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  BatchRequest Request;
  Request.Width = W;
  Request.Workloads = {"164.gzip"};
  ASSERT_TRUE(
      wire::writeFrame(Fds[1], wire::Request, encodeBatchRequest(Request)));
  wire::Frame Frame;
  ASSERT_EQ(readOne(Fds[1], Frame), wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Error);
  ServeError Error = decodeServeError(Frame.Payload);
  EXPECT_EQ(Error.Code, ServeErrorCode::Timeout)
      << serveErrorCodeName(Error.Code) << ": " << Error.Message;
  EXPECT_GT(Error.RetryAfterMs, 0u);

  // The connection survived its timed-out request.
  ASSERT_TRUE(
      wire::writeFrame(Fds[1], wire::Request, encodeBatchRequest(Request)));
  ASSERT_EQ(readOne(Fds[1], Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Response);

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Shutdown, ""));
  ServerThread.join();
  EXPECT_EQ(Server.stats().Timeouts.load(), 1u);
  EXPECT_EQ(Server.stats().Batches.load(), 1u);
  close(Fds[0]);
  close(Fds[1]);
}

TEST_F(ServeTest, MidFrameStallDropsOnlyThatConnection) {
  int Stalled[2], Healthy[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Stalled), 0);
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Healthy), 0);
  signal(SIGPIPE, SIG_IGN);
  SelectionService Service(Library, View, W, 2);
  ServerOptions Options;
  Options.RequestDeadlineMs = 150; // Doubles as the mid-frame budget.
  Options.PollMs = 20;
  SelectionServer Server(Service, Options);
  Server.addConnection(Stalled[0], Stalled[0]);
  Server.addConnection(Healthy[0], Healthy[0]);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  // Half a frame, then silence: unrecoverable by design, and the
  // deadline must reclaim the connection instead of waiting forever.
  BatchRequest Request;
  Request.Width = W;
  Request.Workloads = {"164.gzip"};
  std::string Bytes = wire::encodeFrame(wire::Request,
                                        encodeBatchRequest(Request));
  ASSERT_TRUE(wire::writeAll(Stalled[1], Bytes.substr(0, 9)));

  std::this_thread::sleep_for(std::chrono::milliseconds(450));

  // The other connection never noticed.
  ASSERT_TRUE(wire::writeFrame(Healthy[1], wire::Request,
                               encodeBatchRequest(Request)));
  wire::Frame Frame;
  ASSERT_EQ(readOne(Healthy[1], Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Response);

  ASSERT_TRUE(wire::writeFrame(Healthy[1], wire::Shutdown, ""));
  ServerThread.join(); // Exits: the stalled conn was already dropped.
  EXPECT_EQ(Server.stats().SlowClientDrops.load(), 1u);
  close(Stalled[0]);
  close(Stalled[1]);
  close(Healthy[0]);
  close(Healthy[1]);
}

TEST_F(ServeTest, SlowWriterIsEvictedWithBoundedBuffering) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  signal(SIGPIPE, SIG_IGN);
  // Tiny kernel buffers so the reply overwhelms them and parks in the
  // server's write queue.
  int Small = 4096;
  setsockopt(Fds[0], SOL_SOCKET, SO_SNDBUF, &Small, sizeof(Small));
  setsockopt(Fds[1], SOL_SOCKET, SO_RCVBUF, &Small, sizeof(Small));

  SelectionService Service(Library, View, W, 4);
  ServerOptions Options;
  Options.RequestDeadlineMs = 30000;
  Options.WriteStallMs = 150;
  Options.PollMs = 20;
  SelectionServer Server(Service, Fds[0], Fds[0], Options);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  // A batch whose reply dwarfs the socket buffers — and a client that
  // never reads a byte of it.
  BatchRequest Request;
  Request.Width = W;
  for (int Round = 0; Round < 6; ++Round)
    for (const std::string &Name : allWorkloadNames())
      Request.Workloads.push_back(Name);
  ASSERT_TRUE(
      wire::writeFrame(Fds[1], wire::Request, encodeBatchRequest(Request)));

  // The server must evict the stalled connection and exit on its own —
  // never block forever behind a reader that went away.
  ServerThread.join();
  EXPECT_EQ(Server.stats().SlowClientDrops.load(), 1u);
  EXPECT_EQ(Server.stats().Batches.load(), 1u);
  close(Fds[0]);
  close(Fds[1]);
}

namespace {

/// Binds a unix stream listener at \p Path (unlinking any stale one).
int listenAt(const std::string &Path) {
  sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  ::unlink(Path.c_str());
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(Fd, 64) < 0) {
    close(Fd);
    return -1;
  }
  return Fd;
}

int connectTo(const std::string &Path) {
  int Fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  if (connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

TEST_F(ServeTest, WireFrameMutationFuzzYieldsTypedRejectionOrCondemnation) {
  // Deterministic frame-mutation fuzz: flip single bits across the
  // header and payload of a valid request frame. Every mutation must
  // produce a *typed* Error reply or a condemned (closed) connection —
  // never a hang, never a Response, and never memory unsafety (this
  // test is in the ASan/UBSan CI matrix).
  std::string Path = ::testing::TempDir() + "serve_fuzz.sock";
  int ListenFd = listenAt(Path);
  ASSERT_GE(ListenFd, 0);
  signal(SIGPIPE, SIG_IGN);

  SelectionService Service(Library, View, W, 2);
  ServerOptions Options;
  Options.PollMs = 20;
  SelectionServer Server(Service, Options);
  Server.serveListenFd(ListenFd);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  BatchRequest Request;
  Request.Id = 11;
  Request.Width = W;
  Request.Workloads = {"164.gzip"};
  const std::string Valid =
      wire::encodeFrame(wire::Request, encodeBatchRequest(Request));
  constexpr size_t HeaderBytes = 13;
  ASSERT_GT(Valid.size(), HeaderBytes + 4);

  std::vector<size_t> Positions;
  for (size_t I = 0; I < HeaderBytes; ++I)
    Positions.push_back(I); // Magic, type, length, CRC.
  Positions.push_back(HeaderBytes);              // First payload byte.
  Positions.push_back(Valid.size() / 2);         // Middle.
  Positions.push_back(Valid.size() - 1);         // Last.

  int TypedErrors = 0, Condemned = 0;
  for (size_t Pos : Positions) {
    for (unsigned char Mask : {0x01, 0x80}) {
      std::string Mutated = Valid;
      Mutated[Pos] = static_cast<char>(Mutated[Pos] ^ Mask);
      int Fd = connectTo(Path);
      ASSERT_GE(Fd, 0);
      wire::writeAll(Fd, Mutated); // EPIPE tolerated: server may have
      shutdown(Fd, SHUT_WR);       // condemned us mid-write already.
      wire::Frame Frame;
      wire::ReadStatus Status = readOne(Fd, Frame, 10000);
      if (Status == wire::ReadStatus::Ok) {
        ASSERT_EQ(Frame.Type, wire::Error)
            << "mutation at byte " << Pos << " mask " << int(Mask)
            << " must never yield a Response";
        ServeError Error = decodeServeError(Frame.Payload);
        EXPECT_FALSE(Error.Message.empty());
        ++TypedErrors;
      } else {
        ASSERT_NE(Status, wire::ReadStatus::Timeout)
            << "mutation at byte " << Pos << " mask " << int(Mask)
            << " hung the server";
        ++Condemned; // Eof / torn reply: the connection was dropped.
      }
      close(Fd);
    }
  }
  EXPECT_GT(Condemned, 0) << "payload flips must break the CRC";
  EXPECT_GT(TypedErrors, 0) << "type-byte flips must draw typed errors";

  // The server itself shrugged it all off.
  int Fd = connectTo(Path);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(wire::writeFrame(Fd, wire::Request, encodeBatchRequest(Request)));
  wire::Frame Frame;
  ASSERT_EQ(readOne(Fd, Frame), wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Response);
  std::string Error;
  std::optional<BatchReply> Reply = decodeBatchReply(Frame.Payload, &Error);
  ASSERT_TRUE(Reply) << Error;
  EXPECT_EQ(Reply->Results[0].Asm, sequentialAsm("164.gzip"));
  close(Fd);

  Server.requestStop();
  ServerThread.join();
  close(ListenFd);
  ::unlink(Path.c_str());
  EXPECT_EQ(Server.stats().CondemnedConns.load(),
            static_cast<uint64_t>(Condemned));
}

TEST_F(ServeTest, HotReloadUnderLoadIsByteIdenticalAndRefusesCorrupt) {
  // The tentpole guarantee: swapping the automaton image under live
  // traffic changes nothing observable (same library ⇒ byte-identical
  // replies, zero failed requests), and a corrupt candidate is refused
  // while the old image keeps serving.
  std::string ImagePath = ::testing::TempDir() + "serve_reload.matb";
  ASSERT_TRUE(buildMatcherAutomaton(Library).writeBinaryFile(ImagePath));
  std::string MapError;
  std::unique_ptr<MappedAutomaton> Mapped =
      MatcherAutomaton::mapBinary(ImagePath, &MapError);
  ASSERT_TRUE(Mapped) << MapError;

  SelectionService Service(Library, Mapped->view(), W, 4);
  ImageReloader Reloader(Service, Library, ImagePath);
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  signal(SIGPIPE, SIG_IGN);
  ServerOptions Options;
  Options.PollMs = 20;
  Options.TickHook = [&Reloader] { Reloader.tick(); };
  Options.HealthAugment = [&Reloader](HealthReply &Reply) {
    Reloader.augmentHealth(Reply);
  };
  SelectionServer Server(Service, Fds[0], Fds[0], Options);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  std::vector<std::string> Expected;
  for (const std::string &Name : allWorkloadNames())
    Expected.push_back(sequentialAsm(Name));

  auto roundTrip = [&] {
    BatchRequest Request;
    Request.Width = W;
    Request.Workloads = allWorkloadNames();
    ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Request,
                                 encodeBatchRequest(Request)));
    wire::Frame Frame;
    ASSERT_EQ(readOne(Fds[1], Frame, 120000), wire::ReadStatus::Ok);
    ASSERT_EQ(Frame.Type, wire::Response)
        << decodeServeError(Frame.Payload).Message;
    std::string Error;
    std::optional<BatchReply> Reply = decodeBatchReply(Frame.Payload, &Error);
    ASSERT_TRUE(Reply) << Error;
    ASSERT_EQ(Reply->Results.size(), Expected.size());
    for (size_t I = 0; I < Expected.size(); ++I)
      EXPECT_EQ(Reply->Results[I].Asm, Expected[I])
          << "reply " << I << " diverged across reload";
  };

  roundTrip();
  roundTrip();

  // Atomic publish, exactly as an operator must do it: write the
  // regenerated image to a temp file and rename(2) it over the served
  // path. The rename gives the path a fresh inode, so the mapping the
  // resident image holds stays valid no matter what happens to the
  // path afterwards.
  std::string StagePath = ImagePath + ".tmp";
  ASSERT_TRUE(buildMatcherAutomaton(Library).writeBinaryFile(StagePath));
  ASSERT_EQ(std::rename(StagePath.c_str(), ImagePath.c_str()), 0);
  Reloader.requestReload();
  ASSERT_TRUE(Reloader.drain());
  EXPECT_EQ(Reloader.reloads(), 1u);
  EXPECT_EQ(Reloader.failures(), 0u);
  EXPECT_EQ(Service.imageGeneration(), 1u);

  roundTrip();

  // Corrupt candidate: atomically publish a truncated image (torn
  // copy, partial upload — the realistic corruptions all arrive via
  // rename too). The reload must be refused with the failure counted —
  // and serving must continue unharmed on the already-resident image.
  {
    std::ifstream In(ImagePath, std::ios::binary);
    std::string Bytes((std::istreambuf_iterator<char>(In)),
                      std::istreambuf_iterator<char>());
    std::ofstream Out(StagePath, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size() / 3));
  }
  ASSERT_EQ(std::rename(StagePath.c_str(), ImagePath.c_str()), 0);
  Reloader.requestReload();
  ASSERT_TRUE(Reloader.drain());
  EXPECT_EQ(Reloader.reloads(), 1u);
  EXPECT_EQ(Reloader.failures(), 1u);
  EXPECT_FALSE(Reloader.lastError().empty());
  EXPECT_EQ(Service.imageGeneration(), 1u)
      << "a refused candidate must not bump the generation";

  roundTrip();

  // The health probe reports the reload history.
  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Request, encodeHealthRequest()));
  wire::Frame Frame;
  ASSERT_EQ(readOne(Fds[1], Frame), wire::ReadStatus::Ok);
  std::string Error;
  std::optional<HealthReply> Health = decodeHealthReply(Frame.Payload, &Error);
  ASSERT_TRUE(Health) << Error;
  EXPECT_EQ(Health->Reloads, 1u);
  EXPECT_EQ(Health->ReloadFailures, 1u);
  EXPECT_EQ(Health->ImageGeneration, 1u);
  EXPECT_EQ(Health->ImageFingerprint, Library.fingerprint());

  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Shutdown, ""));
  ServerThread.join();
  EXPECT_EQ(Server.stats().Batches.load(), 4u) << "zero failed requests";
  close(Fds[0]);
  close(Fds[1]);
  ::unlink(ImagePath.c_str());
}

TEST_F(ServeTest, StopDrainsAdmittedRequestsUnderLoad) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  signal(SIGPIPE, SIG_IGN);
  SelectionService Service(Library, View, W, 4);
  ServerOptions Options;
  Options.PollMs = 20;
  Options.RetryAfterMs = 200;
  SelectionServer Server(Service, Fds[0], Fds[0], Options);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  // Three sizable batches in flight...
  BatchRequest Request;
  Request.Width = W;
  Request.Workloads = allWorkloadNames();
  std::string Encoded = encodeBatchRequest(Request);
  for (int I = 0; I < 3; ++I)
    ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Request, Encoded));
  // ...all admitted before the stop lands...
  for (int Spin = 0; Server.stats().Admitted.load() < 3 && Spin < 500; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(Server.stats().Admitted.load(), 3u);
  Server.requestStop();
  // ...and one more arriving *after* it.
  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Request, Encoded));

  // Drain contract: every admitted request gets its complete reply;
  // the late one gets a typed ShuttingDown error; nothing is dropped.
  int Responses = 0, Rejected = 0;
  for (int I = 0; I < 4; ++I) {
    wire::Frame Frame;
    ASSERT_EQ(readOne(Fds[1], Frame, 120000), wire::ReadStatus::Ok);
    if (Frame.Type == wire::Response) {
      std::string Error;
      std::optional<BatchReply> Reply =
          decodeBatchReply(Frame.Payload, &Error);
      ASSERT_TRUE(Reply) << Error;
      ASSERT_EQ(Reply->Results.size(), Request.Workloads.size());
      for (const BatchReply::Result &R : Reply->Results)
        EXPECT_EQ(R.Asm, sequentialAsm(R.Workload));
      ++Responses;
    } else {
      ASSERT_EQ(Frame.Type, wire::Error);
      ServeError Error = decodeServeError(Frame.Payload);
      EXPECT_EQ(Error.Code, ServeErrorCode::ShuttingDown)
          << serveErrorCodeName(Error.Code) << ": " << Error.Message;
      EXPECT_EQ(Error.RetryAfterMs, 200u);
      ++Rejected;
    }
  }
  EXPECT_EQ(Responses, 3);
  EXPECT_EQ(Rejected, 1);

  ServerThread.join(); // Flushed everything, then exited 0 on its own.
  EXPECT_EQ(Server.stats().Batches.load(), 3u);
  EXPECT_EQ(Server.stats().ShutdownRejects.load(), 1u);
  close(Fds[0]);
  close(Fds[1]);
}

TEST_F(ServeTest, SpawnedSocketServerDrainsOnSigtermAndUnlinksSocket) {
  // The deployment-shape regression test for orderly shutdown: a large
  // batch is in flight over the unix socket when SIGTERM lands. The
  // accepted request must still get its complete, byte-identical
  // reply; the process must exit 0; the socket file must be gone.
  std::string LibraryPath = ::testing::TempDir() + "serve_drain.dat";
  std::string ImagePath = ::testing::TempDir() + "serve_drain.matb";
  std::string SocketPath = ::testing::TempDir() + "serve_drain.sock";
  Rules.saveToFile(LibraryPath);
  ASSERT_TRUE(buildMatcherAutomaton(Library).writeBinaryFile(ImagePath));

  SpawnedServer Server;
  Server.start({SELGEN_SERVED_TOOL, "--library", LibraryPath, "--automaton",
                ImagePath, "--threads", "4", "--socket", SocketPath});
  ASSERT_GE(Server.Pid, 0);

  // Readiness: the health probe answers as soon as the socket binds.
  int Fd = -1;
  for (int Spin = 0; Spin < 1000 && Fd < 0; ++Spin) {
    Fd = connectTo(SocketPath);
    if (Fd < 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(Fd, 0) << "server never bound " << SocketPath;
  ASSERT_TRUE(wire::writeFrame(Fd, wire::Request, encodeHealthRequest()));
  wire::Frame Frame;
  ASSERT_EQ(readOne(Fd, Frame, 120000), wire::ReadStatus::Ok);
  std::string Error;
  ASSERT_TRUE(decodeHealthReply(Frame.Payload, &Error)) << Error;

  BatchRequest Request;
  Request.Width = W;
  for (int Round = 0; Round < 3; ++Round)
    for (const std::string &Name : allWorkloadNames())
      Request.Workloads.push_back(Name);
  ASSERT_TRUE(
      wire::writeFrame(Fd, wire::Request, encodeBatchRequest(Request)));

  // Probe until the server has *admitted* the batch (or even finished
  // it), so the SIGTERM provably lands with the request in flight.
  // Health replies jump the queue, so each probe round-trips while the
  // batch computes.
  std::optional<BatchReply> Reply;
  bool Admitted = false;
  for (int Spin = 0; Spin < 1000 && !Admitted && !Reply; ++Spin) {
    ASSERT_TRUE(wire::writeFrame(Fd, wire::Request, encodeHealthRequest()));
    ASSERT_EQ(readOne(Fd, Frame, 120000), wire::ReadStatus::Ok);
    ASSERT_EQ(Frame.Type, wire::Response)
        << decodeServeError(Frame.Payload).Message;
    if (std::optional<HealthReply> Health =
            decodeHealthReply(Frame.Payload)) {
      Admitted = Health->QueueDepth > 0 || Health->Batches > 0;
      continue;
    }
    Reply = decodeBatchReply(Frame.Payload, &Error); // Batch won the race.
    ASSERT_TRUE(Reply) << Error;
  }
  ASSERT_TRUE(Admitted || Reply);
  ASSERT_EQ(kill(Server.Pid, SIGTERM), 0);

  // Drain: the admitted batch still gets its complete reply (skipping
  // any health replies still owed from the probe loop).
  while (!Reply) {
    ASSERT_EQ(readOne(Fd, Frame, 120000), wire::ReadStatus::Ok);
    ASSERT_EQ(Frame.Type, wire::Response)
        << decodeServeError(Frame.Payload).Message;
    if (decodeHealthReply(Frame.Payload))
      continue;
    Reply = decodeBatchReply(Frame.Payload, &Error);
    ASSERT_TRUE(Reply) << Error;
  }
  ASSERT_EQ(Reply->Results.size(), Request.Workloads.size());
  for (const BatchReply::Result &R : Reply->Results)
    EXPECT_EQ(R.Asm, sequentialAsm(R.Workload));
  close(Fd);

  int Status = Server.wait();
  EXPECT_TRUE(WIFEXITED(Status)) << "drain must end in exit, not a signal";
  EXPECT_EQ(WEXITSTATUS(Status), 0);
  EXPECT_NE(access(SocketPath.c_str(), F_OK), 0)
      << "socket file must be unlinked on shutdown";
}
