//===- test_serve.cpp - Compile-server tests -----------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The compile server's contract is the same as the automaton
// selector's, one level up: machine code streamed back by a resident
// multi-threaded selgen-served must be byte-identical to what a
// single-shot `selgen-compile --selector auto` run produces. These
// tests cover the batch payload codec (total decoders), the
// multi-threaded SelectionService against sequential selection, the
// frame loop over a socketpair, and the real spawned server binary
// including its SIGTERM shutdown path.
//
//===----------------------------------------------------------------------===//

#include "eval/Workloads.h"
#include "refsel/ReferenceSelectors.h"
#include "serve/SelectionServer.h"
#include "support/Wire.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstring>
#include <thread>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

std::vector<std::string> allWorkloadNames() {
  std::vector<std::string> Names;
  for (const WorkloadProfile &Profile : cint2000Profiles())
    Names.push_back(Profile.Name);
  return Names;
}

/// The server-side fixture: one prepared library, one binary image in
/// aligned storage, one validated view over it.
struct ServeTest : public ::testing::Test {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase Rules = buildGnuLikeRules(W);
  PreparedLibrary Library{Rules, Goals};
  std::vector<uint64_t> ImageWords;
  size_t ImageSize = 0;
  BinaryAutomatonView View;

  void SetUp() override {
    std::string Image = buildMatcherAutomaton(Library).serializeBinary();
    ImageWords.resize(Image.size() / 8 + 1);
    std::memcpy(ImageWords.data(), Image.data(), Image.size());
    ImageSize = Image.size();
    std::string Error;
    std::optional<BinaryAutomatonView> Validated =
        BinaryAutomatonView::fromMemory(ImageWords.data(), ImageSize,
                                        &Error);
    ASSERT_TRUE(Validated) << Error;
    View = *Validated;
  }

  /// What single-shot sequential selection produces for \p Name.
  std::string sequentialAsm(const std::string &Name) {
    for (const WorkloadProfile &Profile : cint2000Profiles())
      if (Profile.Name == Name) {
        AutomatonSelector Selector(Rules, Goals);
        return printMachineFunction(
            *Selector.select(buildWorkload(Profile, W)).MF);
      }
    ADD_FAILURE() << "unknown workload " << Name;
    return "";
  }
};

} // namespace

TEST(ServeProtocol, BatchRequestRoundTrips) {
  BatchRequest Request;
  Request.Id = 0xDEADBEEFCAFEull;
  Request.Width = 8;
  Request.Workloads = {"164.gzip", "300.twolf", "164.gzip"};
  std::string Error;
  std::optional<BatchRequest> Decoded =
      decodeBatchRequest(encodeBatchRequest(Request), &Error);
  ASSERT_TRUE(Decoded) << Error;
  EXPECT_EQ(Decoded->Id, Request.Id);
  EXPECT_EQ(Decoded->Width, Request.Width);
  EXPECT_EQ(Decoded->Workloads, Request.Workloads);

  BatchRequest Empty;
  Empty.Width = 16;
  ASSERT_TRUE(decodeBatchRequest(encodeBatchRequest(Empty), &Error));
}

TEST(ServeProtocol, BatchReplyRoundTrips) {
  BatchReply Reply;
  Reply.Id = 42;
  Reply.WallUs = 1234.5;
  BatchReply::Result R;
  R.Workload = "164.gzip";
  R.TotalOperations = 100;
  R.CoveredOperations = 90;
  R.FallbackOperations = 10;
  R.RulesTried = 1234;
  R.NodesVisited = 5678;
  R.SelectUs = 17.25;
  // Asm is a raw byte-counted block: newlines, spaces, and even the
  // codec's own keywords inside it must survive untouched.
  R.Asm = "f.automaton:\n  end\nresult fake 1 2 3\n";
  Reply.Results.push_back(R);
  Reply.Results.push_back(R);
  Reply.Results[1].Workload = "300.twolf";
  Reply.Results[1].Asm = ""; // Empty block is legal too.

  std::string Error;
  std::optional<BatchReply> Decoded =
      decodeBatchReply(encodeBatchReply(Reply), &Error);
  ASSERT_TRUE(Decoded) << Error;
  EXPECT_EQ(Decoded->Id, Reply.Id);
  EXPECT_DOUBLE_EQ(Decoded->WallUs, Reply.WallUs);
  ASSERT_EQ(Decoded->Results.size(), 2u);
  EXPECT_EQ(Decoded->Results[0].Asm, R.Asm);
  EXPECT_EQ(Decoded->Results[0].RulesTried, R.RulesTried);
  EXPECT_EQ(Decoded->Results[0].NodesVisited, R.NodesVisited);
  EXPECT_DOUBLE_EQ(Decoded->Results[0].SelectUs, R.SelectUs);
  EXPECT_EQ(Decoded->Results[1].Workload, "300.twolf");
  EXPECT_EQ(Decoded->Results[1].Asm, "");
}

TEST(ServeProtocol, DecodersAreTotal) {
  std::string Error;
  EXPECT_FALSE(decodeBatchRequest("", &Error));
  EXPECT_FALSE(decodeBatchRequest("garbage\n", &Error));
  EXPECT_FALSE(decodeBatchRequest("selgen-serve-batch-v1\n", &Error));
  EXPECT_FALSE(decodeBatchRequest(
      "selgen-serve-batch-v1\nid 1\nwidth 8\n", &Error))
      << "missing end trailer must be rejected";
  EXPECT_FALSE(decodeBatchRequest(
      "selgen-serve-batch-v1\nid 1\nwidth 0\nend\n", &Error));
  EXPECT_FALSE(decodeBatchRequest(
      "selgen-serve-batch-v1\nid x\nwidth 8\nend\n", &Error));
  EXPECT_FALSE(decodeBatchRequest(
      "selgen-serve-batch-v1\nid 1\nwidth 8\nend\nextra\n", &Error));

  BatchReply Reply;
  BatchReply::Result R;
  R.Workload = "164.gzip";
  R.Asm = "some asm\n";
  Reply.Results.push_back(R);
  std::string Good = encodeBatchReply(Reply);
  EXPECT_TRUE(decodeBatchReply(Good, &Error)) << Error;
  // A lying asm byte count cannot read out of the payload.
  std::string Lying = Good;
  size_t Pos = Lying.find(" 9\n"); // R.Asm.size() == 9.
  ASSERT_NE(Pos, std::string::npos);
  Lying.replace(Pos, 3, " 9999999\n");
  EXPECT_FALSE(decodeBatchReply(Lying, &Error));
  EXPECT_FALSE(decodeBatchReply(Good.substr(0, Good.size() / 2), &Error));
  EXPECT_FALSE(decodeBatchReply("", &Error));
}

TEST_F(ServeTest, ConcurrentBatchesMatchSequentialSelection) {
  // The acceptance bar: a multi-threaded service compiling a shuffled,
  // duplicated batch returns, per entry, bytes identical to one-shot
  // sequential selection.
  SelectionService Service(Library, View, W, 4);
  BatchRequest Request;
  Request.Id = 7;
  Request.Width = W;
  for (int Round = 0; Round < 3; ++Round)
    for (const std::string &Name : allWorkloadNames())
      Request.Workloads.push_back(Name);

  std::string Error;
  std::optional<BatchReply> Reply = Service.process(Request, &Error);
  ASSERT_TRUE(Reply) << Error;
  EXPECT_EQ(Reply->Id, Request.Id);
  ASSERT_EQ(Reply->Results.size(), Request.Workloads.size());
  for (size_t I = 0; I < Reply->Results.size(); ++I) {
    const BatchReply::Result &R = Reply->Results[I];
    EXPECT_EQ(R.Workload, Request.Workloads[I]);
    EXPECT_EQ(R.Asm, sequentialAsm(R.Workload)) << R.Workload;
    EXPECT_GT(R.TotalOperations, 0u);
    EXPECT_GT(R.RulesTried, 0u);
    EXPECT_GT(R.NodesVisited, 0u);
  }
  EXPECT_EQ(Service.telemetry().Batches, 1u);
  EXPECT_EQ(Service.telemetry().Functions, Request.Workloads.size());

  // Identical results again from a heap-automaton service: the mapped
  // image is an encoding detail, not a behavior change.
  MatcherAutomaton Heap = buildMatcherAutomaton(Library);
  SelectionService HeapService(Library, Heap, W, 2);
  std::optional<BatchReply> HeapReply = HeapService.process(Request, &Error);
  ASSERT_TRUE(HeapReply) << Error;
  for (size_t I = 0; I < Reply->Results.size(); ++I)
    EXPECT_EQ(HeapReply->Results[I].Asm, Reply->Results[I].Asm);
}

TEST_F(ServeTest, RejectsWidthMismatchAndUnknownWorkloads) {
  SelectionService Service(Library, View, W, 2);
  BatchRequest Request;
  Request.Width = W + 8;
  Request.Workloads = {"164.gzip"};
  std::string Error;
  EXPECT_FALSE(Service.process(Request, &Error));
  EXPECT_NE(Error.find("width"), std::string::npos);

  Request.Width = W;
  Request.Workloads = {"164.gzip", "999.bogus"};
  EXPECT_FALSE(Service.process(Request, &Error));
  EXPECT_NE(Error.find("999.bogus"), std::string::npos);
  EXPECT_EQ(Service.telemetry().Batches, 0u)
      << "failed batches must not count as served";
}

TEST_F(ServeTest, ServerLoopOverSocketpair) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  signal(SIGPIPE, SIG_IGN);

  SelectionService Service(Library, View, W, 2);
  SelectionServer Server(Service, Fds[0], Fds[0]);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });

  // A malformed payload draws an Error frame, and the loop survives.
  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Request, "garbage"));
  wire::Frame Frame;
  ASSERT_EQ(wire::readFrame(Fds[1], Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Error);

  // An unknown workload draws an Error frame too.
  BatchRequest Bogus;
  Bogus.Width = W;
  Bogus.Workloads = {"999.bogus"};
  ASSERT_TRUE(
      wire::writeFrame(Fds[1], wire::Request, encodeBatchRequest(Bogus)));
  ASSERT_EQ(wire::readFrame(Fds[1], Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Error);

  // A real batch round-trips with byte-identical machine code.
  BatchRequest Request;
  Request.Id = 99;
  Request.Width = W;
  Request.Workloads = {"164.gzip", "181.mcf"};
  ASSERT_TRUE(
      wire::writeFrame(Fds[1], wire::Request, encodeBatchRequest(Request)));
  ASSERT_EQ(wire::readFrame(Fds[1], Frame), wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Response);
  std::string Error;
  std::optional<BatchReply> Reply = decodeBatchReply(Frame.Payload, &Error);
  ASSERT_TRUE(Reply) << Error;
  EXPECT_EQ(Reply->Id, 99u);
  ASSERT_EQ(Reply->Results.size(), 2u);
  EXPECT_EQ(Reply->Results[0].Asm, sequentialAsm("164.gzip"));
  EXPECT_EQ(Reply->Results[1].Asm, sequentialAsm("181.mcf"));

  // Shutdown ends the loop with exit code 0.
  ASSERT_TRUE(wire::writeFrame(Fds[1], wire::Shutdown, ""));
  ServerThread.join();
  EXPECT_EQ(Server.batchesServed(), 1u);
  close(Fds[0]);
  close(Fds[1]);
}

TEST_F(ServeTest, ServerLoopCondemnsGarbageStream) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  SelectionService Service(Library, View, W, 1);
  SelectionServer Server(Service, Fds[0], Fds[0]);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 2); });
  std::string Garbage = "this is not a frame at all............";
  ASSERT_TRUE(wire::writeAll(Fds[1], Garbage));
  ServerThread.join();
  close(Fds[0]);
  close(Fds[1]);
}

TEST_F(ServeTest, RequestStopEndsIdleLoop) {
  int Fds[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  SelectionService Service(Library, View, W, 1);
  SelectionServer Server(Service, Fds[0], Fds[0]);
  std::thread ServerThread([&] { EXPECT_EQ(Server.run(), 0); });
  Server.requestStop();
  ServerThread.join(); // Must return within one poll tick, no traffic.
  close(Fds[0]);
  close(Fds[1]);
}

namespace {

/// Spawns the real selgen-served with stdin/stdout pipes. The test is
/// the parent side of the exact deployment topology.
struct SpawnedServer {
  pid_t Pid = -1;
  int ToChild = -1;   ///< Write requests here.
  int FromChild = -1; ///< Read replies here.

  void start(const std::vector<std::string> &Args) {
    int In[2], Out[2];
    ASSERT_EQ(pipe(In), 0);
    ASSERT_EQ(pipe(Out), 0);
    Pid = fork();
    ASSERT_GE(Pid, 0);
    if (Pid == 0) {
      dup2(In[0], STDIN_FILENO);
      dup2(Out[1], STDOUT_FILENO);
      close(In[0]);
      close(In[1]);
      close(Out[0]);
      close(Out[1]);
      std::vector<char *> Argv;
      for (const std::string &A : Args)
        Argv.push_back(const_cast<char *>(A.c_str()));
      Argv.push_back(nullptr);
      execv(Argv[0], Argv.data());
      _exit(127);
    }
    close(In[0]);
    close(Out[1]);
    ToChild = In[1];
    FromChild = Out[0];
  }

  int wait() {
    int Status = 0;
    EXPECT_EQ(waitpid(Pid, &Status, 0), Pid);
    return Status;
  }

  ~SpawnedServer() {
    if (ToChild >= 0)
      close(ToChild);
    if (FromChild >= 0)
      close(FromChild);
  }
};

} // namespace

TEST_F(ServeTest, SpawnedServerMatchesSequentialAndExitsCleanly) {
  // End to end against the real binary: write the library and a binary
  // automaton, start selgen-served on pipes, compile a batch, then
  // shut it down with a Shutdown frame.
  std::string LibraryPath = ::testing::TempDir() + "serve_rules.dat";
  std::string ImagePath = ::testing::TempDir() + "serve_rules.matb";
  Rules.saveToFile(LibraryPath);
  ASSERT_TRUE(
      buildMatcherAutomaton(Library).writeBinaryFile(ImagePath));

  SpawnedServer Server;
  Server.start({SELGEN_SERVED_TOOL, "--library", LibraryPath, "--automaton",
                ImagePath, "--threads", "4"});
  ASSERT_GE(Server.Pid, 0);

  BatchRequest Request;
  Request.Id = 1;
  Request.Width = W;
  Request.Workloads = allWorkloadNames();
  ASSERT_TRUE(wire::writeFrame(Server.ToChild, wire::Request,
                               encodeBatchRequest(Request)));
  wire::Frame Frame;
  ASSERT_EQ(wire::readFrame(Server.FromChild, Frame, 120000),
            wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Response);
  std::string Error;
  std::optional<BatchReply> Reply = decodeBatchReply(Frame.Payload, &Error);
  ASSERT_TRUE(Reply) << Error;
  ASSERT_EQ(Reply->Results.size(), Request.Workloads.size());
  for (const BatchReply::Result &R : Reply->Results)
    EXPECT_EQ(R.Asm, sequentialAsm(R.Workload)) << R.Workload;

  ASSERT_TRUE(wire::writeFrame(Server.ToChild, wire::Shutdown, ""));
  int Status = Server.wait();
  EXPECT_TRUE(WIFEXITED(Status));
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}

TEST_F(ServeTest, SpawnedServerShutsDownCleanlyOnSigterm) {
  std::string LibraryPath = ::testing::TempDir() + "serve_rules_term.dat";
  Rules.saveToFile(LibraryPath);

  // No automaton file: the server compiles one in memory at startup.
  SpawnedServer Server;
  Server.start({SELGEN_SERVED_TOOL, "--library", LibraryPath, "--threads",
                "2"});
  ASSERT_GE(Server.Pid, 0);

  // One request proves it is up and serving before the signal.
  BatchRequest Request;
  Request.Id = 2;
  Request.Width = W;
  Request.Workloads = {"164.gzip"};
  ASSERT_TRUE(wire::writeFrame(Server.ToChild, wire::Request,
                               encodeBatchRequest(Request)));
  wire::Frame Frame;
  ASSERT_EQ(wire::readFrame(Server.FromChild, Frame, 120000),
            wire::ReadStatus::Ok);
  ASSERT_EQ(Frame.Type, wire::Response);

  ASSERT_EQ(kill(Server.Pid, SIGTERM), 0);
  int Status = Server.wait();
  EXPECT_TRUE(WIFEXITED(Status)) << "SIGTERM must exit, not die on signal";
  EXPECT_EQ(WEXITSTATUS(Status), 0);
}
