//===- test_smt.cpp - SMT layer and CommandLine tests --------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtContext.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

using namespace selgen;

TEST(SmtContext, LiteralRoundTrip) {
  SmtContext Smt;
  for (unsigned Width : {1u, 8u, 36u, 64u, 100u}) {
    BitValue Value = BitValue::allOnes(Width).lshr(Width / 3);
    z3::expr Literal = Smt.literal(Value);
    EXPECT_EQ(Literal.get_sort().bv_size(), Width);
    SmtSolver Solver(Smt);
    ASSERT_EQ(Solver.check(), SmtResult::Sat);
    EXPECT_EQ(Smt.evalBits(Solver.model(), Literal), Value)
        << "width " << Width;
  }
}

TEST(SmtContext, SolveAndExtract) {
  SmtContext Smt;
  z3::expr X = Smt.bvConst("x", 16);
  SmtSolver Solver(Smt);
  Solver.add(X * Smt.ctx().bv_val(3, 16) == Smt.ctx().bv_val(0x2A, 16));
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  BitValue Solution = Smt.evalBits(Solver.model(), X);
  EXPECT_EQ(Solution.mul(BitValue(16, 3)).zextValue(), 0x2Au);
}

TEST(SmtContext, UnsatAndPushPop) {
  SmtContext Smt;
  z3::expr X = Smt.bvConst("y", 8);
  SmtSolver Solver(Smt);
  Solver.add(z3::ult(X, Smt.ctx().bv_val(5, 8)));
  Solver.push();
  Solver.add(z3::ugt(X, Smt.ctx().bv_val(10, 8)));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
  Solver.pop();
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
}

TEST(SmtContext, CheckAssuming) {
  SmtContext Smt;
  z3::expr B = Smt.boolConst("b");
  SmtSolver Solver(Smt);
  Solver.add(B || !B);
  EXPECT_EQ(Solver.checkAssuming({B}), SmtResult::Sat);
  EXPECT_EQ(Solver.checkAssuming({B, !B}), SmtResult::Unsat);
  EXPECT_EQ(Solver.check(), SmtResult::Sat); // Assumptions don't stick.
}

TEST(SmtContext, AndOrHelpers) {
  SmtContext Smt;
  EXPECT_TRUE(Smt.mkAnd({}).is_true());
  EXPECT_TRUE(Smt.mkOr({}).is_false());
  z3::expr B = Smt.boolConst("c");
  SmtSolver Solver(Smt);
  Solver.add(Smt.mkAnd({B, !B}));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}

TEST(SmtContext, StatisticsCountChecks) {
  Statistics::get().clear();
  SmtContext Smt;
  SmtSolver Solver(Smt);
  Solver.add(Smt.boolVal(true));
  Solver.check();
  Solver.check();
  EXPECT_EQ(Statistics::get().value("smt.checks"), 2);
  EXPECT_EQ(Statistics::get().value("smt.sat"), 2);
  Statistics::get().clear();
}

TEST(SmtContext, EvalBool) {
  SmtContext Smt;
  z3::expr B = Smt.boolConst("d");
  SmtSolver Solver(Smt);
  Solver.add(B);
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_TRUE(Smt.evalBool(Solver.model(), B));
  EXPECT_FALSE(Smt.evalBool(Solver.model(), !B));
}

// --- CommandLine ---------------------------------------------------------

namespace {

std::vector<char *> argvOf(std::vector<std::string> &Storage) {
  std::vector<char *> Result;
  for (std::string &S : Storage)
    Result.push_back(S.data());
  return Result;
}

} // namespace

TEST(CommandLine, ParsesFlagsValuesAndPositionals) {
  // Note: "--flag value" greedily binds the next non-option token, so
  // valueless flags go last or use "--flag=" syntax.
  std::vector<std::string> Args = {"prog", "--width",  "16",
                                   "--scale=full", "pos1", "pos2",
                                   "--verbose"};
  std::vector<char *> Argv = argvOf(Args);
  CommandLine Cli(static_cast<int>(Argv.size()), Argv.data(),
                  {"width", "scale", "verbose"});
  EXPECT_TRUE(Cli.errors().empty());
  EXPECT_EQ(Cli.intOption("width", 8), 16);
  EXPECT_EQ(Cli.stringOption("scale", "small"), "full");
  EXPECT_TRUE(Cli.hasFlag("verbose"));
  EXPECT_FALSE(Cli.hasFlag("quiet"));
  EXPECT_EQ(Cli.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
  EXPECT_EQ(Cli.doubleOption("budget", 2.5), 2.5);
}

TEST(CommandLine, ReportsUnknownOptions) {
  std::vector<std::string> Args = {"prog", "--bogus", "--width", "8"};
  std::vector<char *> Argv = argvOf(Args);
  CommandLine Cli(static_cast<int>(Argv.size()), Argv.data(), {"width"});
  ASSERT_EQ(Cli.errors().size(), 1u);
  EXPECT_NE(Cli.errors()[0].find("bogus"), std::string::npos);
  EXPECT_EQ(Cli.intOption("width", 0), 8);
}

TEST(CommandLine, Usage) {
  std::string Text = CommandLine::usage("prog", {"width", "runs"});
  EXPECT_NE(Text.find("--width"), std::string::npos);
  EXPECT_NE(Text.find("--runs"), std::string::npos);
}
