//===- test_smt.cpp - SMT layer and CommandLine tests --------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtContext.h"
#include "support/CommandLine.h"
#include "support/FaultInjection.h"
#include "support/Statistics.h"

#include <gtest/gtest.h>

#include <chrono>

using namespace selgen;

TEST(SmtContext, LiteralRoundTrip) {
  SmtContext Smt;
  for (unsigned Width : {1u, 8u, 36u, 64u, 100u}) {
    BitValue Value = BitValue::allOnes(Width).lshr(Width / 3);
    z3::expr Literal = Smt.literal(Value);
    EXPECT_EQ(Literal.get_sort().bv_size(), Width);
    SmtSolver Solver(Smt);
    ASSERT_EQ(Solver.check(), SmtResult::Sat);
    EXPECT_EQ(Smt.evalBits(Solver.model(), Literal), Value)
        << "width " << Width;
  }
}

TEST(SmtContext, SolveAndExtract) {
  SmtContext Smt;
  z3::expr X = Smt.bvConst("x", 16);
  SmtSolver Solver(Smt);
  Solver.add(X * Smt.ctx().bv_val(3, 16) == Smt.ctx().bv_val(0x2A, 16));
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  BitValue Solution = Smt.evalBits(Solver.model(), X);
  EXPECT_EQ(Solution.mul(BitValue(16, 3)).zextValue(), 0x2Au);
}

TEST(SmtContext, UnsatAndPushPop) {
  SmtContext Smt;
  z3::expr X = Smt.bvConst("y", 8);
  SmtSolver Solver(Smt);
  Solver.add(z3::ult(X, Smt.ctx().bv_val(5, 8)));
  Solver.push();
  Solver.add(z3::ugt(X, Smt.ctx().bv_val(10, 8)));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
  Solver.pop();
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
}

TEST(SmtContext, CheckAssuming) {
  SmtContext Smt;
  z3::expr B = Smt.boolConst("b");
  SmtSolver Solver(Smt);
  Solver.add(B || !B);
  EXPECT_EQ(Solver.checkAssuming({B}), SmtResult::Sat);
  EXPECT_EQ(Solver.checkAssuming({B, !B}), SmtResult::Unsat);
  EXPECT_EQ(Solver.check(), SmtResult::Sat); // Assumptions don't stick.
}

TEST(SmtContext, AndOrHelpers) {
  SmtContext Smt;
  EXPECT_TRUE(Smt.mkAnd({}).is_true());
  EXPECT_TRUE(Smt.mkOr({}).is_false());
  z3::expr B = Smt.boolConst("c");
  SmtSolver Solver(Smt);
  Solver.add(Smt.mkAnd({B, !B}));
  EXPECT_EQ(Solver.check(), SmtResult::Unsat);
}

TEST(SmtContext, StatisticsCountChecks) {
  Statistics::get().clear();
  SmtContext Smt;
  SmtSolver Solver(Smt);
  Solver.add(Smt.boolVal(true));
  Solver.check();
  Solver.check();
  EXPECT_EQ(Statistics::get().value("smt.checks"), 2);
  EXPECT_EQ(Statistics::get().value("smt.sat"), 2);
  Statistics::get().clear();
}

TEST(SmtContext, EvalBool) {
  SmtContext Smt;
  z3::expr B = Smt.boolConst("d");
  SmtSolver Solver(Smt);
  Solver.add(B);
  ASSERT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_TRUE(Smt.evalBool(Solver.model(), B));
  EXPECT_FALSE(Smt.evalBool(Solver.model(), !B));
}

// --- CommandLine ---------------------------------------------------------

namespace {

std::vector<char *> argvOf(std::vector<std::string> &Storage) {
  std::vector<char *> Result;
  for (std::string &S : Storage)
    Result.push_back(S.data());
  return Result;
}

} // namespace

TEST(CommandLine, ParsesFlagsValuesAndPositionals) {
  // Note: "--flag value" greedily binds the next non-option token, so
  // valueless flags go last or use "--flag=" syntax.
  std::vector<std::string> Args = {"prog", "--width",  "16",
                                   "--scale=full", "pos1", "pos2",
                                   "--verbose"};
  std::vector<char *> Argv = argvOf(Args);
  CommandLine Cli(static_cast<int>(Argv.size()), Argv.data(),
                  {"width", "scale", "verbose"});
  EXPECT_TRUE(Cli.errors().empty());
  EXPECT_EQ(Cli.intOption("width", 8), 16);
  EXPECT_EQ(Cli.stringOption("scale", "small"), "full");
  EXPECT_TRUE(Cli.hasFlag("verbose"));
  EXPECT_FALSE(Cli.hasFlag("quiet"));
  EXPECT_EQ(Cli.positional(),
            (std::vector<std::string>{"pos1", "pos2"}));
  EXPECT_EQ(Cli.doubleOption("budget", 2.5), 2.5);
}

TEST(CommandLine, ReportsUnknownOptions) {
  std::vector<std::string> Args = {"prog", "--bogus", "--width", "8"};
  std::vector<char *> Argv = argvOf(Args);
  CommandLine Cli(static_cast<int>(Argv.size()), Argv.data(), {"width"});
  ASSERT_EQ(Cli.errors().size(), 1u);
  EXPECT_NE(Cli.errors()[0].find("bogus"), std::string::npos);
  EXPECT_EQ(Cli.intOption("width", 0), 8);
}

TEST(CommandLine, Usage) {
  std::string Text = CommandLine::usage("prog", {"width", "runs"});
  EXPECT_NE(Text.find("--width"), std::string::npos);
  EXPECT_NE(Text.find("--runs"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Solver supervision: budgets, retries, containment, deadlines.
//===----------------------------------------------------------------------===//

namespace {

/// A factoring query Z3 cannot discharge quickly: x * y == c for a
/// 128-bit semiprime ((2^64 - 59) * (2^61 - 1)), x and y nontrivial.
void addHardQuery(SmtContext &Smt, SmtSolver &Solver) {
  z3::expr X = Smt.bvConst("hard_x", 128);
  z3::expr Y = Smt.bvConst("hard_y", 128);
  z3::expr One = Smt.ctx().bv_val(1, 128);
  z3::expr Product =
      Smt.ctx().bv_val("42535295865117307778430344311653531707", 128);
  Solver.add(X * Y == Product);
  Solver.add(z3::ugt(X, One));
  Solver.add(z3::ugt(Y, One));
}

} // namespace

TEST(SmtSupervision, RlimitExhaustionIsClassified) {
  SmtContext Smt;
  SmtSolver Solver(Smt);
  addHardQuery(Smt, Solver);
  Solver.setRlimit(1000); // Far too small for a factoring query.

  int64_t Before = Statistics::get().value("smt.rlimit_exhausted");
  EXPECT_EQ(Solver.check(), SmtResult::Unknown);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::Rlimit);
  EXPECT_EQ(Statistics::get().value("smt.rlimit_exhausted"), Before + 1);
}

TEST(SmtSupervision, RetryLadderRecoversFromTransientUnknown) {
  // The first attempt is forced inconclusive by fault injection; the
  // escalation ladder's second attempt answers the (easy) query.
  ASSERT_TRUE(FaultInjector::get().configure("solver_unknown@n=1"));
  SmtContext Smt;
  SmtSolver Solver(Smt);
  z3::expr X = Smt.bvConst("x", 8);
  Solver.add(X == Smt.ctx().bv_val(7, 8));
  Solver.setRetryScale({1, 4});

  int64_t Before = Statistics::get().value("smt.retries");
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::None);
  EXPECT_EQ(Statistics::get().value("smt.retries"), Before + 1);
  FaultInjector::get().disarm();
}

TEST(SmtSupervision, ExceptionsAreContained) {
  ASSERT_TRUE(FaultInjector::get().configure("solver_throw@n=1"));
  SmtContext Smt;
  SmtSolver Solver(Smt);
  z3::expr X = Smt.bvConst("x", 8);
  Solver.add(X == Smt.ctx().bv_val(7, 8));

  int64_t Before = Statistics::get().value("smt.exceptions");
  // One attempt only: the injected throw surfaces as Unknown, the
  // worker survives.
  EXPECT_EQ(Solver.check(), SmtResult::Unknown);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::Exception);
  EXPECT_EQ(Statistics::get().value("smt.exceptions"), Before + 1);

  // The solver remains usable afterwards.
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::None);
  FaultInjector::get().disarm();
}

TEST(SmtSupervision, RetryLadderRidesOverInjectedThrow) {
  ASSERT_TRUE(FaultInjector::get().configure("solver_throw@n=1"));
  SmtContext Smt;
  SmtSolver Solver(Smt);
  z3::expr X = Smt.bvConst("x", 8);
  Solver.add(X == Smt.ctx().bv_val(7, 8));
  Solver.setRetryScale({1, 1});

  EXPECT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::None);
  FaultInjector::get().disarm();
}

TEST(SmtSupervision, PassedDeadlineShortCircuits) {
  SmtContext Smt;
  SmtSolver Solver(Smt);
  z3::expr X = Smt.bvConst("x", 8);
  Solver.add(X == Smt.ctx().bv_val(7, 8));
  Solver.setDeadline(std::chrono::steady_clock::now() -
                     std::chrono::seconds(1));

  EXPECT_EQ(Solver.check(), SmtResult::Unknown);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::Deadline);

  Solver.clearDeadline();
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
}

TEST(SmtSupervision, DeadlineInterruptsInFlightQuery) {
  SmtContext Smt;
  SmtSolver Solver(Smt);
  addHardQuery(Smt, Solver);
  Solver.setDeadline(std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(200));

  auto Start = std::chrono::steady_clock::now();
  EXPECT_EQ(Solver.check(), SmtResult::Unknown);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::Deadline);
  // The watchdog cancels via Z3_interrupt; allow generous slack for
  // slow CI machines, but the point is it does not run unbounded.
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          Start)
                .count(),
            30.0);
}

TEST(SmtSupervision, StaleWatchdogInterruptIsSuppressed) {
  // Regression (PR 6): a deadline watchdog that wakes after its
  // fast-returning query already completed must not call Z3_interrupt
  // — the interrupt would land on the *next* query using the recycled
  // solver and spuriously cancel it. The watchdog_late fault parks the
  // check thread past the deadline after the check returned, so the
  // watchdog deterministically wakes with its check already retired;
  // the retire() guard (serialized on the watchdog mutex, so there is
  // no load-vs-interrupt window) must swallow the interrupt and count
  // it.
  ASSERT_TRUE(FaultInjector::get().configure("watchdog_late@n=1"));
  SmtContext Smt;
  SmtSolver Solver(Smt);
  z3::expr X = Smt.bvConst("x", 8);
  Solver.add(X == Smt.ctx().bv_val(7, 8));
  // Generous deadline: the trivial query returns well before it even
  // on a loaded CI machine; the injected sleep then carries the check
  // thread across it with the watchdog still armed.
  Solver.setDeadline(std::chrono::steady_clock::now() +
                     std::chrono::seconds(2));

  int64_t Before = Statistics::get().value("smt.stale_interrupts_suppressed");
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::None);
  EXPECT_EQ(Statistics::get().value("smt.stale_interrupts_suppressed"),
            Before + 1);

  // The recycled solver is untouched by the suppressed interrupt.
  Solver.clearDeadline();
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::None);
  FaultInjector::get().disarm();
}

TEST(SmtSupervision, PolicyAppliesAllKnobs) {
  SmtContext Smt;
  SmtSolver Solver(Smt);
  addHardQuery(Smt, Solver);
  SolverPolicy Policy;
  Policy.RlimitPerQuery = 500;
  Policy.RetryScale = {1, 2};
  Solver.applyPolicy(Policy);

  int64_t Retries = Statistics::get().value("smt.retries");
  EXPECT_EQ(Solver.check(), SmtResult::Unknown);
  EXPECT_EQ(Solver.lastFailure(), SmtFailure::Rlimit);
  // Both rungs of the ladder were tried.
  EXPECT_EQ(Statistics::get().value("smt.retries"), Retries + 1);
}
