//===- test_solver_pool.cpp - Out-of-process solver pool tests ----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Three layers under test: the wire framing (torn/garbage frames must
// classify as corruption, never parse), the worker protocol encoding
// (lossless round-trips), and the live pool against the real
// selgen-solverd binary (crash respawn, recycling, deadline kills,
// and byte-identity of a pooled synthesis against the in-process
// path).
//
//===----------------------------------------------------------------------===//

#include "pattern/ParallelBuilder.h"
#include "smt/SolverPool.h"
#include "support/Statistics.h"
#include "synth/WorkerProtocol.h"
#include "x86/Goals.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <thread>
#include <unistd.h>

using namespace selgen;

//===----------------------------------------------------------------------===//
// Wire framing
//===----------------------------------------------------------------------===//

namespace {

struct Pipe {
  int Read = -1;
  int Write = -1;
  Pipe() {
    int Fds[2] = {-1, -1};
    EXPECT_EQ(pipe(Fds), 0);
    Read = Fds[0];
    Write = Fds[1];
  }
  ~Pipe() {
    closeRead();
    closeWrite();
  }
  void closeRead() {
    if (Read >= 0)
      close(Read);
    Read = -1;
  }
  void closeWrite() {
    if (Write >= 0)
      close(Write);
    Write = -1;
  }
};

} // namespace

TEST(WireProtocol, FrameRoundTrip) {
  Pipe P;
  std::string Payload = "hello frames\n\x01\x02\x00 binary too";
  Payload.push_back('\0');
  ASSERT_TRUE(wire::writeFrame(P.Write, wire::Request, Payload));
  ASSERT_TRUE(wire::writeFrame(P.Write, wire::Shutdown, ""));

  wire::Frame Frame;
  ASSERT_EQ(wire::readFrame(P.Read, Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Request);
  EXPECT_EQ(Frame.Payload, Payload);
  ASSERT_EQ(wire::readFrame(P.Read, Frame), wire::ReadStatus::Ok);
  EXPECT_EQ(Frame.Type, wire::Shutdown);
  EXPECT_TRUE(Frame.Payload.empty());
}

TEST(WireProtocol, CleanEofBeforeAnyByte) {
  Pipe P;
  P.closeWrite();
  wire::Frame Frame;
  EXPECT_EQ(wire::readFrame(P.Read, Frame), wire::ReadStatus::Eof);
}

TEST(WireProtocol, TornFrameIsCorruptNotEof) {
  Pipe P;
  std::string Encoded = wire::encodeFrame(wire::Response, "torn payload");
  std::string Half = Encoded.substr(0, Encoded.size() / 2);
  ASSERT_TRUE(wire::writeAll(P.Write, Half));
  P.closeWrite();
  wire::Frame Frame;
  EXPECT_EQ(wire::readFrame(P.Read, Frame), wire::ReadStatus::Corrupt);
}

TEST(WireProtocol, BadMagicIsCorrupt) {
  Pipe P;
  ASSERT_TRUE(wire::writeAll(P.Write, std::string(32, 'X')));
  P.closeWrite();
  wire::Frame Frame;
  EXPECT_EQ(wire::readFrame(P.Read, Frame), wire::ReadStatus::Corrupt);
}

TEST(WireProtocol, FlippedPayloadByteFailsCrc) {
  Pipe P;
  std::string Encoded = wire::encodeFrame(wire::Response, "checksummed");
  Encoded[Encoded.size() - 3] ^= 0x40; // Inside the payload bytes.
  ASSERT_TRUE(wire::writeAll(P.Write, Encoded));
  P.closeWrite();
  wire::Frame Frame;
  EXPECT_EQ(wire::readFrame(P.Read, Frame), wire::ReadStatus::Corrupt);
}

TEST(WireProtocol, OversizedLengthIsCorruptWithoutAllocation) {
  Pipe P;
  std::string Encoded = wire::encodeFrame(wire::Request, "tiny");
  // Patch the length field (offset 5, u32 LE) to an absurd value; the
  // reader must reject it from the header alone.
  Encoded[5] = Encoded[6] = Encoded[7] = static_cast<char>(0xFF);
  Encoded[8] = 0x7F;
  ASSERT_TRUE(wire::writeAll(P.Write, Encoded));
  wire::Frame Frame;
  EXPECT_EQ(wire::readFrame(P.Read, Frame), wire::ReadStatus::Corrupt);
}

TEST(WireProtocol, ReadDeadlineExpiresAsTimeout) {
  Pipe P;
  // Write half a frame and keep the pipe open: the reader must give up
  // at its deadline instead of blocking forever.
  std::string Encoded = wire::encodeFrame(wire::Request, "never finished");
  ASSERT_TRUE(wire::writeAll(P.Write, Encoded.substr(0, 7)));
  wire::Frame Frame;
  EXPECT_EQ(wire::readFrame(P.Read, Frame, /*DeadlineMs=*/200),
            wire::ReadStatus::Timeout);
}

TEST(WireProtocol, WriteDeadlineExpiresAsTimeout) {
  Pipe P;
  // A peer that never drains its end (a wedged worker) eventually
  // fills the pipe; the writer must time out instead of blocking in
  // write(2) forever with no deadline kill ever firing.
  ASSERT_EQ(fcntl(P.Write, F_SETFL, O_NONBLOCK), 0);
  std::string Chunk(64 << 10, 'x');
  while (write(P.Write, Chunk.data(), Chunk.size()) > 0) {
  }
  EXPECT_EQ(wire::writeAll(P.Write, Chunk, /*DeadlineMs=*/200),
            wire::WriteStatus::Timeout);
}

TEST(WireProtocol, WriteToDeadPeerFailsInsteadOfKilling) {
  // With the default SIGPIPE disposition this test would not fail but
  // kill the whole binary — the pool ignores the signal in start() so
  // a worker that died while idle costs one respawned child, never the
  // scheduler.
  signal(SIGPIPE, SIG_IGN);
  Pipe P;
  P.closeRead();
  EXPECT_EQ(wire::writeAll(P.Write, "doomed", /*DeadlineMs=*/-1),
            wire::WriteStatus::Error);
  EXPECT_FALSE(wire::writeFrame(P.Write, wire::Request, "doomed"));
}

//===----------------------------------------------------------------------===//
// Worker protocol payloads
//===----------------------------------------------------------------------===//

TEST(WorkerProtocol, RangeRequestRoundTrip) {
  RangeRequest Request;
  Request.GoalName = "add_rr";
  Request.Options.Width = 16;
  Request.Options.Alphabet = {Opcode::Add, Opcode::Not, Opcode::Load};
  Request.Options.MaxPatternSize = 5;
  Request.Options.RequireTotalPatterns = true;
  Request.Options.UsePrescreen = false;
  Request.Options.QueryTimeoutMs = 1234;
  Request.Options.QueryRlimit = 777777;
  Request.Options.QueryRetryScale = {1, 4, 16};
  Request.Options.TimeBudgetSeconds = 12.5;
  Request.Options.MaxPatternsPerGoal = 99;
  Request.Options.MaxPatternsPerMultiset = 7;
  Request.Options.CorpusCapacity = 33;
  Request.Plan.Prefix = {Opcode::Load};
  Request.Plan.Alphabet = {Opcode::Add, Opcode::Not};
  Request.Plan.MinSize = 1;
  Request.Plan.MaxSize = 5;
  Request.Size = 3;
  Request.BeginRank = 10;
  Request.EndRank = 42;
  Request.BudgetSeconds = 3.25;

  TestCorpus::Entry Defined;
  Defined.Test = {BitValue(16, 0xBEEF), BitValue(16, 1)};
  ConcreteGoalOutcome Outcome;
  Outcome.Defined = true;
  Outcome.Results = {BitValue(16, 0xBEF0), BitValue(1, 1)};
  Defined.GoalOutcome = Outcome;
  Request.CorpusSeed.push_back(Defined);

  TestCorpus::Entry Undefined;
  Undefined.Test = {BitValue(16, 0), BitValue(16, 0)};
  ConcreteGoalOutcome Undef;
  Undef.Defined = false;
  Undefined.GoalOutcome = Undef;
  Request.CorpusSeed.push_back(Undefined);

  TestCorpus::Entry Unknown;
  Unknown.Test = {BitValue(16, 7), BitValue(16, 9)};
  Request.CorpusSeed.push_back(Unknown);

  std::string Error;
  std::optional<RangeRequest> Decoded =
      decodeRangeRequest(encodeRangeRequest(Request), &Error);
  ASSERT_TRUE(Decoded) << Error;
  EXPECT_EQ(Decoded->GoalName, "add_rr");
  EXPECT_EQ(Decoded->Options.Width, 16u);
  EXPECT_EQ(Decoded->Options.Alphabet, Request.Options.Alphabet);
  EXPECT_EQ(Decoded->Options.MaxPatternSize, 5u);
  EXPECT_TRUE(Decoded->Options.RequireTotalPatterns);
  EXPECT_FALSE(Decoded->Options.UsePrescreen);
  EXPECT_EQ(Decoded->Options.QueryTimeoutMs, 1234u);
  EXPECT_EQ(Decoded->Options.QueryRlimit, 777777u);
  EXPECT_EQ(Decoded->Options.QueryRetryScale, Request.Options.QueryRetryScale);
  EXPECT_EQ(Decoded->Options.TimeBudgetSeconds, 12.5);
  EXPECT_EQ(Decoded->Options.MaxPatternsPerGoal, 99u);
  EXPECT_EQ(Decoded->Options.MaxPatternsPerMultiset, 7u);
  EXPECT_EQ(Decoded->Options.CorpusCapacity, 33u);
  EXPECT_EQ(Decoded->Plan.Prefix, Request.Plan.Prefix);
  EXPECT_EQ(Decoded->Plan.Alphabet, Request.Plan.Alphabet);
  EXPECT_EQ(Decoded->Plan.MinSize, 1u);
  EXPECT_EQ(Decoded->Plan.MaxSize, 5u);
  EXPECT_EQ(Decoded->Size, 3u);
  EXPECT_EQ(Decoded->BeginRank, 10u);
  EXPECT_EQ(Decoded->EndRank, 42u);
  EXPECT_EQ(Decoded->BudgetSeconds, 3.25);

  ASSERT_EQ(Decoded->CorpusSeed.size(), 3u);
  EXPECT_EQ(Decoded->CorpusSeed[0].Test, Defined.Test);
  ASSERT_TRUE(Decoded->CorpusSeed[0].GoalOutcome);
  EXPECT_TRUE(Decoded->CorpusSeed[0].GoalOutcome->Defined);
  EXPECT_EQ(Decoded->CorpusSeed[0].GoalOutcome->Results, Outcome.Results);
  ASSERT_TRUE(Decoded->CorpusSeed[1].GoalOutcome);
  EXPECT_FALSE(Decoded->CorpusSeed[1].GoalOutcome->Defined);
  EXPECT_FALSE(Decoded->CorpusSeed[2].GoalOutcome);
}

TEST(WorkerProtocol, MalformedPayloadsDecodeToNullopt) {
  EXPECT_FALSE(decodeRangeRequest(""));
  EXPECT_FALSE(decodeRangeRequest("selgen-worker v1\nkind range\n"));
  EXPECT_FALSE(decodeRangeRequest("selgen-worker v1\nkind range\nbogus x\n"
                                  "end\n"));
  EXPECT_FALSE(decodeRangeReply("selgen-worker v1\nkind range\nend\n"));
  EXPECT_FALSE(decodeSmtQueryReply("total garbage"));
  EXPECT_EQ(peekRequestKind("nonsense"), WorkerRequestKind::Unknown);
}

TEST(WorkerProtocol, SmtQueryRoundTrip) {
  SmtQueryRequest Request;
  Request.Smt2 = "(declare-const q (_ BitVec 8))\n(assert (= q #x2a))";
  Request.Policy.TimeoutMs = 5000;
  Request.Policy.RlimitPerQuery = 100000;
  Request.Policy.RetryScale = {1, 4};
  Request.Eval = {{"q", 8}};

  std::string Error;
  std::optional<SmtQueryRequest> Decoded =
      decodeSmtQueryRequest(encodeSmtQueryRequest(Request), &Error);
  ASSERT_TRUE(Decoded) << Error;
  EXPECT_EQ(Decoded->Smt2, Request.Smt2 + "\n");
  EXPECT_EQ(Decoded->Policy.TimeoutMs, 5000u);
  EXPECT_EQ(Decoded->Policy.RlimitPerQuery, 100000u);
  EXPECT_EQ(Decoded->Policy.RetryScale, Request.Policy.RetryScale);
  ASSERT_EQ(Decoded->Eval.size(), 1u);
  EXPECT_EQ(Decoded->Eval[0].first, "q");
  EXPECT_EQ(Decoded->Eval[0].second, 8u);

  SmtQueryReply Reply;
  Reply.Result = SmtResult::Sat;
  Reply.Model = {BitValue(8, 0x2A)};
  std::optional<SmtQueryReply> ReplyBack =
      decodeSmtQueryReply(encodeSmtQueryReply(Reply));
  ASSERT_TRUE(ReplyBack);
  EXPECT_EQ(ReplyBack->Result, SmtResult::Sat);
  EXPECT_EQ(ReplyBack->Failure, SmtFailure::None);
  ASSERT_EQ(ReplyBack->Model.size(), 1u);
  EXPECT_EQ(ReplyBack->Model[0], BitValue(8, 0x2A));
}

//===----------------------------------------------------------------------===//
// Live pool against the real worker binary
//===----------------------------------------------------------------------===//

namespace {

SolverPoolOptions liveOptions(unsigned Workers) {
  SolverPoolOptions Options;
  Options.NumWorkers = Workers;
  Options.WorkerPath = SELGEN_SOLVERD_TOOL;
  // Tests control worker faults explicitly; an armed environment (CI
  // fault sweeps) must not leak into unrelated assertions.
  Options.WorkerEnv["SELGEN_FAULTS"] = "";
  return Options;
}

/// "q == Value" at width 8, evaluating q back.
std::string equalityQuery(unsigned Value) {
  SmtQueryRequest Request;
  char Hex[8];
  std::snprintf(Hex, sizeof(Hex), "#x%02x", Value & 0xFF);
  Request.Smt2 = "(declare-const q (_ BitVec 8))\n(assert (= q " +
                 std::string(Hex) + "))";
  Request.Eval = {{"q", 8}};
  return encodeSmtQueryRequest(Request);
}

/// Runs one equality query and checks the worker solved it correctly.
void expectSolves(SolverPool &Pool, unsigned Value, double Budget = 0) {
  PoolReply Reply = Pool.run(equalityQuery(Value), Budget);
  ASSERT_TRUE(Reply.Ok) << "failure: " << smtFailureName(Reply.Failure);
  std::optional<SmtQueryReply> Decoded = decodeSmtQueryReply(Reply.Payload);
  ASSERT_TRUE(Decoded);
  ASSERT_EQ(Decoded->Result, SmtResult::Sat);
  ASSERT_EQ(Decoded->Model.size(), 1u);
  EXPECT_EQ(Decoded->Model[0], BitValue(8, Value & 0xFF));
}

/// Pids of live (non-zombie) selgen-solverd children of this process,
/// found by scanning /proc — the pool does not expose worker pids.
std::vector<pid_t> liveSolverdChildren() {
  std::vector<pid_t> Pids;
  DIR *Proc = opendir("/proc");
  if (!Proc)
    return Pids;
  while (struct dirent *Entry = readdir(Proc)) {
    char *End = nullptr;
    long Pid = std::strtol(Entry->d_name, &End, 10);
    if (Pid <= 0 || (End && *End))
      continue;
    std::string StatPath = "/proc/" + std::string(Entry->d_name) + "/stat";
    FILE *Stat = std::fopen(StatPath.c_str(), "r");
    if (!Stat)
      continue;
    char Comm[64] = {0};
    char State = '?';
    int ParentPid = 0;
    int Fields = std::fscanf(Stat, "%*d (%63[^)]) %c %d", Comm, &State,
                             &ParentPid);
    std::fclose(Stat);
    if (Fields == 3 && ParentPid == getpid() && State != 'Z' &&
        std::string(Comm) == "selgen-solverd")
      Pids.push_back(static_cast<pid_t>(Pid));
  }
  closedir(Proc);
  return Pids;
}

} // namespace

TEST(SolverPool, UnexecutableWorkerFailsStart) {
  SolverPoolOptions Options = liveOptions(1);
  Options.WorkerPath = "/nonexistent/selgen-solverd";
  SolverPool Pool(Options);
  EXPECT_FALSE(Pool.start());
  EXPECT_FALSE(Pool.usable());
}

TEST(SolverPool, SmtQueryThroughWorker) {
  SolverPool Pool(liveOptions(1));
  ASSERT_TRUE(Pool.start());
  expectSolves(Pool, 42);
  expectSolves(Pool, 7);
}

TEST(SolverPool, UnsatQueryThroughWorker) {
  SolverPool Pool(liveOptions(1));
  ASSERT_TRUE(Pool.start());
  SmtQueryRequest Request;
  Request.Smt2 = "(declare-const u (_ BitVec 8))\n"
                 "(assert (= u #x01))\n(assert (= u #x02))";
  PoolReply Reply = Pool.run(encodeSmtQueryRequest(Request));
  ASSERT_TRUE(Reply.Ok);
  std::optional<SmtQueryReply> Decoded = decodeSmtQueryReply(Reply.Payload);
  ASSERT_TRUE(Decoded);
  EXPECT_EQ(Decoded->Result, SmtResult::Unsat);
}

TEST(SolverPool, WorkerKilledMidQueryIsRespawnedAndRetried) {
  // worker_kill@n=2: every worker process SIGKILLs itself on its 2nd
  // request, so query 2 crashes once, is retried on a fresh respawn
  // (whose 1st request succeeds), and so on — every query must still
  // come back correct, with the crashes visible in the counters.
  int64_t Crashes = Statistics::get().value("pool.crashes");
  int64_t Spawns = Statistics::get().value("pool.spawns");
  SolverPoolOptions Options = liveOptions(1);
  Options.WorkerEnv["SELGEN_FAULTS"] = "worker_kill@n=2";
  SolverPool Pool(Options);
  ASSERT_TRUE(Pool.start());
  expectSolves(Pool, 1);
  expectSolves(Pool, 2); // Crash + respawn + retry behind the scenes.
  expectSolves(Pool, 3);
  EXPECT_GE(Statistics::get().value("pool.crashes"), Crashes + 1);
  EXPECT_GE(Statistics::get().value("pool.spawns"), Spawns + 2);
}

TEST(SolverPool, ExhaustedCrashRetriesSurfaceAsException) {
  // n=1 kills every respawn on its *first* request: no retry budget
  // can save the query, so it must surface as a typed Exception
  // failure — never hang or kill the caller.
  SolverPoolOptions Options = liveOptions(1);
  Options.WorkerEnv["SELGEN_FAULTS"] = "worker_kill@n=1";
  Options.MaxCrashRetries = 1;
  SolverPool Pool(Options);
  ASSERT_TRUE(Pool.start());
  PoolReply Reply = Pool.run(equalityQuery(5));
  EXPECT_FALSE(Reply.Ok);
  EXPECT_EQ(Reply.Failure, SmtFailure::Exception);
}

TEST(SolverPool, RecyclesAfterConfiguredQueries) {
  int64_t Recycles = Statistics::get().value("pool.recycles");
  SolverPoolOptions Options = liveOptions(1);
  Options.RecycleAfterQueries = 2;
  SolverPool Pool(Options);
  ASSERT_TRUE(Pool.start());
  for (unsigned I = 0; I < 5; ++I)
    expectSolves(Pool, I);
  // Recycled after queries 2 and 4; the replacement workers answered
  // seamlessly.
  EXPECT_GE(Statistics::get().value("pool.recycles"), Recycles + 2);
}

TEST(SolverPool, DeadlineKillClassifiesAsDeadline) {
  int64_t Kills = Statistics::get().value("pool.deadline_kills");
  // worker_hang@n=2 (not n=1): the n-counter is per worker *process*,
  // so with n=1 the respawned replacement would hang again on its very
  // first query and the budget-less health check below would wait out
  // the full hang. With n=2 each fresh worker answers one query before
  // hanging, so the post-kill respawn serves the health check.
  SolverPoolOptions Options = liveOptions(1);
  Options.WorkerEnv["SELGEN_FAULTS"] = "worker_hang@n=2";
  Options.GraceSeconds = 0.5;
  Options.MaxDeadlineRetries = 0;
  SolverPool Pool(Options);
  ASSERT_TRUE(Pool.start());
  expectSolves(Pool, 8); // Warm-up: the worker's first (non-hanging) query.
  PoolReply Reply = Pool.run(equalityQuery(9), /*BudgetSeconds=*/0.5);
  EXPECT_FALSE(Reply.Ok);
  EXPECT_EQ(Reply.Failure, SmtFailure::Deadline);
  EXPECT_GE(Statistics::get().value("pool.deadline_kills"), Kills + 1);
  // The ~1s (budget + grace) sunk into the hung attempt is reported
  // so budget-enforcing callers can refund it.
  EXPECT_GT(Reply.StalledSeconds, 0.4);
  // The pool replaced the hung worker; the next query is fine.
  expectSolves(Pool, 10);
}

TEST(SolverPool, GarbageRepliesAreRejectedAndRetried) {
  SolverPoolOptions Options = liveOptions(1);
  Options.WorkerEnv["SELGEN_FAULTS"] = "worker_garbage_reply@n=2";
  SolverPool Pool(Options);
  ASSERT_TRUE(Pool.start());
  expectSolves(Pool, 20);
  expectSolves(Pool, 21); // Garbage frame, CRC reject, respawn, retry.
  expectSolves(Pool, 22);
}

TEST(SolverPool, WorkerDeadWhileIdleCostsOneRespawnNotTheProcess) {
  // Regression: a worker that dies *between* queries (the OOM-killer
  // scenario) leaves the next request's write facing a reader-less
  // pipe. Without SIGPIPE ignored that write kills the scheduler;
  // with it, EPIPE classifies as a crash and costs one respawn.
  int64_t Crashes = Statistics::get().value("pool.crashes");
  SolverPool Pool(liveOptions(1));
  ASSERT_TRUE(Pool.start());
  expectSolves(Pool, 1);

  std::vector<pid_t> Workers = liveSolverdChildren();
  ASSERT_EQ(Workers.size(), 1u);
  ASSERT_EQ(kill(Workers[0], SIGKILL), 0);
  // Once the child is gone from the live set (zombie or reaped) the
  // kernel has closed its pipe ends; the next write hits EPIPE.
  for (int I = 0; I < 5000 && !liveSolverdChildren().empty(); ++I)
    usleep(1000);
  ASSERT_TRUE(liveSolverdChildren().empty());

  expectSolves(Pool, 2); // EPIPE -> crash -> respawn -> retry.
  EXPECT_GE(Statistics::get().value("pool.crashes"), Crashes + 1);
}

TEST(SolverPool, ShutdownDrainsInFlightQueries) {
  // shutdown() must wait for a checked-out worker instead of closing
  // its fds under the concurrent readFrame (and clearing Workers under
  // the run()'s slot reference).
  SolverPoolOptions Options = liveOptions(1);
  Options.WorkerEnv["SELGEN_FAULTS"] = "worker_hang@n=1";
  Options.GraceSeconds = 0.5;
  Options.MaxDeadlineRetries = 0;
  SolverPool Pool(Options);
  ASSERT_TRUE(Pool.start());

  PoolReply InFlight;
  std::thread Query([&] {
    InFlight = Pool.run(equalityQuery(1), /*BudgetSeconds=*/0.3);
  });
  // Let the query check its worker out before shutting down.
  usleep(100 * 1000);
  Pool.shutdown();
  Query.join();

  // The in-flight query resolved normally (hung worker, deadline
  // kill), untouched by the concurrent shutdown.
  EXPECT_FALSE(InFlight.Ok);
  EXPECT_EQ(InFlight.Failure, SmtFailure::Deadline);
  // Post-shutdown queries fail typed instead of touching dead slots.
  PoolReply After = Pool.run(equalityQuery(2));
  EXPECT_FALSE(After.Ok);
  EXPECT_EQ(After.Failure, SmtFailure::Exception);
}

TEST(SolverPool, WorkerErrorFrameIsNonRetryableFailure) {
  SolverPool Pool(liveOptions(1));
  ASSERT_TRUE(Pool.start());
  PoolReply Reply = Pool.run("this is not a request payload");
  EXPECT_FALSE(Reply.Ok);
  EXPECT_EQ(Reply.Failure, SmtFailure::Exception);
  EXPECT_FALSE(Reply.Payload.empty()); // Carries the worker's message.
  // A malformed request is the caller's bug, not the worker's: the
  // worker survives and keeps serving.
  expectSolves(Pool, 33);
}

//===----------------------------------------------------------------------===//
// Byte-identity: pooled synthesis equals the in-process run
//===----------------------------------------------------------------------===//

TEST(SolverPool, PooledSynthesisIsByteIdenticalToInProcess) {
  GoalLibrary Goals = GoalLibrary::subset(
      GoalLibrary::build(8, {"Basic"}), {"neg_r", "not_r"});

  SynthesisOptions Options;
  Options.Width = 8;
  Options.TimeBudgetSeconds = 60;

  ParallelBuildOptions InProcess;
  InProcess.NumThreads = 2;
  std::string Baseline =
      synthesizeRuleLibraryParallel(Goals, Options, InProcess).serialize();

  SolverPool Pool(liveOptions(2));
  ASSERT_TRUE(Pool.start());
  ParallelBuildOptions Pooled;
  Pooled.NumThreads = 2;
  Pooled.Pool = &Pool;
  std::string Remote =
      synthesizeRuleLibraryParallel(Goals, Options, Pooled).serialize();

  EXPECT_EQ(Baseline, Remote);
}

TEST(SolverPool, PooledSynthesisSurvivesWorkerKillSweep) {
  GoalLibrary Goals = GoalLibrary::subset(
      GoalLibrary::build(8, {"Basic"}), {"neg_r", "not_r"});

  SynthesisOptions Options;
  Options.Width = 8;
  Options.TimeBudgetSeconds = 60;

  ParallelBuildOptions InProcess;
  InProcess.NumThreads = 2;
  std::string Baseline =
      synthesizeRuleLibraryParallel(Goals, Options, InProcess).serialize();

  SolverPoolOptions PoolOptions = liveOptions(2);
  PoolOptions.WorkerEnv["SELGEN_FAULTS"] = "worker_kill@n=2";
  SolverPool Pool(PoolOptions);
  ASSERT_TRUE(Pool.start());
  ParallelBuildOptions Pooled;
  Pooled.NumThreads = 2;
  Pooled.Pool = &Pool;
  std::string Faulted =
      synthesizeRuleLibraryParallel(Goals, Options, Pooled).serialize();

  // Crashes cost respawns and retries, never results.
  EXPECT_EQ(Baseline, Faulted);
}
