//===- test_support.cpp - Support library tests -------------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/Multicombination.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>

using namespace selgen;

TEST(Multicombination, EnumeratesAllNondecreasing) {
  MulticombinationEnumerator Enumerator(3, 2);
  std::vector<std::vector<unsigned>> All;
  do {
    All.push_back(Enumerator.current());
  } while (Enumerator.next());
  std::vector<std::vector<unsigned>> Expected = {
      {0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}};
  EXPECT_EQ(All, Expected);
}

TEST(Multicombination, CountMatchesEnumeration) {
  for (unsigned NumItems : {1u, 3u, 5u}) {
    for (unsigned Size : {1u, 2u, 3u, 4u}) {
      MulticombinationEnumerator Enumerator(NumItems, Size);
      uint64_t Count = 0;
      std::set<std::vector<unsigned>> Unique;
      do {
        ++Count;
        Unique.insert(Enumerator.current());
      } while (Enumerator.next());
      EXPECT_EQ(Count, multisetCount(NumItems, Size))
          << NumItems << " choose " << Size;
      EXPECT_EQ(Unique.size(), Count) << "duplicates produced";
    }
  }
}

TEST(Multicombination, UnrankingResumesEnumeration) {
  // The rank constructor must land exactly where a fresh enumeration
  // arrives after StartRank steps — this is what lets the parallel
  // builder split a size's enumeration into independent sub-ranges.
  for (unsigned NumItems : {1u, 3u, 5u, 8u}) {
    for (unsigned Size : {1u, 2u, 3u, 4u}) {
      MulticombinationEnumerator Walker(NumItems, Size);
      uint64_t Rank = 0;
      do {
        MulticombinationEnumerator Jumped(NumItems, Size, Rank);
        EXPECT_EQ(Jumped.current(), Walker.current())
            << NumItems << " items, size " << Size << ", rank " << Rank;
        ++Rank;
      } while (Walker.next());
      EXPECT_EQ(Rank, multisetCount(NumItems, Size));
    }
  }
}

TEST(Multicombination, UnrankedHalvesCoverWhole) {
  // Splitting [0, N) into [0, N/2) + [N/2, N) via unranking walks every
  // multiset exactly once.
  const unsigned NumItems = 6, Size = 3;
  const uint64_t Total = multisetCount(NumItems, Size);
  std::set<std::vector<unsigned>> Seen;
  for (uint64_t Begin : {uint64_t(0), Total / 2}) {
    uint64_t End = Begin == 0 ? Total / 2 : Total;
    MulticombinationEnumerator Enumerator(NumItems, Size, Begin);
    for (uint64_t Rank = Begin; Rank < End; ++Rank) {
      EXPECT_TRUE(Seen.insert(Enumerator.current()).second);
      if (Rank + 1 < End)
        EXPECT_TRUE(Enumerator.next());
    }
  }
  EXPECT_EQ(Seen.size(), Total);
}

TEST(Multicombination, PaperNumbers) {
  // Section 5.4: "if |I| = 21, l = 6, and |O| = 2, we require 10 626
  // instead of 230 230 iterations."
  EXPECT_EQ(multisetCount(21, 6), 230230u);
  EXPECT_EQ(multisetCount(21, 4), 10626u);
}

TEST(Multicombination, SearchSpaceEstimates) {
  // Section 5.4: |I| = 21, lmax = 7 yields about 2^65 for classical
  // CEGIS and about 2^32 for iterative CEGIS.
  EXPECT_NEAR(classicalSearchSpaceLog2(21), 65.0, 1.0);
  EXPECT_NEAR(iterativeSearchSpaceLog2(21, 7), 32.0, 1.0);
}

TEST(Multicombination, BinomialAndFactorial) {
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(10, 0), 1u);
  EXPECT_EQ(binomial(3, 10), 0u);
  EXPECT_EQ(factorial(0), 1u);
  EXPECT_EQ(factorial(10), 3628800u);
  // Saturation instead of overflow.
  EXPECT_EQ(factorial(50), ~uint64_t(0));
}

TEST(Rng, Deterministic) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.nextUInt64(), B.nextUInt64());
}

TEST(Rng, BoundsRespected) {
  Rng Random(5);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(Random.nextBelow(17), 17u);
    int64_t V = Random.nextInRange(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Rng, BitValueWidths) {
  Rng Random(5);
  EXPECT_EQ(Random.nextBitValue(100).width(), 100u);
  EXPECT_EQ(Random.nextInterestingBitValue(32).width(), 32u);
}

TEST(Statistics, AccumulatesAndClears) {
  Statistics &Stats = Statistics::get();
  Stats.clear();
  Stats.add("unit.counter");
  Stats.add("unit.counter", 41);
  EXPECT_EQ(Stats.value("unit.counter"), 42);
  EXPECT_EQ(Stats.value("unit.untouched"), 0);
  Stats.clear();
  EXPECT_EQ(Stats.value("unit.counter"), 0);
}

TEST(Statistics, JsonCarriesCountersAndGoalTelemetry) {
  Statistics &Stats = Statistics::get();
  Stats.clear();
  Stats.add("unit.json \"quoted\"", 7);
  GoalTelemetry Telemetry;
  Telemetry.Goal = "neg_r";
  Telemetry.Group = "Basic";
  Telemetry.CacheHit = true;
  Telemetry.Patterns = 2;
  Telemetry.SolverSeconds = 0.25;
  Stats.recordGoal(Telemetry);

  std::string Json = Stats.toJson();
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("unit.json \\\"quoted\\\""), std::string::npos);
  EXPECT_NE(Json.find("\"goals\""), std::string::npos);
  EXPECT_NE(Json.find("\"neg_r\""), std::string::npos);
  EXPECT_NE(Json.find("\"cache_hit\": true"), std::string::npos);
  ASSERT_EQ(Stats.goals().size(), 1u);
  EXPECT_EQ(Stats.goals()[0].Goal, "neg_r");
  Stats.clear();
  EXPECT_TRUE(Stats.goals().empty());
}

TEST(Strings, SplitJoinTrim) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(joinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(trimString("  hi \t\n"), "hi");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_TRUE(startsWith("graph w8", "graph"));
  EXPECT_FALSE(startsWith("gr", "graph"));
}

TEST(Strings, Padding) {
  EXPECT_EQ(padLeft("7", 3), "  7");
  EXPECT_EQ(padRight("7", 3), "7  ");
  EXPECT_EQ(padLeft("1234", 3), "1234");
}

TEST(Strings, Formatting) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatGrouped(63012), "63 012");
  EXPECT_EQ(formatGrouped(154470), "154 470");
  EXPECT_EQ(formatGrouped(42), "42");
  EXPECT_EQ(formatGrouped(1234567), "1 234 567");
}

TEST(Strings, TablePrinter) {
  TablePrinter Table({"Group", "#Goals", "Time"});
  Table.addRow({"Basic", "39", "3 min 25 s"});
  Table.addRow({"Flags", "265", "72 h 07 min 05 s"});
  std::string Rendered = Table.render();
  EXPECT_NE(Rendered.find("Basic"), std::string::npos);
  EXPECT_NE(Rendered.find("---"), std::string::npos);
  // Numeric columns right-aligned: "39" ends where "265" ends.
  EXPECT_NE(Rendered.find(" 39"), std::string::npos);
}

TEST(Timer, DurationFormat) {
  EXPECT_EQ(formatDuration(0.42), "420 ms");
  EXPECT_EQ(formatDuration(5), "5 s");
  EXPECT_EQ(formatDuration(205), "3 min 25 s");
  EXPECT_EQ(formatDuration(65458), "18 h 10 min 58 s");
}

TEST(Timer, MeasuresElapsed) {
  Timer Clock;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink = Sink + std::sqrt(static_cast<double>(I));
  EXPECT_GE(Clock.elapsedSeconds(), 0.0);
  EXPECT_GE(Clock.elapsedMilliseconds(), 0);
}

//===----------------------------------------------------------------------===//
// AtomicFile: CRC-32, atomic publication, quarantine.
//===----------------------------------------------------------------------===//

namespace {

std::string tempDirFor(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "selgen_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace

TEST(AtomicFile, Crc32KnownValues) {
  // Standard IEEE 802.3 check values.
  EXPECT_EQ(crc32(std::string("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(std::string("")), 0u);
  EXPECT_EQ(crc32Hex("123456789"), "cbf43926");
  EXPECT_EQ(crc32Hex(""), "00000000");
}

TEST(AtomicFile, Crc32MatchesBitwiseReferenceAtEveryLength) {
  // crc32() dispatches between a PCLMUL fold, slice-by-8, and a
  // byte-at-a-time loop depending on buffer length and host CPU; all
  // tiers must agree with the plain bitwise definition at every
  // length and alignment, especially around the 16/64-byte fold
  // boundaries the fast path peels at.
  auto Reference = [](const unsigned char *Bytes, size_t Size) {
    uint32_t C = 0xffffffffu;
    for (size_t I = 0; I < Size; ++I) {
      C ^= Bytes[I];
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xedb88320u ^ (C >> 1) : C >> 1;
    }
    return C ^ 0xffffffffu;
  };
  std::vector<unsigned char> Buffer(4096 + 7);
  uint32_t Seed = 0x9E3779B9u;
  for (unsigned char &B : Buffer) {
    Seed = Seed * 1664525u + 1013904223u;
    B = static_cast<unsigned char>(Seed >> 24);
  }
  for (size_t Size : {size_t(0), size_t(1), size_t(7), size_t(8), size_t(15),
                      size_t(16), size_t(17), size_t(63), size_t(64),
                      size_t(65), size_t(79), size_t(80), size_t(127),
                      size_t(128), size_t(129), size_t(1000), size_t(4096)}) {
    for (size_t Offset : {size_t(0), size_t(1), size_t(3), size_t(7)}) {
      ASSERT_EQ(crc32(Buffer.data() + Offset, Size),
                Reference(Buffer.data() + Offset, Size))
          << "size " << Size << " offset " << Offset;
    }
  }
}

TEST(AtomicFile, WriteAndReadRoundTrip) {
  std::string Dir = tempDirFor("atomicfile");
  std::string Path = Dir + "/artifact.txt";
  std::string Payload = "line one\nbinary \x01\x02 bytes\n";

  ASSERT_TRUE(writeFileAtomic(Path, Payload));
  std::optional<std::string> Read = readFileToString(Path);
  ASSERT_TRUE(Read.has_value());
  EXPECT_EQ(*Read, Payload);

  // Overwrite is atomic too and leaves no temp files behind.
  ASSERT_TRUE(writeFileAtomic(Path, "second version"));
  EXPECT_EQ(readFileToString(Path).value_or(""), "second version");
  size_t Entries = 0;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    (void)Entry;
    ++Entries;
  }
  EXPECT_EQ(Entries, 1u);
}

TEST(AtomicFile, WriteToBadDirectoryFailsCleanly) {
  EXPECT_FALSE(writeFileAtomic("/nonexistent-dir-xyz/file.txt", "data"));
  EXPECT_FALSE(readFileToString("/nonexistent-dir-xyz/file.txt").has_value());
}

TEST(AtomicFile, QuarantineMovesAside) {
  std::string Dir = tempDirFor("quarantine");
  std::string Path = Dir + "/shard";
  ASSERT_TRUE(writeFileAtomic(Path, "corrupt"));
  ASSERT_TRUE(quarantineFile(Path));
  EXPECT_FALSE(std::filesystem::exists(Path));
  EXPECT_EQ(readFileToString(Path + ".bad").value_or(""), "corrupt");

  // Re-quarantining a new corrupt artifact replaces the old evidence.
  ASSERT_TRUE(writeFileAtomic(Path, "corrupt again"));
  ASSERT_TRUE(quarantineFile(Path));
  EXPECT_EQ(readFileToString(Path + ".bad").value_or(""), "corrupt again");
  EXPECT_FALSE(quarantineFile(Path)); // Nothing left to quarantine.
}

//===----------------------------------------------------------------------===//
// Json: escaping and the flat-object parser.
//===----------------------------------------------------------------------===//

TEST(Json, EscapeRoundTrip) {
  std::string Nasty = "quote \" backslash \\ newline \n tab \t ctrl \x01";
  std::string Escaped = jsonEscape(Nasty);
  EXPECT_EQ(Escaped.find('\n'), std::string::npos);
  std::optional<std::string> Back = jsonUnescape(Escaped);
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, Nasty);

  EXPECT_FALSE(jsonUnescape("trailing backslash \\").has_value());
  EXPECT_FALSE(jsonUnescape("bad escape \\q").has_value());
}

TEST(Json, ParseFlatObject) {
  std::optional<std::map<std::string, std::string>> Object =
      parseFlatJsonObject(
          "{\"type\": \"finish\", \"len\": 42, \"ok\": true, "
          "\"name\": \"a\\nb\"}");
  ASSERT_TRUE(Object.has_value());
  EXPECT_EQ(Object->at("type"), "finish");
  EXPECT_EQ(Object->at("len"), "42");
  EXPECT_EQ(Object->at("ok"), "true");
  EXPECT_EQ(Object->at("name"), "a\nb");
}

TEST(Json, ParseRejectsMalformed) {
  // Nested, truncated, or trailing-garbage inputs must all be
  // rejected — the journal relies on this as corruption detection.
  EXPECT_FALSE(parseFlatJsonObject("{\"a\": {\"b\": 1}}").has_value());
  EXPECT_FALSE(parseFlatJsonObject("{\"a\": [1]}").has_value());
  EXPECT_FALSE(parseFlatJsonObject("{\"a\": \"unterminated").has_value());
  EXPECT_FALSE(parseFlatJsonObject("{\"a\": 1").has_value());
  EXPECT_FALSE(parseFlatJsonObject("{\"a\": 1} trailing").has_value());
  EXPECT_FALSE(parseFlatJsonObject("").has_value());
  EXPECT_TRUE(parseFlatJsonObject("{}").has_value());
}

//===----------------------------------------------------------------------===//
// FaultInjection: deterministic triggers.
//===----------------------------------------------------------------------===//

TEST(FaultInjection, NthCallFiresExactlyOnce) {
  FaultInjector &Faults = FaultInjector::get();
  ASSERT_TRUE(Faults.configure("unit_test_site@n=3"));
  EXPECT_TRUE(Faults.armed());

  std::vector<bool> Fired;
  for (int I = 0; I < 6; ++I)
    Fired.push_back(Faults.shouldFire("unit_test_site"));
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(Faults.firedCount("unit_test_site"), 1u);
  // A different site is never armed by this spec.
  EXPECT_FALSE(Faults.shouldFire("other_site"));
  Faults.disarm();
  EXPECT_FALSE(Faults.armed());
}

TEST(FaultInjection, ProbabilityIsDeterministicPerSeed) {
  FaultInjector &Faults = FaultInjector::get();
  auto sample = [&](const std::string &Spec) {
    EXPECT_TRUE(Faults.configure(Spec));
    std::vector<bool> Fired;
    for (int I = 0; I < 64; ++I)
      Fired.push_back(Faults.shouldFire("unit_test_site"));
    return Fired;
  };

  std::vector<bool> A = sample("unit_test_site@p=0.5,seed=7");
  std::vector<bool> B = sample("unit_test_site@p=0.5,seed=7");
  std::vector<bool> C = sample("unit_test_site@p=0.5,seed=8");
  EXPECT_EQ(A, B); // Same seed replays identically.
  EXPECT_NE(A, C); // Another seed picks different calls.
  size_t FiredCount = std::count(A.begin(), A.end(), true);
  EXPECT_GT(FiredCount, 8u); // p=0.5 over 64 calls.
  EXPECT_LT(FiredCount, 56u);
  Faults.disarm();
}

TEST(FaultInjection, BadSpecDisarms) {
  FaultInjector &Faults = FaultInjector::get();
  ASSERT_TRUE(Faults.configure("unit_test_site@n=1"));
  EXPECT_FALSE(Faults.configure("unit_test_site@bogus=1"));
  EXPECT_FALSE(Faults.armed());
  EXPECT_FALSE(Faults.configure("no-at-sign"));
  EXPECT_FALSE(Faults.configure("site@p=notanumber"));
  EXPECT_FALSE(Faults.armed());
  // An empty spec is a valid "disarm everything".
  EXPECT_TRUE(Faults.configure(""));
  EXPECT_FALSE(Faults.armed());
}

TEST(FaultInjection, DescribeNamesArmedSites) {
  FaultInjector &Faults = FaultInjector::get();
  ASSERT_TRUE(Faults.configure("solver_throw@p=0.05,shard_truncate@n=3"));
  std::string Banner = Faults.describe();
  EXPECT_NE(Banner.find("solver_throw"), std::string::npos);
  EXPECT_NE(Banner.find("shard_truncate"), std::string::npos);
  Faults.disarm();
}
