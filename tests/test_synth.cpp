//===- test_synth.cpp - Encoding / CEGIS / iterative-CEGIS tests ---------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "synth/Synthesizer.h"
#include "x86/Goals.h"

#include <gtest/gtest.h>

#include <set>

using namespace selgen;

namespace {

constexpr unsigned Width = 8;

struct SynthTest : public ::testing::Test {
  SmtContext Smt;
  GoalLibrary Library =
      GoalLibrary::build(Width, GoalLibrary::allGroups());

  const InstrSpec &goal(const std::string &Name) {
    const GoalInstruction *Goal = Library.find(Name);
    EXPECT_NE(Goal, nullptr) << Name;
    return *Goal->Spec;
  }

  SynthesisOptions options(unsigned MaxSize, bool Total = false) {
    SynthesisOptions Opts;
    Opts.Width = Width;
    Opts.MaxPatternSize = MaxSize;
    Opts.RequireTotalPatterns = Total;
    Opts.QueryTimeoutMs = 30000;
    return Opts;
  }

  std::set<std::string> expressions(const GoalSynthesisResult &Result) {
    std::set<std::string> Exprs;
    for (const Graph &Pattern : Result.Patterns)
      Exprs.insert(printGraphExpression(Pattern));
    return Exprs;
  }
};

} // namespace

TEST_F(SynthTest, EncodingWellFormedIsSatisfiable) {
  ProgramEncoding Encoding(Smt, Width, goal("add_rr"),
                           {Opcode::Add, Opcode::Not});
  SmtSolver Solver(Smt);
  Solver.add(Encoding.wellFormed());
  EXPECT_EQ(Solver.check(), SmtResult::Sat);
  EXPECT_EQ(Encoding.numTemplates(), 2u);
  EXPECT_FALSE(Encoding.decisionVariables().empty());
}

TEST_F(SynthTest, CegisFindsNegPattern) {
  std::vector<TestCase> Tests;
  CegisOutcome Outcome = runCegisAllPatterns(
      Smt, Width, goal("neg_r"), {Opcode::Minus}, Tests, CegisOptions());
  ASSERT_EQ(Outcome.Patterns.size(), 1u);
  EXPECT_TRUE(Outcome.Exhausted);
  EXPECT_EQ(printGraphExpression(Outcome.Patterns[0]), "Minus(a0)");
}

TEST_F(SynthTest, CegisRejectsWrongTemplates) {
  std::vector<TestCase> Tests;
  CegisOutcome Outcome = runCegisAllPatterns(
      Smt, Width, goal("neg_r"), {Opcode::Not}, Tests, CegisOptions());
  EXPECT_TRUE(Outcome.Patterns.empty());
  EXPECT_TRUE(Outcome.Exhausted);
  // CEGIS needed at least one counterexample to rule Not out.
  EXPECT_GE(Outcome.Counterexamples + Outcome.SynthesisQueries, 1u);
}

TEST_F(SynthTest, CegisFindsBothCommutativeOrders) {
  std::vector<TestCase> Tests;
  CegisOutcome Outcome = runCegisAllPatterns(
      Smt, Width, goal("add_rr"), {Opcode::Add}, Tests, CegisOptions());
  EXPECT_TRUE(Outcome.Exhausted);
  std::set<std::string> Exprs;
  for (const Graph &P : Outcome.Patterns)
    Exprs.insert(printGraphExpression(P));
  EXPECT_TRUE(Exprs.count("Add(a0, a1)"));
  EXPECT_TRUE(Exprs.count("Add(a1, a0)"));
  EXPECT_EQ(Exprs.size(), 2u);
}

TEST_F(SynthTest, VerifyRejectsWrongPattern) {
  // Claim Sub(a0, a1) implements add_rr: must fail with a witness.
  Graph Wrong(Width, {Sort::value(Width), Sort::value(Width)});
  Wrong.setResults(
      {Wrong.createBinary(Opcode::Sub, Wrong.arg(0), Wrong.arg(1))});
  TestCase Counterexample;
  EXPECT_FALSE(verifyPatternAgainstGoal(Smt, Width, goal("add_rr"), Wrong,
                                        &Counterexample));
  ASSERT_EQ(Counterexample.size(), 2u);
  // The witness actually distinguishes them.
  BitValue A = Counterexample[0], B = Counterexample[1];
  EXPECT_NE(A.add(B), A.sub(B));
}

TEST_F(SynthTest, VerifyAcceptsAndnVariants) {
  // The four andn patterns from the paper's introduction.
  const InstrSpec &Andn = goal("andn");
  auto check = [&](std::function<NodeRef(Graph &)> Build) {
    Graph G(Width, {Sort::value(Width), Sort::value(Width)});
    G.setResults({Build(G)});
    EXPECT_TRUE(verifyPatternAgainstGoal(Smt, Width, Andn, G))
        << printGraphExpression(G);
  };
  // ~x & y
  check([](Graph &G) {
    return G.createBinary(Opcode::And, G.createUnary(Opcode::Not, G.arg(0)),
                          G.arg(1));
  });
  // x ^ (x | y)
  check([](Graph &G) {
    return G.createBinary(Opcode::Xor, G.arg(0),
                          G.createBinary(Opcode::Or, G.arg(0), G.arg(1)));
  });
  // y ^ (x & y)
  check([](Graph &G) {
    return G.createBinary(Opcode::Xor, G.arg(1),
                          G.createBinary(Opcode::And, G.arg(0), G.arg(1)));
  });
  // y - (x & y)
  check([](Graph &G) {
    return G.createBinary(Opcode::Sub, G.arg(1),
                          G.createBinary(Opcode::And, G.arg(0), G.arg(1)));
  });
}

TEST_F(SynthTest, MemoryRequirementAnalysis) {
  Synthesizer Synth(Smt, options(3));
  auto ops = [&](const std::string &Name) {
    return Synth.requiredMemoryOps(goal(Name));
  };
  EXPECT_EQ(ops("add_rr"), std::vector<Opcode>{});
  EXPECT_EQ(ops("mov_load_b"), std::vector<Opcode>{Opcode::Load});
  EXPECT_EQ(ops("mov_store_b"), std::vector<Opcode>{Opcode::Store});
  // Destination addressing mode needs both.
  EXPECT_EQ(ops("add_mr_b"),
            (std::vector<Opcode>{Opcode::Load, Opcode::Store}));
  // A compare with memory operand only loads.
  EXPECT_EQ(ops("cmpm_b_je"), std::vector<Opcode>{Opcode::Load});
}

TEST_F(SynthTest, SkipCriteria) {
  const InstrSpec &AddRR = goal("add_rr");
  // Criterion 2: Load consumes Memory but add_rr offers no source.
  EXPECT_TRUE(Synthesizer::shouldSkipMultiset(AddRR, {Opcode::Load}, Width));
  EXPECT_TRUE(
      Synthesizer::shouldSkipMultiset(AddRR, {Opcode::Store}, Width));
  // Cond needs a Bool source.
  EXPECT_TRUE(Synthesizer::shouldSkipMultiset(AddRR, {Opcode::Cond}, Width));
  EXPECT_FALSE(
      Synthesizer::shouldSkipMultiset(AddRR, {Opcode::Cmp, Opcode::Mux},
                                      Width));
  // Criterion 1: two single-result producers, one consumer slot... a
  // lone Add for add_rr is fine (one value result consumed by the
  // goal).
  EXPECT_FALSE(Synthesizer::shouldSkipMultiset(AddRR, {Opcode::Add}, Width));
  // Two Consts for a goal with one value result and no consumers:
  // one result necessarily dangles.
  EXPECT_TRUE(Synthesizer::shouldSkipMultiset(
      goal("mov_ri"), {Opcode::Const, Opcode::Const}, Width));
  // Goal-result criterion: cmp_jl needs a Bool producer.
  EXPECT_TRUE(Synthesizer::shouldSkipMultiset(goal("cmp_jl"),
                                              {Opcode::Add}, Width));
}

TEST_F(SynthTest, IterativeFindsIncAtSizeTwo) {
  Synthesizer Synth(Smt, options(2));
  GoalSynthesisResult Result = Synth.synthesize(goal("inc_r"));
  EXPECT_EQ(Result.MinimalSize, 2u);
  std::set<std::string> Exprs = expressions(Result);
  EXPECT_TRUE(Exprs.count("Add(a0, Const(1))"));
  EXPECT_TRUE(Exprs.count("Sub(a0, Const(-1))"));
  EXPECT_TRUE(Exprs.count("Minus(Not(a0))"));
  EXPECT_GT(Result.MultisetsSkipped, 0u);
}

TEST_F(SynthTest, IdentityPatternForImmediateMove) {
  Synthesizer Synth(Smt, options(1));
  GoalSynthesisResult Result = Synth.synthesize(goal("mov_ri"));
  EXPECT_EQ(Result.MinimalSize, 0u);
  ASSERT_FALSE(Result.Patterns.empty());
  EXPECT_EQ(Result.Patterns[0].numOperations(), 0u);
}

TEST_F(SynthTest, TotalModeFindsBlsrAtSizeThree) {
  Synthesizer Synth(Smt, options(3, /*Total=*/true));
  GoalSynthesisResult Result = Synth.synthesize(goal("blsr"));
  EXPECT_EQ(Result.MinimalSize, 3u);
  std::set<std::string> Exprs = expressions(Result);
  // The classic idiom plus the paper's x + (x | -x).
  EXPECT_TRUE(Exprs.count("And(a0, Add(a0, Const(-1)))") ||
              Exprs.count("And(Add(a0, Const(-1)), a0)"))
      << "blsr idiom missing";
  bool HasOrMinus = false;
  for (const std::string &E : Exprs)
    HasOrMinus |= E.find("Or(") != std::string::npos &&
                  E.find("Minus(") != std::string::npos;
  EXPECT_TRUE(HasOrMinus) << "x + (x | -x) variant missing";
}

TEST_F(SynthTest, MemoryGoalSynthesis) {
  Synthesizer Synth(Smt, options(2));
  GoalSynthesisResult Result = Synth.synthesize(goal("add_rm_b"));
  EXPECT_EQ(Result.MinimalSize, 2u);
  std::set<std::string> Exprs = expressions(Result);
  EXPECT_TRUE(Exprs.count("Load(a0, a1).0; Add(Load(a0, a1).1, a2)"));
}

TEST_F(SynthTest, JumpGoalSynthesis) {
  Synthesizer Synth(Smt, options(2));
  GoalSynthesisResult Result = Synth.synthesize(goal("cmp_jl"));
  EXPECT_EQ(Result.MinimalSize, 2u);
  bool HasCondCmp = false;
  for (const Graph &P : Result.Patterns) {
    std::string E = printGraphExpression(P);
    HasCondCmp |= E.find("Cond(Cmp<slt>(a0, a1))") != std::string::npos;
  }
  EXPECT_TRUE(HasCondCmp);
}

TEST_F(SynthTest, AllPatternsAreVerified) {
  // Every pattern the synthesizer returns must independently pass the
  // standalone verifier.
  Synthesizer Synth(Smt, options(2));
  for (const char *Name : {"not_r", "lea_bi", "sub_rr", "mov_store_b"}) {
    GoalSynthesisResult Result = Synth.synthesize(goal(Name));
    EXPECT_FALSE(Result.Patterns.empty()) << Name;
    for (const Graph &Pattern : Result.Patterns)
      EXPECT_TRUE(
          verifyPatternAgainstGoal(Smt, Width, goal(Name), Pattern))
          << Name << ": " << printGraphExpression(Pattern);
  }
}

TEST_F(SynthTest, ClassicCegisSolvesSmallGoal) {
  SynthesisOptions Opts = options(2);
  Opts.Alphabet = {Opcode::Minus, Opcode::Not, Opcode::Add};
  Synthesizer Synth(Smt, Opts);
  GoalSynthesisResult Result =
      Synth.synthesizeClassic(goal("neg_r"), /*Copies=*/1);
  ASSERT_FALSE(Result.Patterns.empty());
  EXPECT_TRUE(verifyPatternAgainstGoal(Smt, Width, goal("neg_r"),
                                       Result.Patterns[0]));
}

TEST_F(SynthTest, InitialTestsRespectMemoryWidth) {
  std::vector<TestCase> Tests =
      makeInitialTests(goal("mov_store_b"), Width, Smt, 1, 3);
  ASSERT_EQ(Tests.size(), 3u);
  // Goal args: [memory, base, value]; one 8-bit access => M is 9 bits.
  EXPECT_EQ(Tests[0][0].width(), 9u);
  EXPECT_EQ(Tests[0][1].width(), Width);
  EXPECT_EQ(Tests[0][2].width(), Width);
}

TEST_F(SynthTest, EncodingReconstructRoundTrip) {
  // Pin the location variables to a known placement by asserting the
  // synthesis condition on the Figure 1 goal, then check that the
  // reconstructed graph is exactly the expected pattern — the
  // Section 5.2 "reconstruct this pattern from L* and vi*" step.
  const InstrSpec &Goal = goal("add_rm_b");
  ProgramEncoding Encoding(Smt, Width, Goal,
                           {Opcode::Load, Opcode::Add});
  std::vector<TestCase> Tests = makeInitialTests(Goal, Width, Smt, 7, 4);

  CegisOptions Options;
  Options.MaxPatterns = 4;
  CegisOutcome Outcome = runCegisAllPatterns(
      Smt, Width, Goal, {Opcode::Load, Opcode::Add}, Tests, Options);
  ASSERT_FALSE(Outcome.Patterns.empty());
  std::set<std::string> Expected = {
      "Load(a0, a1).0; Add(Load(a0, a1).1, a2)",
      "Load(a0, a1).0; Add(a2, Load(a0, a1).1)"};
  for (const Graph &Pattern : Outcome.Patterns) {
    EXPECT_TRUE(Expected.count(printGraphExpression(Pattern)))
        << printGraphExpression(Pattern);
    EXPECT_TRUE(isWellFormed(Pattern));
    // Reconstruction drops nothing: both template operations are live.
    EXPECT_EQ(Pattern.numOperations(), 2u);
  }
  EXPECT_TRUE(Outcome.Exhausted);
  EXPECT_EQ(Outcome.Patterns.size(), 2u);
}

TEST_F(SynthTest, ExclusionClausesTerminate) {
  // CEGISAllPatterns must exhaust a finite pattern space rather than
  // loop: {Not, Not} for not_r can only place the two Nots in 2 ways,
  // and all candidates using both are non-equivalent.
  std::vector<TestCase> Tests;
  CegisOutcome Outcome = runCegisAllPatterns(
      Smt, Width, goal("not_r"), {Opcode::Not, Opcode::Not}, Tests,
      CegisOptions());
  EXPECT_TRUE(Outcome.Exhausted);
  // Not(Not(x)) = x != ~x, and a dangling Not is forbidden by the
  // all-used refinement, so nothing can be found.
  EXPECT_TRUE(Outcome.Patterns.empty());
}

TEST_F(SynthTest, SharedTestCasesCarryAcrossMultisets) {
  // Counterexamples found while trying one multiset are reused for the
  // next (they are plain goal-argument tuples).
  std::vector<TestCase> Tests;
  CegisOptions Options;
  CegisOutcome First = runCegisAllPatterns(
      Smt, Width, goal("add_rr"), {Opcode::Sub}, Tests, Options);
  EXPECT_TRUE(First.Patterns.empty());
  size_t TestsAfterFirst = Tests.size();
  EXPECT_GE(TestsAfterFirst, 3u); // Initial seeds at least.
  CegisOutcome Second = runCegisAllPatterns(
      Smt, Width, goal("add_rr"), {Opcode::Add}, Tests, Options);
  EXPECT_EQ(Second.Patterns.size(), 2u);
  EXPECT_GE(Tests.size(), TestsAfterFirst);
}

TEST_F(SynthTest, MultiResultIdentitySynthesis) {
  // xchg r1, r2 is implemented by pure wiring: both results are
  // argument pass-throughs, crossed. The encoding must find the
  // zero-operation pattern with lRes0 = a1, lRes1 = a0.
  SynthesisOptions Opts = options(0);
  Synthesizer Synth(Smt, Opts);
  GoalSynthesisResult Result = Synth.synthesize(goal("xchg_rr"));
  ASSERT_EQ(Result.Patterns.size(), 1u);
  EXPECT_EQ(Result.MinimalSize, 0u);
  EXPECT_EQ(printGraphExpression(Result.Patterns[0]), "a1; a0");
  EXPECT_TRUE(
      verifyPatternAgainstGoal(Smt, Width, goal("xchg_rr"),
                               Result.Patterns[0]));
}
