//===- test_synth_cache.cpp - Persistent synthesis cache tests -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "pattern/ParallelBuilder.h"
#include "support/Statistics.h"
#include "synth/SpecFingerprint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

/// RAII temp directory for one cache instance.
struct TempDir {
  std::string Path;
  TempDir() {
    char Template[] = "/tmp/selgen-cache-test-XXXXXX";
    char *Made = mkdtemp(Template);
    EXPECT_NE(Made, nullptr);
    Path = Made ? Made : "";
  }
  ~TempDir() {
    if (!Path.empty()) {
      std::error_code EC;
      std::filesystem::remove_all(Path, EC);
    }
  }
};

GoalLibrary tinyGoals(std::vector<std::string> Names = {"neg_r", "not_r"}) {
  GoalLibrary All = GoalLibrary::build(W, {"Basic"});
  return GoalLibrary::subset(std::move(All), std::move(Names));
}

SynthesisOptions baseOptions() {
  SynthesisOptions Options;
  Options.Width = W;
  Options.FindAllMinimal = true;
  Options.QueryTimeoutMs = 30000;
  Options.TimeBudgetSeconds = 30;
  return Options;
}

std::multiset<std::string> ruleFingerprints(const PatternDatabase &Database) {
  std::multiset<std::string> Result;
  for (const Rule &R : Database.rules())
    Result.insert(R.GoalName + "|" + R.Pattern.fingerprint());
  return Result;
}

GoalSynthesisResult synthesizeOne(const std::string &Name) {
  GoalLibrary Goals = tinyGoals({Name});
  SmtContext Smt;
  Synthesizer Synth(Smt, baseOptions());
  return Synth.synthesize(*Goals.goals().front().Spec);
}

} // namespace

TEST(SpecFingerprint, StableAcrossContexts) {
  GoalLibrary Goals = tinyGoals({"neg_r", "not_r"});
  const InstrSpec &Neg = *Goals.goals()[0].Spec;
  const InstrSpec &Not = *Goals.goals()[1].Spec;

  SmtContext A, B;
  EXPECT_EQ(instrSpecFingerprint(A, Neg, W), instrSpecFingerprint(B, Neg, W));
  EXPECT_NE(instrSpecFingerprint(A, Neg, W), instrSpecFingerprint(A, Not, W));
  // The same semantics at another width is a different entry.
  EXPECT_NE(instrSpecFingerprint(A, Neg, W), instrSpecFingerprint(A, Neg, 16));
}

TEST(SpecFingerprint, OptionsExcludeBudgetsButNotPolicy) {
  SynthesisOptions Options = baseOptions();
  std::string Base = synthesisOptionsFingerprint(Options);

  // Only complete results are cached, and a complete result does not
  // depend on how much time it was allowed to take.
  Options.TimeBudgetSeconds = 1;
  Options.QueryTimeoutMs = 5;
  EXPECT_EQ(synthesisOptionsFingerprint(Options), Base);

  SynthesisOptions Policy = baseOptions();
  Policy.RequireTotalPatterns = !Policy.RequireTotalPatterns;
  EXPECT_NE(synthesisOptionsFingerprint(Policy), Base);

  Policy = baseOptions();
  Policy.MaxPatternsPerGoal = 3;
  EXPECT_NE(synthesisOptionsFingerprint(Policy), Base);
}

TEST(SynthesisCache, RoundTripPreservesResult) {
  TempDir Dir;
  SynthesisCache Cache(Dir.Path);
  ASSERT_TRUE(Cache.usable());

  GoalSynthesisResult Fresh = synthesizeOne("neg_r");
  ASSERT_TRUE(Fresh.Complete);
  ASSERT_FALSE(Fresh.Patterns.empty());

  EXPECT_TRUE(Cache.store("somekey", Fresh));
  std::optional<GoalSynthesisResult> Cached = Cache.lookup("somekey");
  ASSERT_TRUE(Cached.has_value());
  EXPECT_EQ(Cached->GoalName, Fresh.GoalName);
  EXPECT_EQ(Cached->MinimalSize, Fresh.MinimalSize);
  EXPECT_EQ(Cached->MultisetsRun, Fresh.MultisetsRun);
  EXPECT_TRUE(Cached->Complete);
  ASSERT_EQ(Cached->Patterns.size(), Fresh.Patterns.size());
  for (size_t I = 0; I < Fresh.Patterns.size(); ++I)
    EXPECT_EQ(Cached->Patterns[I].fingerprint(), Fresh.Patterns[I].fingerprint());
}

TEST(SynthesisCache, IncompleteResultsAreRejected) {
  TempDir Dir;
  SynthesisCache Cache(Dir.Path);
  GoalSynthesisResult Result;
  Result.GoalName = "partial";
  Result.Complete = false;
  EXPECT_FALSE(Cache.store("k", Result));
  EXPECT_FALSE(Cache.lookup("k").has_value());
}

TEST(SynthesisCache, CorruptShardsDegradeToMiss) {
  TempDir Dir;
  SynthesisCache Cache(Dir.Path);
  GoalSynthesisResult Fresh = synthesizeOne("neg_r");
  std::string Serialized = SynthesisCache::serializeResult(Fresh);

  // Garbage, a truncation of every length, and a tampered field.
  {
    std::ofstream Out(Cache.shardPath("garbage"));
    Out << "not a shard at all\n\x01\x02\x03";
  }
  EXPECT_FALSE(Cache.lookup("garbage").has_value());

  for (size_t Cut : {size_t(0), size_t(1), Serialized.size() / 2,
                     Serialized.size() - 2}) {
    std::ofstream Out(Cache.shardPath("truncated"));
    Out << Serialized.substr(0, Cut);
    Out.close();
    EXPECT_FALSE(Cache.lookup("truncated").has_value())
        << "truncation at " << Cut << " must be a miss";
  }

  // The v2 checksum frame covers the exact body: appended trailing
  // content is a length mismatch, and any in-place tamper is a CRC
  // mismatch. Both are corruption, both degrade to a miss.
  {
    std::ofstream Out(Cache.shardPath("tampered"));
    Out << Serialized << "trailing-unknown-field 1\n";
  }
  EXPECT_FALSE(Cache.lookup("tampered").has_value());
  std::string Tampered = Serialized;
  size_t Pos = Tampered.find("patterns ");
  ASSERT_NE(Pos, std::string::npos);
  Tampered.replace(Pos, std::string("patterns ").size() + 1, "patterns 9");
  {
    std::ofstream Out(Cache.shardPath("countmismatch"));
    Out << Tampered;
  }
  EXPECT_FALSE(Cache.lookup("countmismatch").has_value());

  // Corrupt shards are quarantined to <shard>.bad and counted, so the
  // next lookup is a clean miss instead of a repeated read-and-reject.
  EXPECT_FALSE(std::ifstream(Cache.shardPath("countmismatch")).good());
  EXPECT_TRUE(std::ifstream(Cache.shardPath("countmismatch") + ".bad").good());
  EXPECT_GE(Statistics::get().value("cache.corrupt_shards"), 6);

  // A full, untouched shard still loads.
  {
    std::ofstream Out(Cache.shardPath("intact"));
    Out << Serialized;
  }
  EXPECT_TRUE(Cache.lookup("intact").has_value());
}

TEST(SynthesisCache, ConcurrentWritersStaySafe) {
  TempDir Dir;
  SynthesisCache Cache(Dir.Path);
  GoalSynthesisResult Fresh = synthesizeOne("neg_r");

  // Many writers hammering the same key while readers poll: every
  // successful lookup must deserialize cleanly (atomic publish means
  // readers never observe a half-written shard).
  std::atomic<bool> Stop{false};
  std::atomic<unsigned> BadReads{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 2; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 50; ++I)
        Cache.store("contended", Fresh);
    });
  std::thread Reader([&] {
    while (!Stop.load()) {
      std::ifstream Probe(Cache.shardPath("contended"));
      if (Probe.good() && !Cache.lookup("contended").has_value())
        BadReads.fetch_add(1);
    }
  });
  for (std::thread &T : Threads)
    T.join();
  Stop.store(true);
  Reader.join();
  EXPECT_EQ(BadReads.load(), 0u);
  EXPECT_TRUE(Cache.lookup("contended").has_value());
}

TEST(ParallelBuilderCache, WarmRerunHitsAndMatchesFresh) {
  TempDir Dir;
  SynthesisCache Cache(Dir.Path);
  GoalLibrary Goals = tinyGoals();
  SynthesisOptions Options = baseOptions();

  ParallelBuildOptions Build;
  Build.NumThreads = 2;
  Build.Cache = &Cache;

  LibraryBuildReport Cold, Warm;
  PatternDatabase First =
      synthesizeRuleLibraryParallel(Goals, Options, Build, &Cold);
  EXPECT_EQ(Cold.CacheHits, 0u);
  EXPECT_EQ(Cold.CacheMisses, 2u);

  PatternDatabase Second =
      synthesizeRuleLibraryParallel(Goals, Options, Build, &Warm);
  EXPECT_EQ(Warm.CacheHits, 2u);
  EXPECT_EQ(Warm.CacheMisses, 0u);

  // Determinism: the cache-served library equals the fresh one.
  EXPECT_EQ(ruleFingerprints(First), ruleFingerprints(Second));
  EXPECT_EQ(First.size(), Second.size());

  // And both equal a cache-less build.
  LibraryBuildReport Bare;
  ParallelBuildOptions NoCache;
  NoCache.NumThreads = 2;
  PatternDatabase Third =
      synthesizeRuleLibraryParallel(Goals, Options, NoCache, &Bare);
  EXPECT_EQ(Bare.CacheHits, 0u);
  EXPECT_EQ(Bare.CacheMisses, 0u);
  EXPECT_EQ(ruleFingerprints(First), ruleFingerprints(Third));
}

TEST(ParallelBuilderCache, OptionChangeInvalidates) {
  TempDir Dir;
  SynthesisCache Cache(Dir.Path);
  GoalLibrary Goals = tinyGoals({"neg_r"});
  SynthesisOptions Options = baseOptions();

  ParallelBuildOptions Build;
  Build.NumThreads = 1;
  Build.Cache = &Cache;

  LibraryBuildReport Cold;
  synthesizeRuleLibraryParallel(Goals, Options, Build, &Cold);
  EXPECT_EQ(Cold.CacheMisses, 1u);

  // A result-relevant option flips the key: full miss, not a stale hit.
  SynthesisOptions Changed = Options;
  Changed.MaxPatternsPerGoal = 1;
  LibraryBuildReport Report;
  synthesizeRuleLibraryParallel(Goals, Changed, Build, &Report);
  EXPECT_EQ(Report.CacheHits, 0u);
  EXPECT_EQ(Report.CacheMisses, 1u);

  // The original options still hit.
  LibraryBuildReport Again;
  synthesizeRuleLibraryParallel(Goals, Options, Build, &Again);
  EXPECT_EQ(Again.CacheHits, 1u);
  EXPECT_EQ(Again.CacheMisses, 0u);
}

TEST(ParallelBuilderCache, ConcurrentBuildersShareOneStore) {
  TempDir Dir;
  SynthesisCache CacheA(Dir.Path), CacheB(Dir.Path);
  GoalLibrary GoalsA = tinyGoals(), GoalsB = tinyGoals();
  SynthesisOptions Options = baseOptions();

  LibraryBuildReport ReportA, ReportB;
  PatternDatabase DatabaseA, DatabaseB;
  std::thread BuilderA([&] {
    ParallelBuildOptions Build;
    Build.NumThreads = 2;
    Build.Cache = &CacheA;
    DatabaseA = synthesizeRuleLibraryParallel(GoalsA, Options, Build, &ReportA);
  });
  std::thread BuilderB([&] {
    ParallelBuildOptions Build;
    Build.NumThreads = 2;
    Build.Cache = &CacheB;
    DatabaseB = synthesizeRuleLibraryParallel(GoalsB, Options, Build, &ReportB);
  });
  BuilderA.join();
  BuilderB.join();

  // Both may solve (racing is allowed), but the results must agree and
  // a third run must be served fully from the shared store.
  EXPECT_EQ(ruleFingerprints(DatabaseA), ruleFingerprints(DatabaseB));
  ParallelBuildOptions Build;
  Build.NumThreads = 2;
  Build.Cache = &CacheA;
  LibraryBuildReport Warm;
  PatternDatabase Third =
      synthesizeRuleLibraryParallel(GoalsA, Options, Build, &Warm);
  EXPECT_EQ(Warm.CacheHits, 2u);
  EXPECT_EQ(ruleFingerprints(Third), ruleFingerprints(DatabaseA));
}
