//===- test_testgen.cpp - Test-case generator tests ----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"
#include "isel/HandwrittenSelector.h"
#include "refsel/ReferenceSelectors.h"
#include "testgen/TestCaseGenerator.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

Rule makeBlsrRule() {
  Graph G(W, {Sort::value(W)});
  G.setResults({G.createBinary(
      Opcode::And,
      G.createBinary(Opcode::Add, G.arg(0),
                     G.createConst(BitValue::allOnes(W))),
      G.arg(0))});
  return Rule("blsr", std::move(G));
}

Rule makeJumpRule() {
  Graph G(W, {Sort::value(W), Sort::value(W)});
  Node *Jump =
      G.createCond(G.createCmp(Relation::Slt, G.arg(0), G.arg(1)));
  G.setResults({NodeRef(Jump, 0), NodeRef(Jump, 1)});
  return Rule("cmp_jl", std::move(G));
}

Rule makeStoreRule() {
  Graph G(W, {Sort::memory(), Sort::value(W), Sort::value(W)});
  G.setResults({G.createStore(G.arg(0), G.arg(1), G.arg(2))});
  return Rule("mov_store_b", std::move(G));
}

} // namespace

TEST(TestGen, ValueTestFunction) {
  Rule R = makeBlsrRule();
  Function F = buildPatternTestFunction(R, W, "t0");
  EXPECT_TRUE(verifyFunction(F).empty());

  // f(x) = x & (x - 1).
  FunctionResult Result =
      runFunction(F, {BitValue(W, 0b1100)}, MemoryState());
  ASSERT_EQ(Result.ReturnValues.size(), 1u);
  EXPECT_EQ(Result.ReturnValues[0].zextValue(), 0b1000u);
}

TEST(TestGen, JumpTestFunctionBranches) {
  Rule R = makeJumpRule();
  Function F = buildPatternTestFunction(R, W, "t1");
  EXPECT_TRUE(verifyFunction(F).empty());
  EXPECT_EQ(F.blocks().size(), 3u);

  FunctionResult Taken =
      runFunction(F, {BitValue(W, 1), BitValue(W, 2)}, MemoryState());
  EXPECT_EQ(Taken.ReturnValues[0].zextValue(), 1u);
  FunctionResult NotTaken =
      runFunction(F, {BitValue(W, 2), BitValue(W, 1)}, MemoryState());
  EXPECT_EQ(NotTaken.ReturnValues[0].zextValue(), 0u);
}

TEST(TestGen, MemoryTestFunction) {
  Rule R = makeStoreRule();
  Function F = buildPatternTestFunction(R, W, "t2");
  EXPECT_TRUE(verifyFunction(F).empty());
  FunctionResult Result = runFunction(
      F, {BitValue(W, 0x44), BitValue(W, 0x5C)}, MemoryState());
  EXPECT_EQ(Result.FinalMemory->peekByte(0x44), 0x5Cu);
}

TEST(TestGen, CProgramEmission) {
  std::string C = emitCTestProgram(makeBlsrRule(), W, "test_blsr");
  EXPECT_NE(C.find("#include <stdint.h>"), std::string::npos);
  EXPECT_NE(C.find("uint8_t test_blsr(uint8_t a0)"), std::string::npos);
  EXPECT_NE(C.find("goal: blsr"), std::string::npos);
  EXPECT_NE(C.find("return"), std::string::npos);
  EXPECT_NE(C.find("&"), std::string::npos);

  std::string CJump = emitCTestProgram(makeJumpRule(), W, "test_jl");
  EXPECT_NE(CJump.find("(int8_t)"), std::string::npos); // Signed compare.
  EXPECT_NE(CJump.find("? 1 : 0"), std::string::npos);

  std::string CStore = emitCTestProgram(makeStoreRule(), W, "test_st");
  EXPECT_NE(CStore.find("volatile uint8_t *"), std::string::npos);
  EXPECT_NE(CStore.find("= a2;"), std::string::npos);
}

TEST(TestGen, MissingPatternExperiment) {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase Gnu = buildGnuLikeRules(W);
  PatternDatabase Clang = buildClangLikeRules(W);
  auto GnuSel = makeReferenceSelector("gnu-like", Gnu, Goals);
  auto ClangSel = makeReferenceSelector("clang-like", Clang, Goals);

  // Library under test: blsr (both support) and andn (only clang-like).
  PatternDatabase Library;
  {
    Rule Blsr = makeBlsrRule();
    Library.add(Blsr.GoalName, Blsr.Pattern.clone());
    Graph Andn(W, {Sort::value(W), Sort::value(W)});
    Andn.setResults({Andn.createBinary(
        Opcode::And, Andn.createUnary(Opcode::Not, Andn.arg(0)),
        Andn.arg(1))});
    Library.add("andn", std::move(Andn));
  }

  MissingPatternReport Report = runMissingPatternExperiment(
      Library, W, {GnuSel.get(), ClangSel.get()}, /*ValidationRuns=*/25);

  ASSERT_EQ(Report.TotalTests, 2u);
  ASSERT_EQ(Report.Rows.size(), 2u);
  for (const MissingPatternRow &Row : Report.Rows)
    EXPECT_FALSE(Row.BehaviourMismatch) << Row.PatternExpression;

  // blsr: both optimal. andn: gnu-like needs more instructions.
  const MissingPatternRow *AndnRow = nullptr;
  for (const MissingPatternRow &Row : Report.Rows)
    if (Row.GoalName == "andn")
      AndnRow = &Row;
  ASSERT_NE(AndnRow, nullptr);
  EXPECT_TRUE(AndnRow->Missing[0]);  // gnu-like misses it.
  EXPECT_FALSE(AndnRow->Missing[1]); // clang-like has it.
  EXPECT_EQ(Report.TotalMissing[0], 1u);
  EXPECT_EQ(Report.TotalMissing[1], 0u);
}

TEST(TestGen, ValidationCatchesMiscompile) {
  // A deliberately broken "compiler": claims blsr is blsi.
  class Broken : public InstructionSelector {
  public:
    std::string name() const override { return "broken"; }
    SelectionResult select(const Function &F) override {
      SelectionResult R;
      auto MF = std::make_unique<MachineFunction>("broken", W);
      MachineBlock *Block = MF->createBlock("entry");
      MReg A = MF->newReg();
      Block->ArgRegs = {A};
      MReg T = MF->newReg();
      Block->append(
          {MOpcode::Blsi, CondCode::E, MOperand::reg(T), MOperand::reg(A),
           {}});
      Block->terminator().TermKind = MTerminator::Kind::Ret;
      Block->terminator().ReturnValues = {MOperand::reg(T)};
      R.MF = std::move(MF);
      R.TotalOperations = F.numOperations();
      return R;
    }
  };

  PatternDatabase Library;
  {
    Rule Blsr = makeBlsrRule();
    Library.add(Blsr.GoalName, Blsr.Pattern.clone());
  }
  Broken Compiler;
  MissingPatternReport Report = runMissingPatternExperiment(
      Library, W, {&Compiler}, /*ValidationRuns=*/30);
  ASSERT_EQ(Report.Rows.size(), 1u);
  EXPECT_TRUE(Report.Rows[0].BehaviourMismatch);
}
