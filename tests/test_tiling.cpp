//===- test_tiling.cpp - Cost-minimal tiling selector ---------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The tiling selector's contract has two halves. Under the unit cost
// model it is an exact re-implementation of first-match selection:
// every full cover of a cone costs the cone's node count, all matched
// candidates tie, and the stable (cost, index) order degenerates to
// prepared-priority order — so the emitted machine code must be
// byte-identical to the automaton selector's. Under the latency and
// size models it must never emit statically costlier code than
// first-match, and on libraries with same-pattern/different-cost rule
// collisions (add_rr vs add_ri) it must do strictly better. These
// tests enforce both halves, the DAG re-convergence accounting, and
// the cost table's round trip through the text and binary automaton
// formats.
//
//===----------------------------------------------------------------------===//

#include "cost/CostModel.h"
#include "eval/Workloads.h"
#include "ir/Normalizer.h"
#include "isel/AutomatonSelector.h"
#include "isel/TilingSelector.h"
#include "matchergen/BinaryAutomaton.h"
#include "refsel/ReferenceSelectors.h"
#include "support/AtomicFile.h"
#include "testgen/TestCaseGenerator.h"
#include "x86/MachineIR.h"

#include <gtest/gtest.h>

#include <cstring>
#include <fstream>
#include <sstream>

using namespace selgen;

namespace {

constexpr unsigned W = 8;

/// printMachineFunction output minus the first line: the header line
/// carries the machine function's name, which includes the selector
/// name ("f.tiling" vs "f.automaton") by design. Everything below it
/// must be byte-identical.
std::string asmBody(const MachineFunction &MF) {
  std::string Text = printMachineFunction(MF);
  size_t Newline = Text.find('\n');
  return Newline == std::string::npos ? std::string()
                                      : Text.substr(Newline + 1);
}

struct TilingTest : public ::testing::Test {
  GoalLibrary Goals = GoalLibrary::build(W, GoalLibrary::allGroups());
  PatternDatabase GnuRules = buildGnuLikeRules(W);
  PatternDatabase ClangRules = buildClangLikeRules(W);
};

/// One-block function over [mem, a, b].
Function singleBlock(const std::function<NodeRef(Graph &)> &Build) {
  Function F("f", W);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(W), Sort::value(W)});
  Graph &G = Entry->body();
  NodeRef Result = Build(G);
  Entry->setReturn({G.arg(0), Result});
  return F;
}

} // namespace

TEST_F(TilingTest, UnitCostReproducesFirstMatchOnWorkloads) {
  for (const PatternDatabase *Db : {&GnuRules, &ClangRules}) {
    AutomatonSelector Auto(*Db, Goals);
    TilingSelector Unit(*Db, Goals, CostKind::Unit);
    for (const WorkloadProfile &Profile : cint2000Profiles()) {
      Function F = buildWorkload(Profile, W);
      SelectionResult A = Auto.select(F);
      SelectionResult T = Unit.select(F);
      ASSERT_TRUE(A.MF && T.MF) << Profile.Name;
      EXPECT_EQ(asmBody(*A.MF), asmBody(*T.MF)) << Profile.Name;
      EXPECT_EQ(A.CoveredOperations, T.CoveredOperations) << Profile.Name;
      EXPECT_EQ(A.FallbackOperations, T.FallbackOperations) << Profile.Name;
    }
  }
}

TEST_F(TilingTest, UnitCostReproducesFirstMatchOnPatternTestFunctions) {
  // Every rule of both libraries as a runnable test function: identity
  // patterns, immediate forms, memory rules, compare-and-jump rules.
  for (const PatternDatabase *Db : {&GnuRules, &ClangRules}) {
    AutomatonSelector Auto(*Db, Goals);
    TilingSelector Unit(*Db, Goals, CostKind::Unit);
    unsigned Index = 0;
    for (const Rule &R : Db->rules()) {
      Function F =
          buildPatternTestFunction(R, W, "pattest_" + std::to_string(Index));
      SelectionResult A = Auto.select(F);
      SelectionResult T = Unit.select(F);
      ASSERT_TRUE(A.MF && T.MF) << R.GoalName;
      EXPECT_EQ(asmBody(*A.MF), asmBody(*T.MF))
          << "rule " << Index << " for " << R.GoalName;
      ++Index;
    }
    EXPECT_GT(Index, 20u);
  }
}

TEST_F(TilingTest, StaticCostNeverWorseOnWorkloads) {
  // The DP minimizes the modeled cost of the cover it hands the
  // engine. Under the latency model the per-rule costs are
  // operand-independent, so the guarantee transfers to the measured
  // machine code: tiling must never emit a statically costlier
  // function than first-match. (The size model's per-rule costs are
  // operand-context-free by design — the encoded size of a memory
  // fold depends on the addressing mode only known at emission — so
  // its measured size carries no such bound; it is exercised for
  // validity only.)
  for (const PatternDatabase *Db : {&GnuRules, &ClangRules}) {
    AutomatonSelector Auto(*Db, Goals);
    TilingSelector Latency(*Db, Goals, CostKind::Latency);
    TilingSelector Size(*Db, Goals, CostKind::Size);
    for (const WorkloadProfile &Profile : cint2000Profiles()) {
      Function F = buildWorkload(Profile, W);
      SelectionResult A = Auto.select(F);
      SelectionResult T = Latency.select(F);
      SelectionResult S = Size.select(F);
      ASSERT_TRUE(A.MF && T.MF && S.MF);
      EXPECT_LE(machineStaticCost(*T.MF, CostKind::Latency),
                machineStaticCost(*A.MF, CostKind::Latency))
          << Profile.Name;
      EXPECT_EQ(A.TotalOperations, S.TotalOperations) << Profile.Name;
    }
  }
}

TEST_F(TilingTest, CostModelPicksCheaperSamePatternRule) {
  // The shipped libraries' key collision in miniature: add_rr and
  // add_ri share the byte-identical pattern Add(a0, a1) (the roles
  // live in the goal spec). Insertion order puts add_rr first and the
  // deterministic priority sort is stable, so first-match commits to
  // add_rr and must materialize the constant with a mov (2
  // instructions). The latency model knows add_ri is one instruction
  // with the constant folded in.
  PatternDatabase Db;
  for (const char *Goal : {"mov_ri", "add_rr", "add_ri"}) {
    Graph Pattern(W, {Sort::value(W), Sort::value(W)});
    if (std::strcmp(Goal, "mov_ri") == 0) {
      Graph Identity(W, {Sort::value(W)});
      Identity.setResults({Identity.arg(0)});
      Db.add(Goal, normalizeGraph(Identity));
      continue;
    }
    Pattern.setResults(
        {Pattern.createBinary(Opcode::Add, Pattern.arg(0), Pattern.arg(1))});
    Db.add(Goal, normalizeGraph(Pattern));
  }

  Function F = singleBlock([](Graph &G) {
    return G.createBinary(Opcode::Add, G.arg(1),
                          G.createConst(BitValue(W, 60)));
  });

  AutomatonSelector Auto(Db, Goals);
  TilingSelector Unit(Db, Goals, CostKind::Unit);
  TilingSelector Latency(Db, Goals, CostKind::Latency);

  SelectionResult A = Auto.select(F);
  SelectionResult U = Unit.select(F);
  SelectionResult L = Latency.select(F);
  ASSERT_TRUE(A.MF && U.MF && L.MF);

  // Unit tiling is first-match, ties broken to the earlier rule.
  EXPECT_EQ(asmBody(*A.MF), asmBody(*U.MF));
  // First-match: mov $60 + add_rr. Latency tiling: one add_ri.
  EXPECT_EQ(A.MF->numInstructions(), L.MF->numInstructions() + 1);
  EXPECT_LT(machineStaticCost(*L.MF, CostKind::Latency),
            machineStaticCost(*A.MF, CostKind::Latency));
}

TEST_F(TilingTest, DagReconvergencePricedOnce) {
  // t = a + b feeds two xors; the DP must price the shared Add cone at
  // its own root exactly once, not once per consumer. Under unit cost
  // every node contributes exactly 1, so the block's best cover cost
  // is its live operation count: 4 (Add, Xor, Xor, And), not 5.
  Function F = singleBlock([](Graph &G) {
    NodeRef T = G.createBinary(Opcode::Add, G.arg(1), G.arg(2));
    NodeRef U = G.createBinary(Opcode::Xor, T, G.arg(1));
    NodeRef V = G.createBinary(Opcode::Xor, T, G.arg(2));
    return G.createBinary(Opcode::And, U, V);
  });

  PreparedLibrary Library(GnuRules, Goals);
  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);
  AutomatonCandidateSource Inner(Library, Automaton);
  TilingCandidateSource Source(Library, Inner, CostKind::Unit);
  Source.prepare(F);
  EXPECT_EQ(Source.bestCoverCost(), 4u);

  // The emitted cover agrees: four instructions, the add emitted once.
  TilingSelector Unit(GnuRules, Goals, CostKind::Unit);
  SelectionResult R = Unit.select(F);
  ASSERT_TRUE(R.MF);
  EXPECT_EQ(R.MF->numInstructions(), 4u);
}

TEST_F(TilingTest, CostTableRoundTripsThroughTextFormat) {
  PreparedLibrary Library(GnuRules, Goals);
  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);
  EXPECT_EQ(Automaton.costVersion(), cost::ModelVersion);
  ASSERT_EQ(Automaton.ruleCosts().size(), Library.rules().size());
  for (size_t I = 0; I < Library.rules().size(); ++I)
    EXPECT_EQ(Automaton.ruleCosts()[I], Library.rules()[I].Cost) << I;

  std::string Error;
  std::optional<MatcherAutomaton> Reloaded =
      MatcherAutomaton::deserialize(Automaton.serialize(), &Error);
  ASSERT_TRUE(Reloaded) << Error;
  EXPECT_EQ(Reloaded->costVersion(), cost::ModelVersion);
  EXPECT_EQ(Reloaded->ruleCosts(), Automaton.ruleCosts());
  EXPECT_TRUE(automatonStalenessError(*Reloaded, Library).empty());
}

TEST_F(TilingTest, LegacyTextFormatParsesButFailsCostStaleness) {
  PreparedLibrary Library(GnuRules, Goals);
  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);

  // Reconstruct what a v1 writer produced: the old tag, no costver
  // header, no per-rule cost lines.
  std::istringstream In(Automaton.serialize());
  std::ostringstream Out;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.rfind("costver", 0) == 0 || Line.rfind("cost ", 0) == 0)
      continue;
    size_t Tag = Line.find(MatcherAutomaton::formatTag());
    if (Tag != std::string::npos)
      Line = Line.substr(0, Tag) + MatcherAutomaton::legacyFormatTag() +
             Line.substr(Tag + std::strlen(MatcherAutomaton::formatTag()));
    Out << Line << "\n";
  }

  std::string Error;
  std::optional<MatcherAutomaton> Legacy =
      MatcherAutomaton::deserialize(Out.str(), &Error);
  ASSERT_TRUE(Legacy) << Error; // v1 images still parse...
  EXPECT_EQ(Legacy->costVersion(), 0u);
  EXPECT_TRUE(Legacy->ruleCosts().empty());
  // ...but a cost-aware consumer must reject them as stale.
  std::string Stale = automatonStalenessError(*Legacy, Library);
  EXPECT_NE(Stale.find("cost"), std::string::npos) << Stale;
}

TEST_F(TilingTest, CostTableRoundTripsThroughBinaryFormat) {
  PreparedLibrary Library(GnuRules, Goals);
  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);

  std::string Path = ::testing::TempDir() + "tiling_costs.matb";
  ASSERT_TRUE(Automaton.writeBinaryFile(Path));
  std::string Error;
  std::unique_ptr<MappedAutomaton> Mapped =
      MatcherAutomaton::mapBinary(Path, &Error);
  ASSERT_TRUE(Mapped) << Error;
  EXPECT_EQ(Mapped->view().costVersion(), cost::ModelVersion);
  for (size_t I = 0; I < Library.rules().size(); ++I)
    EXPECT_EQ(Mapped->view().ruleCost(static_cast<uint32_t>(I)),
              Library.rules()[I].Cost)
        << I;
  EXPECT_TRUE(automatonStalenessError(Mapped->view(), Library).empty());
}

TEST_F(TilingTest, BinaryV1ImageRejectedAsBadVersion) {
  PreparedLibrary Library(GnuRules, Goals);
  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);
  std::string Image = Automaton.serializeBinary();

  // Stamp the pre-cost version and recompute both CRCs, simulating a
  // structurally intact v1 image. The binary format has no upgrade
  // path: the only valid answer is a typed BadVersion rejection.
  uint32_t V1 = binfmt::Version - 1;
  std::memcpy(&Image[offsetof(binfmt::Header, Version)], &V1, sizeof(V1));
  binfmt::Header H;
  std::memcpy(&H, Image.data(), sizeof(H));
  H.PayloadCrc = crc32(Image.data() + sizeof(H), Image.size() - sizeof(H));
  H.HeaderCrc = crc32(&H, offsetof(binfmt::Header, HeaderCrc));
  std::memcpy(&Image[0], &H, sizeof(H));

  std::string Path = ::testing::TempDir() + "tiling_v1.matb";
  {
    std::ofstream Out(Path, std::ios::binary);
    Out.write(Image.data(), static_cast<std::streamsize>(Image.size()));
  }
  std::string Error;
  std::unique_ptr<MappedAutomaton> Mapped =
      MatcherAutomaton::mapBinary(Path, &Error);
  EXPECT_FALSE(Mapped);
  EXPECT_NE(Error.find(binaryAutomatonErrorName(
                BinaryAutomatonError::BadVersion)),
            std::string::npos)
      << Error;
}

TEST_F(TilingTest, ShippedLibraryLatencyTilingStrictlyCheaper) {
  // The acceptance anchor on real artifacts: on the shipped full
  // library the latency model must beat first-match somewhere (the
  // add_rr/add_ri family collides), and never lose anywhere.
  std::string Text;
  for (const char *Candidate :
       {"artifacts/rule-library-full-w8.dat",
        "../artifacts/rule-library-full-w8.dat",
        "../../artifacts/rule-library-full-w8.dat"}) {
    std::ifstream In(Candidate);
    if (!In)
      continue;
    std::stringstream Buffer;
    Buffer << In.rdbuf();
    Text = Buffer.str();
    break;
  }
  if (Text.empty())
    GTEST_SKIP() << "shipped rule library not found";

  std::string Error;
  PatternDatabase Db = PatternDatabase::deserialize(Text, &Error);
  ASSERT_TRUE(Error.empty()) << Error;

  AutomatonSelector Auto(Db, Goals);
  TilingSelector Unit(Db, Goals, CostKind::Unit);
  TilingSelector Latency(Db, Goals, CostKind::Latency);
  uint64_t AutoTotal = 0, TilingTotal = 0;
  for (const WorkloadProfile &Profile : cint2000Profiles()) {
    Function F = buildWorkload(Profile, W);
    SelectionResult A = Auto.select(F);
    SelectionResult U = Unit.select(F);
    SelectionResult L = Latency.select(F);
    ASSERT_TRUE(A.MF && U.MF && L.MF);
    EXPECT_EQ(asmBody(*A.MF), asmBody(*U.MF)) << Profile.Name;
    uint64_t ACost = machineStaticCost(*A.MF, CostKind::Latency);
    uint64_t LCost = machineStaticCost(*L.MF, CostKind::Latency);
    EXPECT_LE(LCost, ACost) << Profile.Name;
    AutoTotal += ACost;
    TilingTotal += LCost;
  }
  EXPECT_LT(TilingTotal, AutoTotal);
}
