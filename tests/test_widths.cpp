//===- test_widths.cpp - Width-parametric behaviour tests ----------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
//
// The paper works at 32 bits; our benchmarks default to 8 bits for
// speed. These tests pin down that nothing in the pipeline is
// specialized to one width: synthesis, selection, and emulation run
// at 8, 16, and 32 bits.
//
//===----------------------------------------------------------------------===//

#include "ir/Printer.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"
#include "x86/Emulator.h"
#include "x86/Goals.h"

#include <gtest/gtest.h>

using namespace selgen;

class WidthTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WidthTest, SynthesizeBasicGoals) {
  unsigned Width = GetParam();
  SmtContext Smt;
  GoalLibrary Goals = GoalLibrary::build(Width, {"Basic"});

  for (const char *Name : {"neg_r", "add_rr", "cmp_jb"}) {
    const GoalInstruction *Goal = Goals.find(Name);
    ASSERT_NE(Goal, nullptr);
    SynthesisOptions Options;
    Options.Width = Width;
    Options.MaxPatternSize = Goal->MaxPatternSize;
    Options.QueryTimeoutMs = 60000;
    Synthesizer Synth(Smt, Options);
    GoalSynthesisResult Result = Synth.synthesize(*Goal->Spec);
    EXPECT_FALSE(Result.Patterns.empty())
        << Name << " at width " << Width;
    for (const Graph &Pattern : Result.Patterns)
      EXPECT_TRUE(
          verifyPatternAgainstGoal(Smt, Width, *Goal->Spec, Pattern))
          << Name << "@" << Width << ": "
          << printGraphExpression(Pattern);
  }
}

TEST_P(WidthTest, MemoryGoalRoundTrip) {
  unsigned Width = GetParam();
  SmtContext Smt;
  GoalLibrary Goals = GoalLibrary::build(Width, {"LoadStore"});
  const GoalInstruction *Goal = Goals.find("mov_store_b");
  ASSERT_NE(Goal, nullptr);

  SynthesisOptions Options;
  Options.Width = Width;
  Options.MaxPatternSize = 1;
  Options.QueryTimeoutMs = 60000;
  Synthesizer Synth(Smt, Options);
  GoalSynthesisResult Result = Synth.synthesize(*Goal->Spec);
  ASSERT_EQ(Result.Patterns.size(), 1u);
  EXPECT_EQ(printGraphExpression(Result.Patterns[0]),
            "Store(a0, a1, a2)");
  // Width/8 bytes means Width/8 valid pointers: M is (w+1)*bytes bits.
  // Check via the initial-test helper.
  std::vector<TestCase> Tests =
      makeInitialTests(*Goal->Spec, Width, Smt, 1, 1);
  EXPECT_EQ(Tests[0][0].width(), (Width / 8) * 9);
}

TEST_P(WidthTest, SelectorsAgreeWithInterpreter) {
  unsigned Width = GetParam();
  Function F("wide", Width);
  BasicBlock *Entry = F.createBlock(
      "entry", {Sort::memory(), Sort::value(Width), Sort::value(Width)});
  {
    Graph &G = Entry->body();
    NodeRef Scaled = G.createBinary(Opcode::Shl, G.arg(2),
                                    G.createConst(BitValue(Width, 2)));
    NodeRef Address = G.createBinary(Opcode::Add, G.arg(1), Scaled);
    NodeRef Stored = G.createStore(G.arg(0), Address, G.arg(2));
    Node *Load = G.createLoad(Stored, Address);
    NodeRef Sum = G.createBinary(Opcode::Add, NodeRef(Load, 1),
                                 G.createUnary(Opcode::Not, G.arg(1)));
    Entry->setReturn({NodeRef(Load, 0), Sum});
  }

  HandwrittenSelector Handwritten;
  SelectionResult Selected = Handwritten.select(F);
  Rng Random(Width);
  for (int Run = 0; Run < 40; ++Run) {
    std::vector<BitValue> Args = {Random.nextBitValue(Width),
                                  Random.nextBitValue(Width)};
    MemoryState Memory;
    FunctionResult Reference = runFunction(F, Args, Memory);
    ASSERT_FALSE(Reference.Undefined);

    std::map<MReg, BitValue> Regs;
    const auto &ArgRegs = Selected.MF->entry()->ArgRegs;
    for (size_t I = 0; I < ArgRegs.size(); ++I)
      Regs[ArgRegs[I]] = Args[I];
    MachineRunResult Machine =
        runMachineFunction(*Selected.MF, Regs, Memory);
    ASSERT_EQ(Machine.ReturnValues.size(), 1u);
    EXPECT_EQ(Machine.ReturnValues[0], Reference.ReturnValues[0])
        << "width " << Width << " run " << Run;
    for (const auto &[Address, Value] : Reference.FinalMemory->bytes())
      EXPECT_EQ(Machine.Memory.peekByte(Address), Value);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthTest,
                         ::testing::Values(8u, 16u, 32u));
