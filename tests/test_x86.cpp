//===- test_x86.cpp - Machine IR, emulator, and passes tests -------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "x86/AddressingMode.h"
#include "x86/Emulator.h"
#include "x86/MachinePasses.h"

#include <gtest/gtest.h>

using namespace selgen;

namespace {

/// Builds a single-block function computing a sequence of instructions
/// over two 8-bit arguments in v0/v1 and returning one value.
struct MiniProgram {
  MachineFunction MF{"test", 8};
  MachineBlock *Block = MF.createBlock("entry");
  MReg A, B;

  MiniProgram() {
    A = MF.newReg();
    B = MF.newReg();
    Block->ArgRegs = {A, B};
  }

  void ret(MOperand Value) {
    Block->terminator().TermKind = MTerminator::Kind::Ret;
    Block->terminator().ReturnValues = {Value};
  }

  MachineRunResult run(uint64_t AV, uint64_t BV,
                       MemoryState Memory = MemoryState()) {
    return runMachineFunction(
        MF, {{A, BitValue(8, AV)}, {B, BitValue(8, BV)}}, Memory);
  }
};

} // namespace

TEST(CondCodes, RelationRoundTrip) {
  for (CondCode CC : relationCondCodes())
    EXPECT_EQ(condCodeForRelation(relationForCondCode(CC)), CC);
}

TEST(Emulator, BasicArithmetic) {
  MiniProgram P;
  MReg T = P.MF.newReg();
  P.Block->append({MOpcode::Add, CondCode::E, MOperand::reg(T),
                   MOperand::reg(P.A), MOperand::reg(P.B)});
  MReg U = P.MF.newReg();
  P.Block->append({MOpcode::Imul, CondCode::E, MOperand::reg(U),
                   MOperand::reg(T), MOperand::imm(BitValue(8, 3))});
  P.ret(MOperand::reg(U));
  EXPECT_EQ(P.run(10, 5).ReturnValues[0].zextValue(), 45u);
}

TEST(Emulator, CmpSetccForAllConditions) {
  // setcc after cmp must agree with the IR relation for every cc.
  for (CondCode CC : relationCondCodes()) {
    Relation Rel = relationForCondCode(CC);
    for (uint64_t AV : {0u, 1u, 127u, 128u, 255u}) {
      for (uint64_t BV : {0u, 1u, 127u, 128u, 255u}) {
        MiniProgram P;
        P.Block->append({MOpcode::Cmp, CondCode::E, {}, MOperand::reg(P.A),
                         MOperand::reg(P.B)});
        MReg T = P.MF.newReg();
        P.Block->append({MOpcode::Setcc, CC, MOperand::reg(T), {}, {}});
        P.ret(MOperand::reg(T));
        bool Expected =
            evaluateRelation(Rel, BitValue(8, AV), BitValue(8, BV));
        EXPECT_EQ(P.run(AV, BV).ReturnValues[0].zextValue(),
                  Expected ? 1u : 0u)
            << condCodeName(CC) << " on " << AV << ", " << BV;
      }
    }
  }
}

TEST(Emulator, SignConditions) {
  // test a, a; js.
  MiniProgram P;
  P.Block->append({MOpcode::Test, CondCode::E, {}, MOperand::reg(P.A),
                   MOperand::reg(P.A)});
  MReg T = P.MF.newReg();
  P.Block->append({MOpcode::Setcc, CondCode::S, MOperand::reg(T), {}, {}});
  P.ret(MOperand::reg(T));
  EXPECT_EQ(P.run(0x80, 0).ReturnValues[0].zextValue(), 1u);
  EXPECT_EQ(P.run(0x7F, 0).ReturnValues[0].zextValue(), 0u);
}

TEST(Emulator, MemoryOperandsAndLea) {
  MiniProgram P;
  MemRef Address;
  Address.Base = P.A;
  Address.Index = P.B;
  Address.Scale = 2;
  Address.Disp = 3;
  MReg T = P.MF.newReg();
  P.Block->append(
      {MOpcode::Lea, CondCode::E, MOperand::reg(T), MOperand::mem(Address),
       {}});
  P.ret(MOperand::reg(T));
  // 0x10 + 2*0x04 + 3 = 0x1B.
  EXPECT_EQ(P.run(0x10, 0x04).ReturnValues[0].zextValue(), 0x1Bu);

  MiniProgram Q;
  MemRef Slot;
  Slot.Base = Q.A;
  Q.Block->append({MOpcode::Mov, CondCode::E, MOperand::mem(Slot),
                   MOperand::reg(Q.B), {}});
  MReg U = Q.MF.newReg();
  Q.Block->append({MOpcode::Mov, CondCode::E, MOperand::reg(U),
                   MOperand::mem(Slot), {}});
  Q.ret(MOperand::reg(U));
  MachineRunResult R = Q.run(0x20, 0x5A);
  EXPECT_EQ(R.ReturnValues[0].zextValue(), 0x5Au);
  EXPECT_EQ(R.Memory.peekByte(0x20), 0x5Au);
}

TEST(Emulator, ReadModifyWrite) {
  MiniProgram P;
  MemRef Slot;
  Slot.Base = P.A;
  MOperand Mem = MOperand::mem(Slot);
  P.Block->append({MOpcode::Add, CondCode::E, Mem, Mem, MOperand::reg(P.B)});
  P.ret(MOperand::imm(BitValue(8, 0)));
  MemoryState Memory;
  Memory.storeByte(0x30, 10);
  MachineRunResult R = P.run(0x30, 7, Memory);
  EXPECT_EQ(R.Memory.peekByte(0x30), 17u);
}

TEST(Emulator, IncDecPreserveCarry) {
  // cmp sets CF; inc must preserve it so a later jb still works.
  MiniProgram P;
  P.Block->append({MOpcode::Cmp, CondCode::E, {}, MOperand::reg(P.A),
                   MOperand::reg(P.B)});
  MReg T = P.MF.newReg();
  P.Block->append(
      {MOpcode::Inc, CondCode::E, MOperand::reg(T), MOperand::reg(P.A), {}});
  MReg U = P.MF.newReg();
  P.Block->append({MOpcode::Setcc, CondCode::B, MOperand::reg(U), {}, {}});
  P.ret(MOperand::reg(U));
  EXPECT_EQ(P.run(1, 2).ReturnValues[0].zextValue(), 1u);
  EXPECT_EQ(P.run(2, 1).ReturnValues[0].zextValue(), 0u);
}

TEST(Emulator, ShiftsMaskCount) {
  MiniProgram P;
  MReg T = P.MF.newReg();
  P.Block->append({MOpcode::Shl, CondCode::E, MOperand::reg(T),
                   MOperand::reg(P.A), MOperand::reg(P.B)});
  P.ret(MOperand::reg(T));
  // Count 9 masks to 1 at width 8.
  EXPECT_EQ(P.run(3, 9).ReturnValues[0].zextValue(), 6u);
}

TEST(Emulator, RotatesAndBmi) {
  MiniProgram P;
  MReg T = P.MF.newReg();
  P.Block->append({MOpcode::Rol, CondCode::E, MOperand::reg(T),
                   MOperand::reg(P.A), MOperand::imm(BitValue(8, 1))});
  MReg U = P.MF.newReg();
  P.Block->append(
      {MOpcode::Blsr, CondCode::E, MOperand::reg(U), MOperand::reg(T), {}});
  P.ret(MOperand::reg(U));
  // rol(0x81, 1) = 0x03; blsr(0x03) = 0x02.
  EXPECT_EQ(P.run(0x81, 0).ReturnValues[0].zextValue(), 0x02u);
}

TEST(Emulator, CmovBothWays) {
  for (uint64_t AV : {1u, 5u}) {
    MiniProgram P;
    P.Block->append({MOpcode::Cmp, CondCode::E, {}, MOperand::reg(P.A),
                     MOperand::imm(BitValue(8, 3))});
    MReg T = P.MF.newReg();
    P.Block->append({MOpcode::Cmov, CondCode::L, MOperand::reg(T),
                     MOperand::imm(BitValue(8, 100)),
                     MOperand::imm(BitValue(8, 200))});
    P.ret(MOperand::reg(T));
    EXPECT_EQ(P.run(AV, 0).ReturnValues[0].zextValue(),
              AV < 3 ? 100u : 200u);
  }
}

TEST(Emulator, CostsRewardFolding) {
  // A folded load (mem source operand) must cost less than separate
  // load + op; a RMW must cost less than load + op + store.
  MachineInstr Load{MOpcode::Mov, CondCode::E, MOperand::reg(1),
                    MOperand::mem(MemRef{}), {}};
  MachineInstr Op{MOpcode::Add, CondCode::E, MOperand::reg(2),
                  MOperand::reg(0), MOperand::reg(1)};
  MachineInstr Folded{MOpcode::Add, CondCode::E, MOperand::reg(2),
                      MOperand::reg(0), MOperand::mem(MemRef{})};
  EXPECT_LT(instructionCost(Folded),
            instructionCost(Load) + instructionCost(Op));

  MachineInstr Store{MOpcode::Mov, CondCode::E, MOperand::mem(MemRef{}),
                     MOperand::reg(2), {}};
  MachineInstr Rmw{MOpcode::Add, CondCode::E, MOperand::mem(MemRef{}),
                   MOperand::mem(MemRef{}), MOperand::reg(0)};
  EXPECT_LT(instructionCost(Rmw), instructionCost(Load) +
                                      instructionCost(Op) +
                                      instructionCost(Store));
}

TEST(Emulator, StepLimit) {
  // Jumps count toward the instruction budget, so even an empty
  // spinning block terminates with StepLimitHit.
  MachineFunction MF("spin", 8);
  MachineBlock *Block = MF.createBlock("entry");
  Block->terminator().TermKind = MTerminator::Kind::Jmp;
  Block->terminator().Then = Block;
  MachineRunResult R =
      runMachineFunction(MF, {}, MemoryState(), /*MaxInstructions=*/100);
  EXPECT_TRUE(R.StepLimitHit);
}

TEST(MachinePasses, RemovesDeadCode) {
  MiniProgram P;
  MReg Dead = P.MF.newReg();
  P.Block->append({MOpcode::Shl, CondCode::E, MOperand::reg(Dead),
                   MOperand::reg(P.B), MOperand::imm(BitValue(8, 2))});
  MReg T = P.MF.newReg();
  P.Block->append({MOpcode::Add, CondCode::E, MOperand::reg(T),
                   MOperand::reg(P.A), MOperand::reg(P.B)});
  P.ret(MOperand::reg(T));
  EXPECT_EQ(removeDeadInstructions(P.MF), 1u);
  EXPECT_EQ(P.MF.numInstructions(), 1u);
  EXPECT_EQ(P.run(4, 5).ReturnValues[0].zextValue(), 9u);
}

TEST(MachinePasses, KeepsFlagSettersForConsumers) {
  MiniProgram P;
  // The cmp's register result... cmp has none; but an add whose result
  // is dead still feeds the setcc through flags and must stay.
  MReg Dead = P.MF.newReg();
  P.Block->append({MOpcode::Sub, CondCode::E, MOperand::reg(Dead),
                   MOperand::reg(P.A), MOperand::reg(P.B)});
  MReg T = P.MF.newReg();
  P.Block->append({MOpcode::Setcc, CondCode::E, MOperand::reg(T), {}, {}});
  P.ret(MOperand::reg(T));
  EXPECT_EQ(removeDeadInstructions(P.MF), 0u);
  EXPECT_EQ(P.run(7, 7).ReturnValues[0].zextValue(), 1u);
  EXPECT_EQ(P.run(7, 8).ReturnValues[0].zextValue(), 0u);
}

TEST(MachinePasses, RemovesDeadCompare) {
  MiniProgram P;
  P.Block->append({MOpcode::Cmp, CondCode::E, {}, MOperand::reg(P.A),
                   MOperand::reg(P.B)});
  P.ret(MOperand::reg(P.A));
  EXPECT_EQ(removeDeadInstructions(P.MF), 1u);
}

TEST(MachinePasses, TransitiveDeadChains) {
  MiniProgram P;
  MReg T1 = P.MF.newReg(), T2 = P.MF.newReg();
  P.Block->append({MOpcode::Not, CondCode::E, MOperand::reg(T1),
                   MOperand::reg(P.A), {}});
  P.Block->append({MOpcode::Not, CondCode::E, MOperand::reg(T2),
                   MOperand::reg(T1), {}});
  P.ret(MOperand::reg(P.B));
  EXPECT_EQ(removeDeadInstructions(P.MF), 2u);
}

TEST(AddressingModes, SuffixesAndComponents) {
  EXPECT_EQ(AddressingMode({true, false, 1, false}).suffix(), "b");
  EXPECT_EQ(AddressingMode({true, false, 1, true}).suffix(), "bd");
  EXPECT_EQ(AddressingMode({true, true, 1, false}).suffix(), "bi");
  EXPECT_EQ(AddressingMode({true, true, 4, true}).suffix(), "bisd4");
  EXPECT_EQ(AddressingMode({true, true, 8, false}).numComponents(), 3u);
  EXPECT_EQ(AddressingMode::fullSet().size(), 10u);
}

TEST(AddressingModes, MemRefConstruction) {
  AddressingMode AM{true, true, 4, true};
  std::vector<MOperand> Bound = {MOperand::none(), MOperand::reg(7),
                                 MOperand::reg(9),
                                 MOperand::imm(BitValue(8, 0xFE))};
  MemRef Ref = AM.memRef(Bound, 1);
  EXPECT_EQ(*Ref.Base, 7u);
  EXPECT_EQ(*Ref.Index, 9u);
  EXPECT_EQ(Ref.Scale, 4u);
  EXPECT_EQ(Ref.Disp, -2); // Sign-extended displacement.
}

TEST(MachineIR, Printing) {
  MachineInstr Instr{MOpcode::Add, CondCode::E, MOperand::reg(2),
                     MOperand::reg(0), MOperand::imm(BitValue(8, 255))};
  EXPECT_EQ(printMachineInstr(Instr), "add %v0, $-1, %v2");
  MemRef Address;
  Address.Base = 1;
  Address.Index = 3;
  Address.Scale = 4;
  Address.Disp = 42;
  MachineInstr Lea{MOpcode::Lea, CondCode::E, MOperand::reg(5),
                   MOperand::mem(Address),
                   {}};
  EXPECT_EQ(printMachineInstr(Lea), "lea 42(%v1,%v3,4), %v5");
}
