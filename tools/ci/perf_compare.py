#!/usr/bin/env python3
"""CI perf-regression guard for the selgen tools.

Two subcommands, used by the perf-guard job in .github/workflows/ci.yml:

  measure --name NAME --out FILE [--stats STATS_JSON]
          [--metric NAME=REGEX]... -- CMD ARGS...
      Runs CMD, records its wall time (and, if --stats points at a
      --stats-json dump the command produced, its counters) as a small
      JSON measurement record. Each --metric extracts one number from
      the command's stdout via REGEX (first capture group, applied to
      the whole output) — used for benchmark harnesses like
      bench_85_server_latency that report latency percentiles in their
      table output rather than a stats JSON.

  compare --base DIR --pr DIR [--max-wall-regression 0.20]
          [--counters a,b,c]
      Pairs up measurement records by name between the merge-base and
      PR directories. Fails (exit 1) when any PR wall time regressed
      by more than the threshold, or when any of the named counters
      drifted between base and PR. Counter drift is an identity check:
      the guarded counters (solver retries, cache hits, matcher work)
      are deterministic for a fixed workload, so *any* change is a
      behavior change someone should have to explain in the PR.

The job runs with continue-on-error: the guard is advisory — it makes
regressions loud without blocking an intentional trade-off.
"""

import argparse
import json
import pathlib
import re
import subprocess
import sys
import time


def cmd_measure(args):
    capture = bool(args.metric)
    start = time.monotonic()
    result = subprocess.run(args.command,
                            stdout=subprocess.PIPE if capture else None,
                            text=capture)
    wall = time.monotonic() - start
    if capture and result.stdout:
        sys.stdout.write(result.stdout)
    if result.returncode != 0:
        print(f"perf_compare: '{' '.join(args.command)}' exited "
              f"{result.returncode}", file=sys.stderr)
        return result.returncode

    record = {"name": args.name, "wall_seconds": round(wall, 3),
              "counters": {}, "metrics": {}}
    for spec in args.metric or []:
        name, _, regex = spec.partition("=")
        if not regex:
            print(f"perf_compare: bad --metric '{spec}' (want NAME=REGEX)",
                  file=sys.stderr)
            return 1
        match = re.search(regex, result.stdout or "")
        if match:
            record["metrics"][name] = float(match.group(1))
        else:
            print(f"perf_compare: metric {name}: no match for /{regex}/",
                  file=sys.stderr)
    if args.stats:
        try:
            with open(args.stats) as fh:
                stats = json.load(fh)
            record["counters"] = {
                key: value for key, value in stats.items()
                if isinstance(value, (int, float))
            }
        except (OSError, ValueError) as error:
            print(f"perf_compare: cannot read stats {args.stats}: {error}",
                  file=sys.stderr)

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"perf_compare: {args.name}: {record['wall_seconds']}s "
          f"({len(record['counters'])} counters)")
    return 0


def load_records(directory):
    records = {}
    for path in sorted(pathlib.Path(directory).glob("*.json")):
        with open(path) as fh:
            record = json.load(fh)
        records[record["name"]] = record
    return records


def cmd_compare(args):
    base = load_records(args.base)
    pr = load_records(args.pr)
    counters = [c for c in args.counters.split(",") if c]
    failures = []

    for name in sorted(set(base) | set(pr)):
        if name not in base or name not in pr:
            print(f"  {name}: only present on "
                  f"{'PR' if name in pr else 'base'} side; skipped")
            continue
        b, p = base[name], pr[name]

        b_wall, p_wall = b["wall_seconds"], p["wall_seconds"]
        ratio = p_wall / b_wall if b_wall > 0 else 1.0
        verdict = "ok"
        if ratio > 1.0 + args.max_wall_regression:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: wall {b_wall}s -> {p_wall}s "
                f"(+{(ratio - 1) * 100:.0f}% > "
                f"{args.max_wall_regression * 100:.0f}% budget)")
        print(f"  {name}: wall {b_wall}s -> {p_wall}s "
              f"({(ratio - 1) * 100:+.0f}%) [{verdict}]")

        for counter in counters:
            b_value = b.get("counters", {}).get(counter)
            p_value = p.get("counters", {}).get(counter)
            if b_value is None or p_value is None:
                continue  # Counter not produced by this measurement.
            if b_value != p_value:
                failures.append(
                    f"{name}: counter {counter} drifted "
                    f"{b_value} -> {p_value}")
                print(f"    {counter}: {b_value} -> {p_value} [DRIFT]")

        # Metrics (latency percentiles etc.) are informational: timing
        # noise makes exact gates flappy, so only the wall-time budget
        # fails the compare — but the side-by-side numbers are printed
        # for the reviewer.
        for metric in sorted(set(b.get("metrics", {}))
                             & set(p.get("metrics", {}))):
            b_value, p_value = b["metrics"][metric], p["metrics"][metric]
            delta = ((p_value / b_value - 1) * 100) if b_value else 0.0
            print(f"    {metric}: {b_value} -> {p_value} ({delta:+.0f}%)")

    if failures:
        print("\nperf_compare: FAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf_compare: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="subcommand", required=True)

    measure = sub.add_parser("measure")
    measure.add_argument("--name", required=True)
    measure.add_argument("--out", required=True)
    measure.add_argument("--stats",
                         help="--stats-json file the command wrote")
    measure.add_argument("--metric", action="append",
                         help="NAME=REGEX extracting a number from stdout")
    measure.add_argument("command", nargs="+",
                         help="command to run (after --)")
    measure.set_defaults(func=cmd_measure)

    compare = sub.add_parser("compare")
    compare.add_argument("--base", required=True)
    compare.add_argument("--pr", required=True)
    compare.add_argument("--max-wall-regression", type=float, default=0.20)
    compare.add_argument("--counters", default="")
    compare.set_defaults(func=cmd_compare)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
