#!/usr/bin/env python3
"""Minimal selgen-served client for CI smoke tests.

Speaks the selgen frame protocol (support/Wire.h) over a unix socket
or over the stdin/stdout of a spawned server, sends one batch of
workload names, and writes each returned machine-code listing to
OUTDIR/<workload>.s -- the same layout `selgen-compile --dump-asm`
produces, so the smoke job can `diff -r` the two directly.

  serve_client.py --socket /tmp/selgen.sock --width 8 --out DIR 164.gzip ...
  serve_client.py --spawn "./selgen-served --library rules.dat" ...
  serve_client.py --socket /tmp/selgen.sock --probe --wait-ms 10000

The server answers transient pressure with typed Error frames
(serve/ServeProtocol.h): `overloaded`, `timeout`, and `shutting-down`
carry a retry-after hint, and in --socket mode the client retries
those (and connect failures / torn streams, which the chaos sweep
injects deliberately) with bounded exponential backoff. Permanent
rejections (`bad-request`, `unsupported`) are never retried.

--probe sends one health request instead of a batch and prints the
decoded reply; with --wait-ms it re-probes until the server is ready,
making it the CI readiness gate.

Exit codes: 0 all results written (or probe healthy), 1 protocol or
usage error, 2 the server's final answer was a typed Error even after
retries.
"""

import argparse
import os
import shlex
import socket
import struct
import subprocess
import sys
import time
import zlib

FRAME_MAGIC = 0x53474C46
TYPE_REQUEST = 1
TYPE_RESPONSE = 2
TYPE_ERROR = 3
TYPE_SHUTDOWN = 4
MAX_FRAME = 64 << 20

ERROR_TAG = b"selgen-serve-error-v1"
HEALTH_REPLY_TAG = b"selgen-serve-health-reply-v1"
RETRYABLE = ("overloaded", "timeout", "shutting-down")


def encode_frame(ftype, payload):
    return (
        struct.pack("<IBI", FRAME_MAGIC, ftype, len(payload))
        + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
        + payload
    )


def read_exactly(readfn, n):
    buf = b""
    while len(buf) < n:
        chunk = readfn(n - len(buf))
        if not chunk:
            raise EOFError("stream closed mid-frame")
        buf += chunk
    return buf


def read_frame(readfn):
    header = read_exactly(readfn, 13)
    magic, ftype, length = struct.unpack("<IBI", header[:9])
    (crc,) = struct.unpack("<I", header[9:13])
    if magic != FRAME_MAGIC or length > MAX_FRAME:
        raise IOError("corrupt frame header")
    payload = read_exactly(readfn, length)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise IOError("frame CRC mismatch")
    return ftype, payload


def encode_batch(batch_id, width, workloads):
    lines = ["selgen-serve-batch-v1", "id %d" % batch_id, "width %d" % width]
    lines += ["workload %s" % w for w in workloads]
    lines.append("end")
    return ("\n".join(lines) + "\n").encode()


def encode_health():
    return b"selgen-serve-health-v1\nend\n"


def decode_serve_error(payload):
    """Returns (code, retry_after_ms, message). Mirrors the total C++
    decoder: anything unparseable is an `internal` bare message."""
    lines = payload.split(b"\n")
    if not lines or lines[0] != ERROR_TAG or len(lines) < 2 \
            or not lines[1].startswith(b"code "):
        return "internal", 0, payload.decode(errors="replace")
    code = lines[1][5:].decode(errors="replace")
    retry_after = 0
    message = ""
    body = payload.split(b"\n", 2)[2] if payload.count(b"\n") >= 2 else b""
    pos = 0
    while pos < len(body):
        end = body.find(b"\n", pos)
        if end < 0:
            break
        line = body[pos:end]
        pos = end + 1
        if line == b"end":
            break
        if line.startswith(b"retry-after-ms "):
            try:
                retry_after = int(line[15:])
            except ValueError:
                pass
        elif line.startswith(b"message "):
            try:
                n = int(line[8:])
            except ValueError:
                break
            message = body[pos : pos + n].decode(errors="replace")
            pos += n + 1  # skip the block's newline terminator
    return code, retry_after, message


def decode_health_reply(payload):
    fields = {}
    lines = payload.split(b"\n")
    if not lines or lines[0] != HEALTH_REPLY_TAG:
        raise IOError("not a health reply")
    for line in lines[1:]:
        if line == b"end":
            return fields
        if b" " in line:
            key, value = line.split(b" ", 1)
            fields[key.decode()] = value.decode(errors="replace")
    raise IOError("missing end trailer")


def decode_reply(payload):
    """Returns [(workload, asm_bytes)] preserving duplicates."""
    results = []
    pos = 0

    def next_line():
        nonlocal pos
        end = payload.index(b"\n", pos)
        line = payload[pos:end]
        pos = end + 1
        return line

    if next_line() != b"selgen-serve-reply-v1":
        raise IOError("bad reply tag")
    next_line()  # id
    next_line()  # wall
    while True:
        line = next_line()
        if line == b"end":
            return results
        parts = line.split(b" ")
        if parts[0] != b"result" or len(parts) != 9:
            raise IOError("bad result line: %r" % line)
        name = parts[1].decode()
        asm_bytes = int(parts[8])
        asm = payload[pos : pos + asm_bytes]
        pos += asm_bytes
        if payload[pos : pos + 1] != b"\n":
            raise IOError("missing asm terminator")
        pos += 1
        results.append((name, asm))


def socket_exchange(path, request_payload, shutdown_after):
    """One connect / one request / one reply. Raises OSError or IOError
    on transport trouble (retryable); returns (ftype, payload)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    try:
        sock.settimeout(60)
        sock.connect(path)
        sock.sendall(encode_frame(TYPE_REQUEST, request_payload))
        if shutdown_after:
            sock.sendall(encode_frame(TYPE_SHUTDOWN, b""))
        return read_frame(sock.recv)
    finally:
        sock.close()


def backoff_ms(attempt, retry_after, base_ms):
    """Server hint wins; otherwise exponential from base_ms, capped."""
    if retry_after > 0:
        return min(retry_after, 5000)
    return min(base_ms * (1 << attempt), 5000)


def run_probe(args):
    deadline = time.monotonic() + args.wait_ms / 1000.0
    attempt = 0
    last = "no attempt made"
    while True:
        try:
            ftype, payload = socket_exchange(args.socket, encode_health(), False)
            if ftype == TYPE_ERROR:
                code, _, message = decode_serve_error(payload)
                last = "typed error %s: %s" % (code, message)
            else:
                fields = decode_health_reply(payload)
                print(" ".join("%s=%s" % kv for kv in sorted(fields.items())))
                return 0
        except (OSError, EOFError) as exc:
            last = str(exc)
        if time.monotonic() >= deadline:
            sys.stderr.write("probe failed after %d attempt(s): %s\n"
                             % (attempt + 1, last))
            return 1
        time.sleep(backoff_ms(attempt, 0, args.backoff_ms) / 1000.0)
        attempt += 1


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", help="unix socket path of a running server")
    parser.add_argument("--spawn", help="server command to spawn on stdin/stdout")
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--out", help="directory for .s files")
    parser.add_argument("--repeat", type=int, default=1,
                        help="send each workload this many times")
    parser.add_argument("--probe", action="store_true",
                        help="send a health probe instead of a batch")
    parser.add_argument("--wait-ms", type=int, default=0,
                        help="with --probe: keep probing this long for readiness")
    parser.add_argument("--max-retries", type=int, default=5,
                        help="retry budget for transient failures (socket mode)")
    parser.add_argument("--backoff-ms", type=int, default=50,
                        help="base backoff when the server sends no hint")
    parser.add_argument("workloads", nargs="*")
    args = parser.parse_args()
    if bool(args.socket) == bool(args.spawn):
        parser.error("exactly one of --socket / --spawn is required")
    if args.probe:
        if not args.socket:
            parser.error("--probe requires --socket")
        return run_probe(args)
    if not args.out or not args.workloads:
        parser.error("--out and at least one workload are required")

    batch = encode_batch(1, args.width, args.workloads * args.repeat)
    retries = 0

    if args.socket:
        attempt = 0
        while True:
            try:
                ftype, payload = socket_exchange(args.socket, batch, True)
            except (OSError, EOFError) as exc:
                # Connect refusal, torn stream, CRC mismatch: all
                # transient under the chaos sweep's injected faults.
                if attempt >= args.max_retries:
                    sys.stderr.write("transport failed after %d retries: %s\n"
                                     % (retries, exc))
                    return 1
                time.sleep(backoff_ms(attempt, 0, args.backoff_ms) / 1000.0)
                attempt += 1
                retries += 1
                continue
            if ftype == TYPE_ERROR:
                code, retry_after, message = decode_serve_error(payload)
                if code in RETRYABLE and attempt < args.max_retries:
                    time.sleep(backoff_ms(attempt, retry_after,
                                          args.backoff_ms) / 1000.0)
                    attempt += 1
                    retries += 1
                    continue
                sys.stderr.write("server error [%s] after %d retries: %s\n"
                                 % (code, retries, message))
                return 2
            break
    else:
        proc = subprocess.Popen(shlex.split(args.spawn),
                                stdin=subprocess.PIPE, stdout=subprocess.PIPE)
        proc.stdin.write(encode_frame(TYPE_REQUEST, batch))
        proc.stdin.write(encode_frame(TYPE_SHUTDOWN, b""))
        proc.stdin.flush()
        ftype, payload = read_frame(proc.stdout.read)
        if ftype == TYPE_ERROR:
            code, _, message = decode_serve_error(payload)
            sys.stderr.write("server error [%s]: %s\n" % (code, message))
            proc.stdin.close()
            proc.wait(timeout=30)
            return 2
        proc.stdin.close()
        if proc.wait(timeout=30) != 0:
            sys.stderr.write("server exited with %d\n" % proc.returncode)
            return 1

    if ftype != TYPE_RESPONSE:
        sys.stderr.write("unexpected frame type %d\n" % ftype)
        return 1

    results = decode_reply(payload)
    os.makedirs(args.out, exist_ok=True)
    for name, asm in results:
        with open(os.path.join(args.out, name + ".s"), "wb") as fh:
            fh.write(asm)
    print("wrote %d results to %s (retries=%d)" % (len(results), args.out,
                                                   retries))
    return 0


if __name__ == "__main__":
    sys.exit(main())
