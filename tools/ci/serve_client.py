#!/usr/bin/env python3
"""Minimal selgen-served client for CI smoke tests.

Speaks the selgen frame protocol (support/Wire.h) over a unix socket
or over the stdin/stdout of a spawned server, sends one batch of
workload names, and writes each returned machine-code listing to
OUTDIR/<workload>.s -- the same layout `selgen-compile --dump-asm`
produces, so the smoke job can `diff -r` the two directly.

  serve_client.py --socket /tmp/selgen.sock --width 8 --out DIR 164.gzip ...
  serve_client.py --spawn "./selgen-served --library rules.dat" ...

Exit codes: 0 all results written, 1 protocol/usage error, 2 server
returned an Error frame.
"""

import argparse
import os
import shlex
import socket
import struct
import subprocess
import sys
import zlib

FRAME_MAGIC = 0x53474C46
TYPE_REQUEST = 1
TYPE_RESPONSE = 2
TYPE_ERROR = 3
TYPE_SHUTDOWN = 4
MAX_FRAME = 64 << 20


def encode_frame(ftype, payload):
    return (
        struct.pack("<IBI", FRAME_MAGIC, ftype, len(payload))
        + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
        + payload
    )


def read_exactly(readfn, n):
    buf = b""
    while len(buf) < n:
        chunk = readfn(n - len(buf))
        if not chunk:
            raise EOFError("stream closed mid-frame")
        buf += chunk
    return buf


def read_frame(readfn):
    header = read_exactly(readfn, 13)
    magic, ftype, length = struct.unpack("<IBI", header[:9])
    (crc,) = struct.unpack("<I", header[9:13])
    if magic != FRAME_MAGIC or length > MAX_FRAME:
        raise IOError("corrupt frame header")
    payload = read_exactly(readfn, length)
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise IOError("frame CRC mismatch")
    return ftype, payload


def encode_batch(batch_id, width, workloads):
    lines = ["selgen-serve-batch-v1", "id %d" % batch_id, "width %d" % width]
    lines += ["workload %s" % w for w in workloads]
    lines.append("end")
    return ("\n".join(lines) + "\n").encode()


def decode_reply(payload):
    """Returns {workload: asm_bytes} preserving duplicates by suffixing."""
    results = []
    pos = 0

    def next_line():
        nonlocal pos
        end = payload.index(b"\n", pos)
        line = payload[pos:end]
        pos = end + 1
        return line

    if next_line() != b"selgen-serve-reply-v1":
        raise IOError("bad reply tag")
    next_line()  # id
    next_line()  # wall
    while True:
        line = next_line()
        if line == b"end":
            return results
        parts = line.split(b" ")
        if parts[0] != b"result" or len(parts) != 9:
            raise IOError("bad result line: %r" % line)
        name = parts[1].decode()
        asm_bytes = int(parts[8])
        asm = payload[pos : pos + asm_bytes]
        pos += asm_bytes
        if payload[pos : pos + 1] != b"\n":
            raise IOError("missing asm terminator")
        pos += 1
        results.append((name, asm))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--socket", help="unix socket path of a running server")
    parser.add_argument("--spawn", help="server command to spawn on stdin/stdout")
    parser.add_argument("--width", type=int, default=8)
    parser.add_argument("--out", required=True, help="directory for .s files")
    parser.add_argument("--repeat", type=int, default=1,
                        help="send each workload this many times")
    parser.add_argument("workloads", nargs="+")
    args = parser.parse_args()
    if bool(args.socket) == bool(args.spawn):
        parser.error("exactly one of --socket / --spawn is required")

    batch = encode_batch(1, args.width, args.workloads * args.repeat)
    request = encode_frame(TYPE_REQUEST, batch)

    proc = None
    if args.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(args.socket)
        sock.sendall(request)
        sock.sendall(encode_frame(TYPE_SHUTDOWN, b""))
        readfn = sock.recv
    else:
        proc = subprocess.Popen(shlex.split(args.spawn),
                                stdin=subprocess.PIPE, stdout=subprocess.PIPE)
        proc.stdin.write(request)
        proc.stdin.write(encode_frame(TYPE_SHUTDOWN, b""))
        proc.stdin.flush()
        readfn = proc.stdout.read

    ftype, payload = read_frame(readfn)
    if ftype == TYPE_ERROR:
        sys.stderr.write("server error: %s\n" % payload.decode(errors="replace"))
        return 2
    if ftype != TYPE_RESPONSE:
        sys.stderr.write("unexpected frame type %d\n" % ftype)
        return 1

    results = decode_reply(payload)
    os.makedirs(args.out, exist_ok=True)
    for name, asm in results:
        with open(os.path.join(args.out, name + ".s"), "wb") as fh:
            fh.write(asm)
    print("wrote %d results to %s" % (len(results), args.out))

    if proc:
        proc.stdin.close()
        if proc.wait(timeout=30) != 0:
            sys.stderr.write("server exited with %d\n" % proc.returncode)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
