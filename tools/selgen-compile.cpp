//===- selgen-compile.cpp - Compile workloads with a rule library ---------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The build-compiler.sh/spec.sh analogue: load a synthesized rule
// library, generate an instruction selector from it, compile one of
// the synthetic CINT2000-profile workloads (or all of them), and
// report machine code, coverage, and emulator cycles against the
// hand-tuned baseline.
//
//   selgen-compile --library rules.dat --benchmark 186.crafty --print-asm
//   selgen-compile --library rules.dat            # all benchmarks
//   selgen-compile --library rules.dat --selector linear
//   selgen-compile --library rules.dat --automaton rules.mat --stats-json s.json
//
// --selector picks how rules are matched: "auto" (default) compiles
// the library into a discrimination-tree automaton, "tiling" adds the
// cost-minimal DAG-tiling pre-pass on top of the automaton (see
// --cost-model; "unit" reproduces auto's output byte-identically),
// "linear" tries the rules one by one as the paper's prototype does
// (same machine code, slower matching), "handwritten" bypasses the
// rule library entirely.
// --automaton loads a pre-compiled automaton file emitted by
// selgen-matchergen instead of compiling in memory; both the text
// (.mat) and binary (.matb, mmap'ed with zero deserialization)
// formats are accepted by sniffing, and a stale file (one whose
// library fingerprint does not match) is rejected. Loading a
// serialized automaton reuses the staleness check's prepared library
// (selector.prepare_skipped). --dump-asm DIR writes the primary
// selector's machine code to DIR/<benchmark>.s, one file per
// benchmark — the byte-identity anchor for the compile-server tests.
//
//===----------------------------------------------------------------------===//

#include "eval/Workloads.h"
#include "isel/AutomatonSelector.h"
#include "isel/GeneratedSelector.h"
#include "isel/HandwrittenSelector.h"
#include "isel/TilingSelector.h"
#include "support/CommandLine.h"
#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "x86/Emulator.h"

#include <cstdio>
#include <fstream>
#include <memory>

#include <sys/stat.h>

using namespace selgen;

namespace {

struct RunOutcome {
  uint64_t Cycles = 0;
  bool Mismatch = false;
};

RunOutcome runSelected(const Function &F, const MachineFunction &MF,
                       unsigned Width, unsigned Runs) {
  RunOutcome Outcome;
  Rng Random(1234);
  for (unsigned Run = 0; Run < Runs; ++Run) {
    std::vector<BitValue> Args = {Random.nextBitValue(Width),
                                  Random.nextBitValue(Width),
                                  Random.nextBitValue(Width)};
    MemoryState Memory;
    for (unsigned B = 0; B < 256; ++B)
      Memory.storeByte(B, static_cast<uint8_t>(Random.nextBelow(256)));
    FunctionResult Reference = runFunction(F, Args, Memory, 1u << 22);

    std::map<MReg, BitValue> Regs;
    const auto &ArgRegs = MF.entry()->ArgRegs;
    for (size_t I = 0; I < ArgRegs.size(); ++I)
      Regs[ArgRegs[I]] = Args[I];
    MachineRunResult Machine =
        runMachineFunction(MF, Regs, Memory, 1u << 24);
    Outcome.Cycles += Machine.Cycles;
    if (Reference.ReturnValues.empty() ||
        Machine.ReturnValues.size() != 1 ||
        Machine.ReturnValues[0] != Reference.ReturnValues[0])
      Outcome.Mismatch = true;
  }
  return Outcome;
}

} // namespace

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {
      "library",    "benchmark", "width",      "runs",     "print-asm",
      "selector",   "automaton", "stats-json", "dump-asm", "cost-model",
      "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help")) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n",
                 CommandLine::usage("selgen-compile", Flags).c_str());
    return Cli.hasFlag("help") ? 0 : 1;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  unsigned Runs = static_cast<unsigned>(Cli.intOption("runs", 3));
  std::string LibraryPath = Cli.stringOption("library", "rules.dat");
  std::string SelectorName = Cli.stringOption("selector", "auto");
  std::string AutomatonPath = Cli.stringOption("automaton", "");
  if (SelectorName != "auto" && SelectorName != "tiling" &&
      SelectorName != "linear" && SelectorName != "handwritten") {
    std::fprintf(
        stderr,
        "error: unknown --selector '%s' (auto|tiling|linear|handwritten)\n",
        SelectorName.c_str());
    return 1;
  }
  if (!AutomatonPath.empty() && SelectorName != "auto" &&
      SelectorName != "tiling") {
    std::fprintf(stderr,
                 "error: --automaton requires --selector auto or tiling\n");
    return 1;
  }
  std::string CostModelName = Cli.stringOption("cost-model", "unit");
  std::optional<CostKind> CostModel = parseCostKind(CostModelName);
  if (!CostModel) {
    std::fprintf(stderr,
                 "error: unknown --cost-model '%s' (unit|latency|size)\n",
                 CostModelName.c_str());
    return 1;
  }
  if (Cli.stringOption("cost-model", "").size() && SelectorName != "tiling") {
    std::fprintf(stderr, "error: --cost-model requires --selector tiling\n");
    return 1;
  }

  PatternDatabase Database = PatternDatabase::loadFromFile(LibraryPath);
  Database.filterNonNormalized();
  Database.sortSpecificFirst();
  GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());

  HandwrittenSelector Handwritten;
  std::unique_ptr<InstructionSelector> RuleDriven;
  // Keeps a mapped binary image alive for the selector borrowing it.
  std::unique_ptr<MappedAutomaton> Mapped;
  size_t UsableRules = 0;
  const bool Tiling = SelectorName == "tiling";
  if (SelectorName == "auto" || Tiling) {
    if (!AutomatonPath.empty() && isBinaryAutomatonFile(AutomatonPath)) {
      // Binary image: mmap, validate, and match off the mapped bytes.
      std::string LoadError;
      Mapped = MatcherAutomaton::mapBinary(AutomatonPath, &LoadError);
      if (!Mapped) {
        std::fprintf(stderr, "error: %s\n", LoadError.c_str());
        return 1;
      }
      PreparedLibrary Prepared(Database, Goals);
      std::string Stale =
          automatonStalenessError(Mapped->view(), Prepared);
      if (!Stale.empty()) {
        std::fprintf(stderr, "error: %s\n", Stale.c_str());
        return 1;
      }
      Statistics::get().add("selector.prepare_skipped", 1);
      UsableRules = Prepared.rules().size();
      std::printf("automaton: %zu states, %llu transitions (mapped from "
                  "%s)\n",
                  Mapped->view().numStates(),
                  static_cast<unsigned long long>(
                      Mapped->view().numTransitions()),
                  AutomatonPath.c_str());
      if (Tiling)
        RuleDriven = std::make_unique<TilingSelector>(
            std::move(Prepared), Mapped->view(), *CostModel);
      else
        RuleDriven = std::make_unique<MappedAutomatonSelector>(
            std::move(Prepared), Mapped->view());
    } else if (!AutomatonPath.empty()) {
      std::string LoadError;
      std::optional<MatcherAutomaton> Loaded =
          MatcherAutomaton::loadFile(AutomatonPath, &LoadError);
      if (!Loaded) {
        std::fprintf(stderr, "error: %s\n", LoadError.c_str());
        return 1;
      }
      PreparedLibrary Prepared(Database, Goals);
      std::string Stale = automatonStalenessError(*Loaded, Prepared);
      if (!Stale.empty()) {
        std::fprintf(stderr, "error: %s\n", Stale.c_str());
        return 1;
      }
      // The staleness check above already prepared the library; hand
      // it to the selector instead of re-preparing (re-sorting) it.
      Statistics::get().add("selector.prepare_skipped", 1);
      UsableRules = Prepared.rules().size();
      std::printf("automaton: %zu states, %llu transitions (loaded from "
                  "%s)\n",
                  Loaded->numStates(),
                  static_cast<unsigned long long>(Loaded->numTransitions()),
                  AutomatonPath.c_str());
      if (Tiling)
        RuleDriven = std::make_unique<TilingSelector>(
            std::move(Prepared), std::move(*Loaded), *CostModel);
      else
        RuleDriven = std::make_unique<AutomatonSelector>(std::move(Prepared),
                                                         std::move(*Loaded));
    } else if (Tiling) {
      auto Tiled =
          std::make_unique<TilingSelector>(Database, Goals, *CostModel);
      UsableRules = Tiled->library().rules().size();
      std::printf("tiling: cost model %s over %zu rules\n",
                  costKindName(*CostModel), UsableRules);
      RuleDriven = std::move(Tiled);
    } else {
      auto Auto = std::make_unique<AutomatonSelector>(Database, Goals);
      UsableRules = Auto->numRules();
      std::printf("automaton: %zu states, %llu transitions\n",
                  Auto->automaton().numStates(),
                  static_cast<unsigned long long>(
                      Auto->automaton().numTransitions()));
      RuleDriven = std::move(Auto);
    }
  } else if (SelectorName == "linear") {
    auto Linear = std::make_unique<GeneratedSelector>(Database, Goals);
    UsableRules = Linear->numRules();
    RuleDriven = std::move(Linear);
  }
  std::printf("library %s: %zu rules (%zu usable)\n", LibraryPath.c_str(),
              Database.size(), UsableRules);

  InstructionSelector &Primary =
      RuleDriven ? *RuleDriven : static_cast<InstructionSelector &>(
                                     Handwritten);

  std::string Wanted = Cli.stringOption("benchmark", "");
  std::string DumpDir = Cli.stringOption("dump-asm", "");
  if (!DumpDir.empty())
    ::mkdir(DumpDir.c_str(), 0777); // EEXIST is fine.
  TablePrinter Table({"Benchmark", "Coverage", Primary.name(), "Handwritten",
                      "Ratio", "Check"});
  for (const WorkloadProfile &Profile : cint2000Profiles()) {
    if (!Wanted.empty() && Profile.Name != Wanted)
      continue;
    Function F = buildWorkload(Profile, Width);
    SelectionResult Gen = Primary.select(F);
    SelectionResult Hand = Handwritten.select(F);

    if (Cli.hasFlag("print-asm"))
      std::printf("\n%s\n", printMachineFunction(*Gen.MF).c_str());
    if (!DumpDir.empty()) {
      std::string AsmPath = DumpDir + "/" + Profile.Name + ".s";
      std::ofstream AsmOut(AsmPath);
      AsmOut << printMachineFunction(*Gen.MF);
      if (!AsmOut) {
        std::fprintf(stderr, "error: cannot write %s\n", AsmPath.c_str());
        return 1;
      }
    }

    RunOutcome GenRun = runSelected(F, *Gen.MF, Width, Runs);
    RunOutcome HandRun = runSelected(F, *Hand.MF, Width, Runs);
    Table.addRow(
        {Profile.Name, formatDouble(100 * Gen.coverage(), 1) + " %",
         formatGrouped(GenRun.Cycles), formatGrouped(HandRun.Cycles),
         formatDouble(100.0 * GenRun.Cycles /
                          std::max<uint64_t>(1, HandRun.Cycles),
                      1) +
             " %",
         GenRun.Mismatch || HandRun.Mismatch ? "MISMATCH" : "ok"});
  }
  std::printf("\n%s", Table.render().c_str());

  std::string StatsPath = Cli.stringOption("stats-json", "");
  if (!StatsPath.empty() &&
      !Statistics::get().writeJsonFile(StatsPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", StatsPath.c_str());
    return 1;
  }
  return 0;
}
