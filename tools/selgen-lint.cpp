//===- selgen-lint.cpp - Audit rule libraries and IR files -----------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Static auditor for the artifacts the pipeline ships: synthesized
// rule libraries (.dat) and textual IR files. Backed by the known-bits
// and value-range dataflow framework (src/analysis) plus targeted SMT
// queries:
//
//   * unsat-precondition (error): a rule's shift precondition P+ can
//     never hold; the rule is dead and, since synthesis asserts P+,
//     evidence of a corrupted library.
//   * shadowed-rule (warning): an earlier, more general rule claims
//     every subject this rule matches.
//   * cost-dominated (warning): a shadowing rule is also no cheaper
//     under every shipped cost model, so not even the cost-minimal
//     tiling selector (--selector tiling) can ever pick this rule.
//   * inapplicable-jump-rule (warning): a compare-and-jump rule the
//     selection engine never tries.
//   * non-normalized-rule (warning): normalized subjects can never
//     match the pattern.
//   * malformed-ir / verifier-error / ub-shift (error) and
//     unproven-shift (note) for IR files.
//
//   selgen-lint --width 8 --library rule-library-basic-w8.dat
//       --output findings.json examples/ir/*.ir
//
// Exit code: 0 clean (or warnings only), 1 findings with severity
// error, 2 usage errors. CI gates on the exit code and archives the
// findings JSON.
//
//===----------------------------------------------------------------------===//

#include "analysis/RuleAudit.h"
#include "support/AtomicFile.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace selgen;

static bool readFileToString(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {
      "library",  "width",        "output",
      "baseline", "all-subsumers", "smt-timeout-ms",
      "quiet",    "no-shadowing", "no-preconditions",
      "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help")) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr,
                 "%s [ir-file...]\n",
                 CommandLine::usage("selgen-lint", Flags).c_str());
    return Cli.hasFlag("help") ? 0 : 2;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  LintOptions Options;
  Options.SmtTimeoutMs =
      static_cast<unsigned>(Cli.intOption("smt-timeout-ms", 10000));
  Options.CheckShadowing = !Cli.hasFlag("no-shadowing");
  Options.CheckPreconditions = !Cli.hasFlag("no-preconditions");
  Options.ReportAllSubsumers = Cli.hasFlag("all-subsumers");

  // --baseline FILE: a previously-published findings report whose
  // fingerprints are treated as acknowledged; matching findings are
  // suppressed so CI gates on *new* findings only.
  std::set<std::string> Baseline;
  std::string BaselinePath = Cli.stringOption("baseline", "");
  if (!BaselinePath.empty()) {
    std::string BaselineText;
    if (!readFileToString(BaselinePath, BaselineText)) {
      std::fprintf(stderr, "selgen-lint: cannot read baseline %s\n",
                   BaselinePath.c_str());
      return 2;
    }
    Baseline = parseBaselineFingerprints(BaselineText);
  }

  std::vector<LintFinding> Findings;

  std::string LibraryList = Cli.stringOption("library", "");
  std::vector<std::string> LibraryPaths;
  if (!LibraryList.empty())
    for (const std::string &Part : splitString(LibraryList, ','))
      LibraryPaths.push_back(trimString(Part));

  if (LibraryPaths.empty() && Cli.positional().empty()) {
    std::fprintf(stderr, "selgen-lint: nothing to audit "
                         "(pass --library and/or IR files)\n");
    return 2;
  }

  std::optional<GoalLibrary> Goals;
  for (const std::string &Path : LibraryPaths) {
    std::string Text;
    if (!readFileToString(Path, Text)) {
      LintFinding F;
      F.Code = "unreadable-file";
      F.Severity = "error";
      F.Message = "cannot read rule library";
      F.Library = Path;
      Findings.push_back(std::move(F));
      continue;
    }
    std::string Error;
    PatternDatabase Database = PatternDatabase::deserialize(Text, &Error);
    if (!Error.empty()) {
      LintFinding F;
      F.Code = "malformed-library";
      F.Severity = "error";
      F.Message = Error;
      F.Library = Path;
      Findings.push_back(std::move(F));
      continue;
    }
    // Audit the library as shipped: no non-normalized filter (that is
    // one of the findings), but the deterministic priority sort every
    // selector applies.
    Database.sortSpecificFirst();
    if (!Goals)
      Goals.emplace(GoalLibrary::build(Width, GoalLibrary::allGroups()));
    PreparedLibrary Library(Database, *Goals);
    std::vector<LintFinding> LibraryFindings =
        auditPreparedLibrary(Library, Width, Path, Options);
    std::fprintf(stderr, "selgen-lint: %s: %zu rules, %zu findings\n",
                 Path.c_str(), Library.rules().size(),
                 LibraryFindings.size());
    for (LintFinding &F : LibraryFindings)
      Findings.push_back(std::move(F));
  }

  for (const std::string &Path : Cli.positional()) {
    std::string Text;
    if (!readFileToString(Path, Text)) {
      LintFinding F;
      F.Code = "unreadable-file";
      F.Severity = "error";
      F.Message = "cannot read IR file";
      F.File = Path;
      Findings.push_back(std::move(F));
      continue;
    }
    std::vector<LintFinding> FileFindings = auditIrText(Text, Path);
    for (LintFinding &F : FileFindings)
      Findings.push_back(std::move(F));
  }

  // Tool-level findings (unreadable/malformed inputs) get a stable
  // fingerprint too, mirroring the audit's file-finding scheme.
  for (LintFinding &F : Findings)
    if (F.Fingerprint.empty())
      F.Fingerprint = crc32Hex(F.Code + "|" +
                               (F.File.empty() ? F.Library : F.File) + "|" +
                               F.Message);

  size_t Suppressed = suppressBaselinedFindings(Findings, Baseline);
  if (Suppressed > 0)
    std::fprintf(stderr,
                 "selgen-lint: %zu finding(s) suppressed by baseline %s\n",
                 Suppressed, BaselinePath.c_str());

  if (!Cli.hasFlag("quiet"))
    for (const LintFinding &F : Findings) {
      const std::string &Subject = F.File.empty() ? F.Library : F.File;
      if (F.RuleIndex >= 0)
        std::fprintf(stderr, "%s: rule #%d (%s): %s: %s [%s]\n",
                     Subject.c_str(), F.RuleIndex, F.Goal.c_str(),
                     F.Severity.c_str(), F.Message.c_str(), F.Code.c_str());
      else
        std::fprintf(stderr, "%s: %s: %s [%s]\n", Subject.c_str(),
                     F.Severity.c_str(), F.Message.c_str(), F.Code.c_str());
    }

  std::string Json = findingsToJson(Findings, Suppressed);
  std::string OutputPath = Cli.stringOption("output", "");
  if (!OutputPath.empty()) {
    // Atomic publish: CI archives this file; never let it be torn.
    if (!writeFileAtomic(OutputPath, Json)) {
      std::fprintf(stderr, "error: cannot write %s\n", OutputPath.c_str());
      return 2;
    }
  } else {
    std::fputs(Json.c_str(), stdout);
  }

  return lintHasErrors(Findings) ? 1 : 0;
}
