//===- selgen-matchergen.cpp - Compile a rule library to a matcher automaton ---===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The offline matcher-automaton compiler: load a synthesized rule
// library, compile its patterns into the discrimination tree the
// AutomatonSelector traverses, and write the versioned automaton file
// that selgen-compile --automaton loads. The emitted file records the
// library fingerprint, so loading it against a changed library fails
// loudly instead of selecting with stale rules.
//
//   selgen-matchergen --library rules.dat --output rules.mat
//   selgen-compile --library rules.dat --automaton rules.mat
//
//===----------------------------------------------------------------------===//

#include "isel/AutomatonSelector.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"

#include <cstdio>

using namespace selgen;

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {"library", "output", "width",
                                          "stats-json", "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help")) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n",
                 CommandLine::usage("selgen-matchergen", Flags).c_str());
    return Cli.hasFlag("help") ? 0 : 1;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  std::string LibraryPath = Cli.stringOption("library", "rules.dat");
  std::string OutputPath = Cli.stringOption("output", "rules.mat");

  PatternDatabase Database = PatternDatabase::loadFromFile(LibraryPath);
  Database.filterNonNormalized();
  Database.sortSpecificFirst();
  GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());
  PreparedLibrary Library(Database, Goals);

  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);
  if (!Automaton.writeFile(OutputPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", OutputPath.c_str());
    return 1;
  }

  // Round-trip the file we just wrote: a file that does not load back
  // to the identical automaton must never reach a selector.
  std::string LoadError;
  std::optional<MatcherAutomaton> Reloaded =
      MatcherAutomaton::loadFile(OutputPath, &LoadError);
  if (!Reloaded) {
    std::fprintf(stderr, "error: round-trip failed: %s\n",
                 LoadError.c_str());
    return 1;
  }
  std::string Stale = automatonStalenessError(*Reloaded, Library);
  if (!Stale.empty() || Reloaded->serialize() != Automaton.serialize()) {
    std::fprintf(stderr, "error: round-trip mismatch: %s\n", Stale.c_str());
    return 1;
  }

  Statistics &Stats = Statistics::get();
  Stats.add("automaton.states", static_cast<int64_t>(Automaton.numStates()));
  Stats.add("automaton.transitions",
            static_cast<int64_t>(Automaton.numTransitions()));
  std::printf("library %s: %zu rules (%zu usable, fingerprint %s)\n",
              LibraryPath.c_str(), Database.size(), Library.rules().size(),
              Library.fingerprint().c_str());
  std::printf("automaton %s: %zu states, %llu transitions\n",
              OutputPath.c_str(), Automaton.numStates(),
              static_cast<unsigned long long>(Automaton.numTransitions()));

  std::string StatsPath = Cli.stringOption("stats-json", "");
  if (!StatsPath.empty() && !Stats.writeJsonFile(StatsPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", StatsPath.c_str());
    return 1;
  }
  return 0;
}
