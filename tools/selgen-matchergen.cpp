//===- selgen-matchergen.cpp - Compile a rule library to a matcher automaton ---===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The offline matcher-automaton compiler: load a synthesized rule
// library, compile its patterns into the discrimination tree the
// AutomatonSelector traverses, and write the versioned automaton file
// that selgen-compile --automaton loads. The emitted file records the
// library fingerprint, so loading it against a changed library fails
// loudly instead of selecting with stale rules.
//
//   selgen-matchergen --library rules.dat --output rules.mat
//   selgen-matchergen --library rules.dat --output rules.matb --format binary
//   selgen-matchergen convert rules.mat rules.matb     # either direction
//   selgen-compile --library rules.dat --automaton rules.matb
//
// --format picks the output encoding: "text" (default, the versioned
// line format) or "binary" (the mmap-able arena selgen-served and
// selgen-compile load with O(1) startup). The `convert` subcommand
// re-encodes an existing automaton file in the other format, sniffing
// the input's encoding from its bytes; both directions round-trip to
// the identical automaton, which convert verifies before exiting.
// Converting a pre-cost text-v1 file upgrades it: pass --library (and
// --width) so the per-rule cost table can be re-derived from the rule
// library the automaton was compiled for.
//
//===----------------------------------------------------------------------===//

#include "isel/AutomatonSelector.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"

#include <cstdio>

using namespace selgen;

namespace {

/// Loads an automaton from either encoding, sniffing the format.
std::optional<MatcherAutomaton> loadAnyFormat(const std::string &Path,
                                              std::string *Error) {
  if (!isBinaryAutomatonFile(Path)) {
    return MatcherAutomaton::loadFile(Path, Error);
  }
  std::unique_ptr<MappedAutomaton> Mapped =
      MatcherAutomaton::mapBinary(Path, Error);
  if (!Mapped)
    return std::nullopt;
  return Mapped->view().toAutomaton();
}

/// `selgen-matchergen convert IN OUT`: re-encode IN in the opposite
/// format of what it currently is, then verify the round trip. A
/// pre-cost (text v1) input is upgraded by re-deriving the per-rule
/// cost table from the rule library, which --library must name.
int runConvert(const CommandLine &Cli) {
  const std::vector<std::string> &Positional = Cli.positional();
  if (Positional.size() != 3) {
    std::fprintf(stderr,
                 "usage: selgen-matchergen convert <input> <output> "
                 "[--library rules.dat --width N]\n");
    return 1;
  }
  const std::string &InPath = Positional[1];
  const std::string &OutPath = Positional[2];
  bool InputIsBinary = isBinaryAutomatonFile(InPath);

  std::string Error;
  std::optional<MatcherAutomaton> Automaton = loadAnyFormat(InPath, &Error);
  if (!Automaton) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }

  if (Automaton->costVersion() != cost::ModelVersion) {
    // Pre-cost (or differently-versioned) input: the written file
    // would be refused by every selector, so re-derive the cost table
    // here. Deriving needs the emission recipes, hence the library.
    std::string LibraryPath = Cli.stringOption("library", "");
    if (LibraryPath.empty()) {
      std::fprintf(stderr,
                   "error: %s carries cost table version %u (current %u); "
                   "pass --library (and --width) so convert can re-derive "
                   "the rule costs\n",
                   InPath.c_str(), Automaton->costVersion(),
                   cost::ModelVersion);
      return 1;
    }
    unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
    PatternDatabase Database = PatternDatabase::loadFromFile(LibraryPath);
    Database.filterNonNormalized();
    Database.sortSpecificFirst();
    GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());
    PreparedLibrary Library(Database, Goals);
    if (Automaton->libraryFingerprint() != Library.fingerprint() ||
        Automaton->numRules() != Library.rules().size()) {
      std::fprintf(stderr,
                   "error: %s was not compiled from %s (fingerprint or "
                   "rule-count mismatch); cannot derive its costs\n",
                   InPath.c_str(), LibraryPath.c_str());
      return 1;
    }
    std::vector<RuleCost> Costs;
    Costs.reserve(Library.rules().size());
    for (const PreparedRule &R : Library.rules())
      Costs.push_back(R.Cost);
    Automaton->setRuleCosts(std::move(Costs), cost::ModelVersion);
    std::printf("upgraded %s: cost table re-derived from %s (version %u)\n",
                InPath.c_str(), LibraryPath.c_str(), cost::ModelVersion);
  }

  bool Wrote = InputIsBinary ? Automaton->writeFile(OutPath)
                             : Automaton->writeBinaryFile(OutPath);
  if (!Wrote) {
    std::fprintf(stderr, "error: cannot write %s\n", OutPath.c_str());
    return 1;
  }

  // The written file must load back to the identical automaton; the
  // text rendering is the canonical comparison form for both.
  std::optional<MatcherAutomaton> Reloaded = loadAnyFormat(OutPath, &Error);
  if (!Reloaded) {
    std::fprintf(stderr, "error: round-trip failed: %s\n", Error.c_str());
    return 1;
  }
  if (Reloaded->serialize() != Automaton->serialize()) {
    std::fprintf(stderr, "error: round-trip mismatch after convert\n");
    return 1;
  }
  std::printf("converted %s (%s) -> %s (%s): %zu states, %llu "
              "transitions\n",
              InPath.c_str(), InputIsBinary ? "binary" : "text",
              OutPath.c_str(), InputIsBinary ? "text" : "binary",
              Automaton->numStates(),
              static_cast<unsigned long long>(Automaton->numTransitions()));
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {"library", "output", "width",
                                          "format", "stats-json", "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.positional().empty() && Cli.positional()[0] == "convert")
    return runConvert(Cli);
  if (!Cli.errors().empty() || Cli.hasFlag("help") ||
      !Cli.positional().empty()) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n       selgen-matchergen convert "
                 "<input> <output>\n",
                 CommandLine::usage("selgen-matchergen", Flags).c_str());
    return Cli.hasFlag("help") ? 0 : 1;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  std::string LibraryPath = Cli.stringOption("library", "rules.dat");
  std::string OutputPath = Cli.stringOption("output", "rules.mat");
  std::string Format = Cli.stringOption("format", "text");
  if (Format != "text" && Format != "binary") {
    std::fprintf(stderr, "error: unknown --format '%s' (text|binary)\n",
                 Format.c_str());
    return 1;
  }

  PatternDatabase Database = PatternDatabase::loadFromFile(LibraryPath);
  Database.filterNonNormalized();
  Database.sortSpecificFirst();
  GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());
  PreparedLibrary Library(Database, Goals);

  MatcherAutomaton Automaton = buildMatcherAutomaton(Library);
  bool Wrote = Format == "binary" ? Automaton.writeBinaryFile(OutputPath)
                                  : Automaton.writeFile(OutputPath);
  if (!Wrote) {
    std::fprintf(stderr, "error: cannot write %s\n", OutputPath.c_str());
    return 1;
  }

  // Round-trip the file we just wrote: a file that does not load back
  // to the identical automaton must never reach a selector.
  std::string LoadError;
  std::optional<MatcherAutomaton> Reloaded =
      loadAnyFormat(OutputPath, &LoadError);
  if (!Reloaded) {
    std::fprintf(stderr, "error: round-trip failed: %s\n",
                 LoadError.c_str());
    return 1;
  }
  std::string Stale = automatonStalenessError(*Reloaded, Library);
  if (!Stale.empty() || Reloaded->serialize() != Automaton.serialize()) {
    std::fprintf(stderr, "error: round-trip mismatch: %s\n", Stale.c_str());
    return 1;
  }

  Statistics &Stats = Statistics::get();
  Stats.add("automaton.states", static_cast<int64_t>(Automaton.numStates()));
  Stats.add("automaton.transitions",
            static_cast<int64_t>(Automaton.numTransitions()));
  std::printf("library %s: %zu rules (%zu usable, fingerprint %s)\n",
              LibraryPath.c_str(), Database.size(), Library.rules().size(),
              Library.fingerprint().c_str());
  std::printf("automaton %s (%s): %zu states, %llu transitions\n",
              OutputPath.c_str(), Format.c_str(), Automaton.numStates(),
              static_cast<unsigned long long>(Automaton.numTransitions()));

  std::string StatsPath = Cli.stringOption("stats-json", "");
  if (!StatsPath.empty() && !Stats.writeJsonFile(StatsPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", StatsPath.c_str());
    return 1;
  }
  return 0;
}
