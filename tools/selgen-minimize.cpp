//===- selgen-minimize.cpp - Proof-carrying library minimization ----------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// Promotes the selgen-lint subsumption audit into a transform: computes
// the full subsumption/cost-dominance relation over a rule library and
// deletes every rule that can provably never fire — unfireable rules
// (shift precondition unsatisfiable over literal constant amounts) and
// shadowed rules (an earlier, more general rule claims every subject)
// — emitting the minimized library plus one machine-checkable deletion
// certificate per removed rule (the surviving subsumer where one
// exists, the SMT query fingerprint, and the cost comparison).
//
//   selgen-minimize --width 8 --library rule-library-full-w8.dat
//       --output rule-library-full-w8.min.dat
//       --certificate deletions.json
//
// Policies:
//   --policy first-match (default): delete every shadowed rule. Sound
//       for all first-match selectors; `selgen-compile --dump-asm` is
//       byte-identical before/after (CI enforces this differential).
//   --policy dominated: delete only rules whose surviving subsumer
//       costs no more under --cost-model (unit|latency|size); the
//       subset of deletions the cost-minimal tiling selector can also
//       never regret.
//
// An SMT timeout keeps the rule: minimization degrades to "delete
// less", never to an unsound delete.
//
// Exit code: 0 success (including "nothing to delete"), 2 usage or I/O
// errors.
//
//===----------------------------------------------------------------------===//

#include "analysis/LibraryMinimizer.h"
#include "support/AtomicFile.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace selgen;

static bool readFileToString(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::stringstream Buffer;
  Buffer << In.rdbuf();
  Out = Buffer.str();
  return true;
}

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {
      "library",    "width",          "output",     "certificate",
      "policy",     "cost-model",     "smt-timeout-ms",
      "stats-json", "quiet",          "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help")) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n",
                 CommandLine::usage("selgen-minimize", Flags).c_str());
    return Cli.hasFlag("help") ? 0 : 2;
  }

  std::string LibraryPath = Cli.stringOption("library", "");
  std::string OutputPath = Cli.stringOption("output", "");
  if (LibraryPath.empty() || OutputPath.empty()) {
    std::fprintf(stderr,
                 "selgen-minimize: --library and --output are required\n");
    return 2;
  }

  MinimizeOptions Options;
  Options.SmtTimeoutMs =
      static_cast<unsigned>(Cli.intOption("smt-timeout-ms", 10000));
  std::string PolicyName = Cli.stringOption("policy", "first-match");
  if (PolicyName == "first-match")
    Options.Policy = MinimizePolicy::FirstMatch;
  else if (PolicyName == "dominated")
    Options.Policy = MinimizePolicy::Dominated;
  else {
    std::fprintf(stderr,
                 "selgen-minimize: unknown --policy '%s' "
                 "(expected first-match or dominated)\n",
                 PolicyName.c_str());
    return 2;
  }
  std::string ModelName = Cli.stringOption("cost-model", "latency");
  std::optional<CostKind> Model = parseCostKind(ModelName);
  if (!Model) {
    std::fprintf(stderr,
                 "selgen-minimize: unknown --cost-model '%s' "
                 "(expected unit, latency, or size)\n",
                 ModelName.c_str());
    return 2;
  }
  Options.Model = *Model;

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));

  std::string Text;
  if (!readFileToString(LibraryPath, Text)) {
    std::fprintf(stderr, "selgen-minimize: cannot read %s\n",
                 LibraryPath.c_str());
    return 2;
  }
  std::string Error;
  PatternDatabase Database = PatternDatabase::deserialize(Text, &Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "selgen-minimize: %s: %s\n", LibraryPath.c_str(),
                 Error.c_str());
    return 2;
  }

  GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());
  MinimizeResult Result = minimizeLibrary(Database, Goals, Options);

  if (!writeFileAtomic(OutputPath, Result.Minimized.serialize())) {
    std::fprintf(stderr, "selgen-minimize: cannot write %s\n",
                 OutputPath.c_str());
    return 2;
  }
  std::string CertificatePath = Cli.stringOption("certificate", "");
  if (!CertificatePath.empty() &&
      !writeFileAtomic(CertificatePath,
                       certificatesToJson(Result, Options, LibraryPath))) {
    std::fprintf(stderr, "selgen-minimize: cannot write %s\n",
                 CertificatePath.c_str());
    return 2;
  }
  std::string StatsPath = Cli.stringOption("stats-json", "");
  if (!StatsPath.empty())
    Statistics::get().writeJsonFile(StatsPath);

  if (!Cli.hasFlag("quiet")) {
    size_t Unfireable = 0, Shadowed = 0, Dominated = 0;
    for (const DeletionCertificate &C : Result.Certificates) {
      if (C.Class == RuleClass::Unfireable)
        ++Unfireable;
      else if (C.Class == RuleClass::CostDominated)
        ++Dominated;
      else
        ++Shadowed;
    }
    std::fprintf(stderr,
                 "selgen-minimize: %s: %llu rules -> %llu "
                 "(deleted %zu: %zu unfireable, %zu shadowed, "
                 "%zu cost-dominated; policy %s, model %s, "
                 "%llu SMT queries, %llu inconclusive kept their rule)\n",
                 LibraryPath.c_str(),
                 static_cast<unsigned long long>(Result.RulesBefore),
                 static_cast<unsigned long long>(Result.RulesAfter),
                 Result.Certificates.size(), Unfireable, Shadowed, Dominated,
                 minimizePolicyName(Options.Policy),
                 costKindName(Options.Model),
                 static_cast<unsigned long long>(Result.SmtQueries),
                 static_cast<unsigned long long>(Result.SmtInconclusive));
  }
  return 0;
}
