//===- selgen-served.cpp - Resident compile server -----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident compile server: loads one rule library and one matcher
/// automaton at startup (preferably an mmap'ed binary image —
/// validation instead of parsing, O(1) startup), then serves batched
/// selection requests over the selgen frame protocol. Selection fans
/// out over a pool of worker threads sharing the read-only automaton;
/// results are byte-identical to single-shot
/// `selgen-compile --selector auto` runs.
///
///   selgen-matchergen --library rules.dat --output rules.matb --format binary
///   selgen-served --library rules.dat --automaton rules.matb --threads 4
///   selgen-served --library rules.dat --automaton rules.matb --socket S
///
/// Without --socket the protocol runs on stdin/stdout (the solver-pool
/// worker convention: the protocol fd is claimed and stdout redirected
/// to stderr before anything else runs, so stray prints cannot corrupt
/// frames). With --socket PATH the server binds a unix stream socket
/// and multiplexes every connection in one event loop; clients
/// reconnect cheaply and the automaton stays resident.
///
/// Production hardening (see serve/SelectionServer.h for the model):
///   --request-deadline-ms  wall budget per request (typed Timeout)
///   --write-stall-ms       stalled-writer eviction budget
///   --max-queue            admission queue bound (typed Overloaded)
///   --max-inflight-bytes   resident request+reply byte bound
///   --retry-after-ms       backoff hint in transient error replies
///
/// SIGTERM/SIGINT drain: every admitted request is answered, late
/// arrivals get a typed ShuttingDown error, then exit 0 with the
/// socket unlinked. SIGHUP hot-reloads the --automaton binary image
/// off-thread (validate, then an atomic swap; a corrupt or stale
/// candidate is refused and the old image keeps serving) without
/// dropping a connection.
///
//===----------------------------------------------------------------------===//

#include "isel/AutomatonSelector.h"
#include "serve/ImageReloader.h"
#include "serve/SelectionServer.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace selgen;

namespace {

std::atomic<bool> GStop{false};
std::atomic<bool> GReload{false};
SelectionServer *volatile GActiveServer = nullptr;

void onTerminate(int) {
  GStop.store(true, std::memory_order_relaxed);
  if (SelectionServer *Server = GActiveServer)
    Server->requestStop(); // Atomic store + pipe write; signal-safe.
}

void onReload(int) { GReload.store(true, std::memory_order_relaxed); }

int listenUnixSocket(const std::string &Path) {
  sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n", Path.c_str());
    return -1;
  }
  int Fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    std::perror("socket");
    return -1;
  }
  ::unlink(Path.c_str()); // A stale socket from a previous run.
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(Fd, 64) < 0) {
    std::perror("bind/listen");
    close(Fd);
    return -1;
  }
  return Fd;
}

} // namespace

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {
      "library",      "width",           "automaton",
      "threads",      "socket",          "selector",
      "cost-model",   "stats-json",      "request-deadline-ms",
      "write-stall-ms", "max-queue",     "max-inflight-bytes",
      "retry-after-ms", "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help") ||
      !Cli.positional().empty()) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n",
                 CommandLine::usage("selgen-served", Flags).c_str());
    return Cli.hasFlag("help") ? 0 : 1;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  unsigned Threads = static_cast<unsigned>(Cli.intOption("threads", 4));
  std::string LibraryPath = Cli.stringOption("library", "rules.dat");
  std::string AutomatonPath = Cli.stringOption("automaton", "");
  std::string SocketPath = Cli.stringOption("socket", "");
  std::string SelectorName = Cli.stringOption("selector", "auto");
  if (SelectorName != "auto" && SelectorName != "tiling") {
    std::fprintf(stderr, "error: unknown --selector '%s' (auto|tiling)\n",
                 SelectorName.c_str());
    return 1;
  }
  const bool Tiling = SelectorName == "tiling";
  std::optional<CostKind> CostModel =
      parseCostKind(Cli.stringOption("cost-model", "unit"));
  if (!CostModel) {
    std::fprintf(stderr,
                 "error: unknown --cost-model '%s' (unit|latency|size)\n",
                 Cli.stringOption("cost-model", "").c_str());
    return 1;
  }
  if (!Tiling && !Cli.stringOption("cost-model", "").empty()) {
    std::fprintf(stderr, "error: --cost-model requires --selector tiling\n");
    return 1;
  }

  ServerOptions ServerOpts;
  ServerOpts.RequestDeadlineMs = Cli.intOption("request-deadline-ms", 30000);
  ServerOpts.WriteStallMs = Cli.intOption("write-stall-ms", 10000);
  // atoll parses garbage as 0, and a 0 bound is a server that sheds
  // every request; refuse it rather than serve nothing quietly. The
  // deadline knobs may be <= 0 (that documented value disables them).
  int64_t MaxQueue = Cli.intOption("max-queue", 64);
  int64_t MaxInflightBytes = Cli.intOption("max-inflight-bytes", 256ll << 20);
  int64_t RetryAfterMs = Cli.intOption("retry-after-ms", 100);
  if (MaxQueue < 1 || MaxInflightBytes < 1 || RetryAfterMs < 0 ||
      RetryAfterMs > UINT32_MAX) {
    std::fprintf(stderr,
                 "error: --max-queue and --max-inflight-bytes must be "
                 ">= 1 and --retry-after-ms >= 0\n");
    return 1;
  }
  ServerOpts.MaxQueue = static_cast<size_t>(MaxQueue);
  ServerOpts.MaxInflightBytes = static_cast<size_t>(MaxInflightBytes);
  ServerOpts.RetryAfterMs = static_cast<uint32_t>(RetryAfterMs);

  // A client that vanished mid-reply must surface as a failed write,
  // not a SIGPIPE death.
  signal(SIGPIPE, SIG_IGN);
  signal(SIGTERM, onTerminate);
  signal(SIGINT, onTerminate);
  signal(SIGHUP, onReload);

  PatternDatabase Database = PatternDatabase::loadFromFile(LibraryPath);
  Database.filterNonNormalized();
  Database.sortSpecificFirst();
  GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());
  PreparedLibrary Library(Database, Goals);

  // The automaton: mapped binary image (preferred), parsed text file,
  // or compiled in memory when no file is given.
  std::unique_ptr<MappedAutomaton> Mapped;
  std::optional<MatcherAutomaton> Heap;
  if (!AutomatonPath.empty() && isBinaryAutomatonFile(AutomatonPath)) {
    std::string Error;
    Mapped = MatcherAutomaton::mapBinary(AutomatonPath, &Error);
    if (!Mapped) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::string Stale = automatonStalenessError(Mapped->view(), Library);
    if (!Stale.empty()) {
      std::fprintf(stderr, "error: %s\n", Stale.c_str());
      return 1;
    }
  } else if (!AutomatonPath.empty()) {
    std::string Error;
    Heap = MatcherAutomaton::loadFile(AutomatonPath, &Error);
    if (!Heap) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::string Stale = automatonStalenessError(*Heap, Library);
    if (!Stale.empty()) {
      std::fprintf(stderr, "error: %s\n", Stale.c_str());
      return 1;
    }
  } else {
    Heap = buildMatcherAutomaton(Library);
  }

  std::unique_ptr<SelectionService> Service;
  if (Mapped)
    Service = std::make_unique<SelectionService>(
        Library, Mapped->view(), Width, Threads, Tiling, *CostModel);
  else
    Service = std::make_unique<SelectionService>(Library, *Heap, Width,
                                                 Threads, Tiling, *CostModel);

  // SIGHUP hot reload is only meaningful for an on-disk binary image
  // (text and in-memory automata have nothing to re-map).
  std::unique_ptr<ImageReloader> Reloader;
  if (Mapped)
    Reloader =
        std::make_unique<ImageReloader>(*Service, Library, AutomatonPath);
  ServerOpts.TickHook = [&Reloader] {
    if (GReload.exchange(false, std::memory_order_relaxed)) {
      if (Reloader)
        Reloader->requestReload();
      else
        std::fprintf(stderr, "selgen-served: ignoring SIGHUP (no binary "
                             "automaton image to reload)\n");
    }
    if (Reloader)
      Reloader->tick();
  };
  if (Reloader) {
    ImageReloader *R = Reloader.get();
    ServerOpts.HealthAugment = [R](HealthReply &Reply) {
      R->augmentHealth(Reply);
    };
  }

  std::fprintf(stderr,
               "selgen-served: %zu rules, %zu states (%s), %u threads, "
               "selector %s%s%s\n",
               Library.rules().size(),
               Mapped ? Mapped->view().numStates() : Heap->numStates(),
               Mapped ? "mapped" : AutomatonPath.empty() ? "in-memory"
                                                         : "text",
               Threads, SelectorName.c_str(), Tiling ? "/" : "",
               Tiling ? costKindName(*CostModel) : "");

  int Code;
  Statistics &Stats = Statistics::get();
  {
    int ListenFd = -1;
    std::unique_ptr<SelectionServer> Server;
    if (!SocketPath.empty()) {
      ListenFd = listenUnixSocket(SocketPath);
      if (ListenFd < 0)
        return 1;
      Server = std::make_unique<SelectionServer>(*Service, ServerOpts);
      Server->serveListenFd(ListenFd);
      std::fprintf(stderr, "selgen-served: listening on %s\n",
                   SocketPath.c_str());
    } else {
      // stdin/stdout mode: claim the protocol stream, then point
      // stdout at stderr so no library print can interleave with
      // frames.
      int ProtocolFd = dup(STDOUT_FILENO);
      if (ProtocolFd < 0)
        return 2;
      dup2(STDERR_FILENO, STDOUT_FILENO);
      Server = std::make_unique<SelectionServer>(*Service, STDIN_FILENO,
                                                 ProtocolFd, ServerOpts);
    }
    GActiveServer = Server.get();
    if (GStop.load(std::memory_order_relaxed))
      Server->requestStop(); // A signal raced startup.
    Code = Server->run();
    GActiveServer = nullptr;
    if (ListenFd >= 0) {
      close(ListenFd);
      ::unlink(SocketPath.c_str());
      Code = 0; // Socket mode: corruption only ever cost a connection.
    }

    const ServerStats &SS = Server->stats();
    auto Note = [&Stats](const char *Name,
                         const std::atomic<uint64_t> &Value) {
      Stats.add(Name, static_cast<int64_t>(
                          Value.load(std::memory_order_relaxed)));
    };
    Note("served.admitted", SS.Admitted);
    Note("served.shed", SS.Shed);
    Note("served.timeouts", SS.Timeouts);
    Note("served.bad_requests", SS.BadRequests);
    Note("served.health_probes", SS.HealthProbes);
    Note("served.shutdown_rejects", SS.ShutdownRejects);
    Note("served.slow_client_drops", SS.SlowClientDrops);
    Note("served.condemned_conns", SS.CondemnedConns);
    Note("served.connections", SS.Connections);
    Note("served.queue_peak", SS.QueuePeak);
    Note("served.inflight_bytes_peak", SS.InflightPeak);
    Note("served.request_us_total", SS.RequestUsTotal);
  }
  if (Reloader) {
    Reloader->drain();
    Stats.add("served.reloads", static_cast<int64_t>(Reloader->reloads()));
    Stats.add("served.reload_failures",
              static_cast<int64_t>(Reloader->failures()));
  }

  const ServiceTelemetry &T = Service->telemetry();
  std::fprintf(stderr,
               "selgen-served: served %llu batches, %llu functions\n",
               static_cast<unsigned long long>(T.Batches),
               static_cast<unsigned long long>(T.Functions));
  Stats.add("served.batches", static_cast<int64_t>(T.Batches));
  Stats.add("served.functions", static_cast<int64_t>(T.Functions));
  Stats.add("served.rules_tried", static_cast<int64_t>(T.RulesTried));
  Stats.add("served.nodes_visited", static_cast<int64_t>(T.NodesVisited));
  std::string StatsPath = Cli.stringOption("stats-json", "");
  if (!StatsPath.empty() && !Stats.writeJsonFile(StatsPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", StatsPath.c_str());
    return 1;
  }
  return Code;
}
