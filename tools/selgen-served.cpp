//===- selgen-served.cpp - Resident compile server -----------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resident compile server: loads one rule library and one matcher
/// automaton at startup (preferably an mmap'ed binary image —
/// validation instead of parsing, O(1) startup), then serves batched
/// selection requests over the selgen frame protocol until EOF,
/// Shutdown, or SIGTERM. Selection fans out over a pool of worker
/// threads sharing the read-only automaton; results are byte-identical
/// to single-shot `selgen-compile --selector auto` runs.
///
///   selgen-matchergen --library rules.dat --output rules.matb --format binary
///   selgen-served --library rules.dat --automaton rules.matb --threads 4
///   selgen-served --library rules.dat --automaton rules.matb --socket S
///
/// Without --socket the protocol runs on stdin/stdout (the solver-pool
/// worker convention: the protocol fd is claimed and stdout redirected
/// to stderr before anything else runs, so stray prints cannot corrupt
/// frames). With --socket PATH the server binds a unix stream socket
/// and serves connections one at a time; clients reconnect cheaply and
/// the automaton stays resident across connections. SIGTERM/SIGINT
/// finish the in-flight batch, then exit 0.
///
//===----------------------------------------------------------------------===//

#include "isel/AutomatonSelector.h"
#include "serve/SelectionServer.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace selgen;

namespace {

std::atomic<bool> GStop{false};
SelectionServer *volatile GActiveServer = nullptr;

void onTerminate(int) {
  GStop.store(true, std::memory_order_relaxed);
  if (SelectionServer *Server = GActiveServer)
    Server->requestStop(); // Atomic store; async-signal-safe.
}

int listenUnixSocket(const std::string &Path) {
  sockaddr_un Addr;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n", Path.c_str());
    return -1;
  }
  int Fd = socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0) {
    std::perror("socket");
    return -1;
  }
  ::unlink(Path.c_str()); // A stale socket from a previous run.
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size());
  if (bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      listen(Fd, 8) < 0) {
    std::perror("bind/listen");
    close(Fd);
    return -1;
  }
  return Fd;
}

/// Accepts and serves connections sequentially until stop. Returns 0
/// on a clean stop; per-connection corruption only condemns that
/// connection, not the server.
int serveSocket(SelectionService &Service, const std::string &Path) {
  int ListenFd = listenUnixSocket(Path);
  if (ListenFd < 0)
    return 1;
  std::fprintf(stderr, "selgen-served: listening on %s\n", Path.c_str());
  while (!GStop.load(std::memory_order_relaxed)) {
    pollfd P = {ListenFd, POLLIN, 0};
    int Ready = poll(&P, 1, 200);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Ready <= 0)
      continue;
    int ClientFd = accept(ListenFd, nullptr, nullptr);
    if (ClientFd < 0)
      continue;
    SelectionServer Server(Service, ClientFd, ClientFd);
    GActiveServer = &Server;
    if (GStop.load(std::memory_order_relaxed))
      Server.requestStop(); // SIGTERM raced the accept.
    int Code = Server.run();
    GActiveServer = nullptr;
    close(ClientFd);
    if (Code != 0)
      std::fprintf(stderr, "selgen-served: dropped corrupt connection\n");
  }
  close(ListenFd);
  ::unlink(Path.c_str());
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {
      "library", "width",      "automaton", "threads",    "socket",
      "selector", "cost-model", "stats-json", "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help") ||
      !Cli.positional().empty()) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n",
                 CommandLine::usage("selgen-served", Flags).c_str());
    return Cli.hasFlag("help") ? 0 : 1;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  unsigned Threads = static_cast<unsigned>(Cli.intOption("threads", 4));
  std::string LibraryPath = Cli.stringOption("library", "rules.dat");
  std::string AutomatonPath = Cli.stringOption("automaton", "");
  std::string SocketPath = Cli.stringOption("socket", "");
  std::string SelectorName = Cli.stringOption("selector", "auto");
  if (SelectorName != "auto" && SelectorName != "tiling") {
    std::fprintf(stderr, "error: unknown --selector '%s' (auto|tiling)\n",
                 SelectorName.c_str());
    return 1;
  }
  const bool Tiling = SelectorName == "tiling";
  std::optional<CostKind> CostModel =
      parseCostKind(Cli.stringOption("cost-model", "unit"));
  if (!CostModel) {
    std::fprintf(stderr,
                 "error: unknown --cost-model '%s' (unit|latency|size)\n",
                 Cli.stringOption("cost-model", "").c_str());
    return 1;
  }
  if (!Tiling && !Cli.stringOption("cost-model", "").empty()) {
    std::fprintf(stderr, "error: --cost-model requires --selector tiling\n");
    return 1;
  }

  // A client that vanished mid-reply must surface as a failed write,
  // not a SIGPIPE death.
  signal(SIGPIPE, SIG_IGN);
  signal(SIGTERM, onTerminate);
  signal(SIGINT, onTerminate);

  PatternDatabase Database = PatternDatabase::loadFromFile(LibraryPath);
  Database.filterNonNormalized();
  Database.sortSpecificFirst();
  GoalLibrary Goals = GoalLibrary::build(Width, GoalLibrary::allGroups());
  PreparedLibrary Library(Database, Goals);

  // The automaton: mapped binary image (preferred), parsed text file,
  // or compiled in memory when no file is given.
  std::unique_ptr<MappedAutomaton> Mapped;
  std::optional<MatcherAutomaton> Heap;
  if (!AutomatonPath.empty() && isBinaryAutomatonFile(AutomatonPath)) {
    std::string Error;
    Mapped = MatcherAutomaton::mapBinary(AutomatonPath, &Error);
    if (!Mapped) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::string Stale = automatonStalenessError(Mapped->view(), Library);
    if (!Stale.empty()) {
      std::fprintf(stderr, "error: %s\n", Stale.c_str());
      return 1;
    }
  } else if (!AutomatonPath.empty()) {
    std::string Error;
    Heap = MatcherAutomaton::loadFile(AutomatonPath, &Error);
    if (!Heap) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 1;
    }
    std::string Stale = automatonStalenessError(*Heap, Library);
    if (!Stale.empty()) {
      std::fprintf(stderr, "error: %s\n", Stale.c_str());
      return 1;
    }
  } else {
    Heap = buildMatcherAutomaton(Library);
  }

  std::unique_ptr<SelectionService> Service;
  if (Mapped)
    Service = std::make_unique<SelectionService>(
        Library, Mapped->view(), Width, Threads, Tiling, *CostModel);
  else
    Service = std::make_unique<SelectionService>(Library, *Heap, Width,
                                                 Threads, Tiling, *CostModel);
  std::fprintf(stderr,
               "selgen-served: %zu rules, %zu states (%s), %u threads, "
               "selector %s%s%s\n",
               Library.rules().size(),
               Mapped ? Mapped->view().numStates() : Heap->numStates(),
               Mapped ? "mapped" : AutomatonPath.empty() ? "in-memory"
                                                         : "text",
               Threads, SelectorName.c_str(), Tiling ? "/" : "",
               Tiling ? costKindName(*CostModel) : "");

  int Code;
  if (!SocketPath.empty()) {
    Code = serveSocket(*Service, SocketPath);
  } else {
    // stdin/stdout mode: claim the protocol stream, then point stdout
    // at stderr so no library print can interleave with frames.
    int ProtocolFd = dup(STDOUT_FILENO);
    if (ProtocolFd < 0)
      return 2;
    dup2(STDERR_FILENO, STDOUT_FILENO);
    SelectionServer Server(*Service, STDIN_FILENO, ProtocolFd);
    GActiveServer = &Server;
    if (GStop.load(std::memory_order_relaxed))
      Server.requestStop();
    Code = Server.run();
    GActiveServer = nullptr;
  }

  const ServiceTelemetry &T = Service->telemetry();
  std::fprintf(stderr,
               "selgen-served: served %llu batches, %llu functions\n",
               static_cast<unsigned long long>(T.Batches),
               static_cast<unsigned long long>(T.Functions));
  Statistics &Stats = Statistics::get();
  Stats.add("served.batches", static_cast<int64_t>(T.Batches));
  Stats.add("served.functions", static_cast<int64_t>(T.Functions));
  Stats.add("served.rules_tried", static_cast<int64_t>(T.RulesTried));
  Stats.add("served.nodes_visited", static_cast<int64_t>(T.NodesVisited));
  std::string StatsPath = Cli.stringOption("stats-json", "");
  if (!StatsPath.empty() && !Stats.writeJsonFile(StatsPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", StatsPath.c_str());
    return 1;
  }
  return Code;
}
