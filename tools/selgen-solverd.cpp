//===- selgen-solverd.cpp - Solver pool worker process ------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of smt/SolverPool: reads framed requests from stdin,
/// evaluates them with the exact same synthesis/solver stack the
/// in-process path uses, and writes framed replies to stdout. One
/// worker serves many queries; the parent recycles it after K queries
/// or M bytes RSS and SIGKILLs it past a deadline, so this process
/// keeps no state a kill could corrupt.
///
/// Not meant to be run by hand — it speaks the binary frame protocol
/// on stdin/stdout and nothing else. Stray library prints cannot
/// corrupt the stream: the protocol fd is duplicated away from fd 1
/// before anything else runs, and stdout is redirected to stderr.
///
/// Fault sites (SELGEN_FAULTS in the *worker's* environment, injected
/// via SolverPoolOptions::WorkerEnv):
///   worker_kill          SIGKILL self after reading a request — the
///                        parent sees EOF mid-query
///   worker_hang          sleep far past any deadline — the parent's
///                        poll expires and SIGKILLs us
///   worker_garbage_reply corrupt the reply frame bytes — the parent's
///                        CRC check must reject them
///
//===----------------------------------------------------------------------===//

#include "smt/SolverPool.h"
#include "support/FaultInjection.h"
#include "synth/Synthesizer.h"
#include "synth/TestCorpus.h"
#include "synth/WorkerProtocol.h"
#include "x86/Goals.h"

#include <csignal>
#include <cstdio>
#include <map>
#include <string>
#include <unistd.h>

using namespace selgen;

namespace {

/// Goal libraries are deterministic per width; building one per
/// request would dominate small chunks.
const GoalLibrary &libraryForWidth(unsigned Width) {
  static std::map<unsigned, GoalLibrary> Libraries;
  auto It = Libraries.find(Width);
  if (It == Libraries.end())
    It = Libraries
             .emplace(Width, GoalLibrary::build(Width, GoalLibrary::allGroups()))
             .first;
  return It->second;
}

std::string handleRange(const std::string &Payload, std::string &Error) {
  std::optional<RangeRequest> Request = decodeRangeRequest(Payload, &Error);
  if (!Request)
    return "";
  const GoalInstruction *Goal =
      libraryForWidth(Request->Options.Width).find(Request->GoalName);
  if (!Goal) {
    Error = "unknown goal: " + Request->GoalName;
    return "";
  }

  TestCorpus Corpus(Request->Options.CorpusCapacity);
  for (TestCorpus::Entry &E : Request->CorpusSeed)
    Corpus.insert(std::move(E.Test), std::move(E.GoalOutcome));

  // A fresh context per chunk, matching ParallelBuilder::runChunk: the
  // outcome must not depend on what this worker solved before.
  SmtContext Smt;
  Synthesizer Synth(Smt, Request->Options);
  RangeReply Reply;
  Reply.Outcome = Synth.synthesizeRange(*Goal->Spec, Request->Plan,
                                        Request->Size, Request->BeginRank,
                                        Request->EndRank, Corpus,
                                        Request->BudgetSeconds);
  for (const TestCorpus::EntryPtr &E : Corpus.snapshot())
    Reply.CorpusEntries.push_back(*E);
  return encodeRangeReply(Reply);
}

std::string handleSmtQuery(const std::string &Payload, std::string &Error) {
  std::optional<SmtQueryRequest> Request =
      decodeSmtQueryRequest(Payload, &Error);
  if (!Request)
    return "";

  SmtQueryReply Reply;
  SmtContext Smt;
  SmtSolver Solver(Smt);
  Solver.applyPolicy(Request->Policy);
  try {
    z3::expr_vector Assertions = Smt.ctx().parse_string(Request->Smt2.c_str());
    for (unsigned I = 0; I < Assertions.size(); ++I)
      Solver.add(Assertions[I]);
  } catch (const z3::exception &E) {
    Error = std::string("smt2 parse error: ") + E.msg();
    return "";
  }
  Reply.Result = Solver.check();
  Reply.Failure = Solver.lastFailure();
  if (Reply.Result == SmtResult::Sat) {
    z3::model Model = Solver.model();
    for (const auto &[Name, Width] : Request->Eval)
      Reply.Model.push_back(
          Smt.evalBits(Model, Smt.bvConst(Name, Width)));
  }
  return encodeSmtQueryReply(Reply);
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1) {
    std::fprintf(stderr,
                 "selgen-solverd: solver pool worker; speaks the selgen "
                 "frame protocol on stdin/stdout.\nNot meant to be run "
                 "directly — spawned by --solver-pool runs.\n");
    return std::string(Argv[1]) == "--help" ? 0 : 2;
  }

  // A parent that died or recycled us mid-write must surface as a
  // failed write (clean exit 2), not a SIGPIPE death that the next
  // supervisor reads as a worker crash of unknown cause.
  signal(SIGPIPE, SIG_IGN);

  // Claim the protocol stream, then point stdout at stderr so no
  // library print can ever interleave with frames.
  int ProtocolFd = dup(STDOUT_FILENO);
  if (ProtocolFd < 0)
    return 2;
  dup2(STDERR_FILENO, STDOUT_FILENO);

  while (true) {
    wire::Frame Frame;
    wire::ReadStatus Status = wire::readFrame(STDIN_FILENO, Frame);
    if (Status == wire::ReadStatus::Eof)
      return 0; // Parent closed the pipe: graceful recycle.
    if (Status != wire::ReadStatus::Ok)
      return 2; // Garbage on stdin: nothing sane to resync to.
    if (Frame.Type == wire::Shutdown)
      return 0;
    if (Frame.Type != wire::Request) {
      wire::writeFrame(ProtocolFd, wire::Error, "unexpected frame type");
      continue;
    }

    // Crash-path fault sites, armed only via WorkerEnv by tests/CI.
    if (FaultInjector::get().shouldFire("worker_kill"))
      kill(getpid(), SIGKILL);
    if (FaultInjector::get().shouldFire("worker_hang"))
      sleep(600); // Far past any grace; the parent SIGKILLs us first.

    std::string Error;
    std::string ReplyPayload;
    try {
      switch (peekRequestKind(Frame.Payload)) {
      case WorkerRequestKind::Range:
        ReplyPayload = handleRange(Frame.Payload, Error);
        break;
      case WorkerRequestKind::SmtQuery:
        ReplyPayload = handleSmtQuery(Frame.Payload, Error);
        break;
      case WorkerRequestKind::Unknown:
        Error = "unrecognized request payload";
        break;
      }
    } catch (const std::exception &E) {
      Error = std::string("worker exception: ") + E.what();
    }

    if (ReplyPayload.empty() && !Error.empty()) {
      if (!wire::writeFrame(ProtocolFd, wire::Error, Error))
        return 2;
      continue;
    }

    std::string Encoded = wire::encodeFrame(wire::Response, ReplyPayload);
    if (FaultInjector::get().shouldFire("worker_garbage_reply")) {
      // Flip bytes in the middle of the frame: header and payload CRC
      // no longer agree, and the parent must classify us as crashed.
      for (size_t I = Encoded.size() / 2;
           I < Encoded.size() && I < Encoded.size() / 2 + 8; ++I)
        Encoded[I] = static_cast<char>(~Encoded[I]);
    }
    if (!wire::writeAll(ProtocolFd, Encoded))
      return 2;
  }
}
