//===- selgen-synth.cpp - Rule-library synthesis driver -------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The command-line face of Algorithm 1's Synthesizer procedure (the
// artifact's full-synthesis.sh): synthesize instruction selection
// rules for a set of goal instructions and write the rule library to
// disk. Libraries from separate runs (different machines, different
// goal subsets) can be merged by re-running with --merge-into.
//
//   selgen-synth --groups Basic,Bmi --output rules.dat
//   selgen-synth --goals andn,blsr --total --width 16 --output bmi.dat
//   selgen-synth --groups Flags --merge-into rules.dat
//
// Long runs are fault tolerant: with --run-dir every goal outcome is
// journaled crash-safely, and --resume restarts a killed run without
// re-synthesizing the goals whose finish records survived:
//
//   selgen-synth --groups Basic --run-dir run/   # killed mid-way
//   selgen-synth --groups Basic --resume run/    # picks up the rest
//
//===----------------------------------------------------------------------===//

#include "pattern/ParallelBuilder.h"
#include "pattern/RunJournal.h"
#include "smt/SolverPool.h"
#include "support/AtomicFile.h"
#include "support/CommandLine.h"
#include "support/FaultInjection.h"
#include "support/Hashing.h"
#include "support/Json.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "synth/SpecFingerprint.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>

using namespace selgen;

namespace {

/// Fingerprint of everything a run's journal records depend on: the
/// goal set, the data width, the result-relevant synthesis options,
/// and the encoder version. --resume refuses a journal written under a
/// different configuration instead of silently mixing results.
std::string runConfigFingerprint(const GoalLibrary &Library,
                                 const SynthesisOptions &Options) {
  std::vector<std::string> Names;
  for (const GoalInstruction &Goal : Library.goals())
    Names.push_back(Goal.Name + "#" + std::to_string(Goal.MaxPatternSize));
  std::sort(Names.begin(), Names.end());
  StableHasher Hasher;
  Hasher.str("selgen-run-config");
  Hasher.u64(Options.Width);
  for (const std::string &Name : Names)
    Hasher.str(Name);
  Hasher.str(synthesisOptionsFingerprint(Options));
  Hasher.str(EncoderVersionTag);
  return Hasher.hex();
}

/// Ensures the robustness counters exist (at zero) in every stats
/// dump, so CI can guard on them without probing for presence first.
void touchRobustnessCounters() {
  for (const char *Name :
       {"smt.retries", "smt.exceptions", "smt.rlimit_exhausted",
        "smt.deadline_expired", "smt.stale_interrupts_suppressed",
        "cegis.bad_models", "cache.corrupt_shards", "journal.hits",
        "journal.records", "journal.corrupt_records", "synth.escalations",
        "pool.spawns", "pool.recycles", "pool.crashes",
        "pool.respawn_retries", "pool.deadline_kills", "pool.queries",
        "pool.stalled_ms"})
    Statistics::get().add(Name, 0);
}

/// The structured failure report for --failures-json: one entry per
/// goal that ended incomplete (last telemetry record per goal wins, so
/// an escalation retry that succeeded clears the earlier failure).
std::string buildFailureReport() {
  std::map<std::string, const GoalTelemetry *> Last;
  std::vector<GoalTelemetry> Goals = Statistics::get().goals();
  for (const GoalTelemetry &G : Goals)
    Last[G.Goal] = &G;

  std::string Out = "{\n  \"incomplete_goals\": [";
  bool First = true;
  for (const auto &[Name, G] : Last) {
    (void)Name;
    if (G->Complete)
      continue;
    Out += First ? "\n" : ",\n";
    Out += "    {\"goal\": \"" + jsonEscape(G->Goal) + "\", \"group\": \"" +
           jsonEscape(G->Group) + "\", \"cause\": \"" +
           jsonEscape(G->IncompleteCause) + "\"}";
    First = false;
  }
  Out += "\n  ],\n";
  Out += "  \"smt_retries\": " +
         std::to_string(Statistics::get().value("smt.retries")) + ",\n";
  Out += "  \"smt_exceptions\": " +
         std::to_string(Statistics::get().value("smt.exceptions")) + ",\n";
  Out += "  \"smt_rlimit_exhausted\": " +
         std::to_string(Statistics::get().value("smt.rlimit_exhausted")) +
         ",\n";
  Out += "  \"escalations\": " +
         std::to_string(Statistics::get().value("synth.escalations")) + "\n";
  Out += "}\n";
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {
      "groups",       "goals",       "width",       "budget",
      "total",        "threads",     "output",      "merge-into",
      "max-size",     "cache-dir",   "no-cache",    "stats-json",
      "no-prescreen", "corpus-size", "run-dir",     "resume",
      "failures-json", "rlimit",     "retry-scale", "escalation",
      "solver-pool",  "pool-recycle", "pool-grace", "pool-worker",
      "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help")) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n",
                 CommandLine::usage("selgen-synth", Flags).c_str());
    std::fprintf(stderr,
                 "  --groups   comma list of Basic,LoadStore,Unary,Binary,"
                 "Flags,Bmi (default Basic)\n"
                 "  --goals    comma list of goal names (overrides groups)\n"
                 "  --width    data width in bits (default 8)\n"
                 "  --budget   per-goal budget in seconds (default 10)\n"
                 "  --total    require total patterns\n"
                 "  --threads  worker threads (default hardware)\n"
                 "  --max-size override the iterative-deepening cap\n"
                 "  --output   rule library file (default rules.dat)\n"
                 "  --merge-into  merge results into an existing library\n"
                 "  --cache-dir   persistent synthesis cache directory\n"
                 "                (default $SELGEN_CACHE_DIR or "
                 "~/.cache/selgen)\n"
                 "  --no-cache    disable the persistent synthesis cache\n"
                 "  --stats-json  write counters and per-goal telemetry "
                 "to a JSON file\n"
                 "  --no-prescreen  disable the concrete counterexample "
                 "pre-screen (every candidate goes straight to the "
                 "verifier)\n"
                 "  --corpus-size   per-goal counterexample corpus capacity "
                 "(default 512; LRU-evicted beyond that)\n"
                 "  --run-dir  directory for the crash-safe run journal\n"
                 "  --resume   resume a journaled run from this directory, "
                 "skipping goals whose finish records survived\n"
                 "  --failures-json  write a structured report of "
                 "incomplete goals and their causes\n"
                 "  --rlimit   deterministic Z3 resource budget per query "
                 "(0 = off)\n"
                 "  --retry-scale  escalating per-query budget multipliers "
                 "(default 1,4,16)\n"
                 "  --escalation   end-of-run budget multiplier for one "
                 "retry of incomplete goals (default 4; 0 = off)\n"
                 "  --solver-pool  run solver work in N out-of-process "
                 "selgen-solverd workers (0 = in-process, the default); "
                 "the produced library is byte-identical either way\n"
                 "  --pool-recycle recycle a pool worker after this many "
                 "queries (default 64; 0 = never)\n"
                 "  --pool-grace   seconds past a chunk's budget before a "
                 "hung worker is SIGKILLed (default 15)\n"
                 "  --pool-worker  path of the worker binary (default "
                 "$SELGEN_SOLVERD or selgen-solverd next to this tool)\n");
    return Cli.hasFlag("help") ? 0 : 1;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  GoalLibrary All = GoalLibrary::build(Width, GoalLibrary::allGroups());

  GoalLibrary Selected;
  std::string GoalsOption = Cli.stringOption("goals", "");
  if (!GoalsOption.empty()) {
    Selected = GoalLibrary::subset(std::move(All),
                                   splitString(GoalsOption, ','));
  } else {
    std::vector<std::string> Names;
    for (const std::string &Group :
         splitString(Cli.stringOption("groups", "Basic"), ','))
      for (const GoalInstruction *Goal : All.group(Group))
        Names.push_back(Goal->Name);
    if (Names.empty()) {
      std::fprintf(stderr, "error: no goals selected\n");
      return 1;
    }
    Selected = GoalLibrary::subset(std::move(All), Names);
  }

  SynthesisOptions Options;
  Options.Width = Width;
  Options.FindAllMinimal = true;
  Options.RequireTotalPatterns = Cli.hasFlag("total");
  Options.TimeBudgetSeconds = Cli.doubleOption("budget", 10.0);
  Options.QueryTimeoutMs = 30000;
  Options.QueryRlimit =
      static_cast<uint64_t>(std::max<int64_t>(0, Cli.intOption("rlimit", 0)));
  Options.UsePrescreen = !Cli.hasFlag("no-prescreen");
  {
    std::vector<unsigned> Scale;
    for (const std::string &Part :
         splitString(Cli.stringOption("retry-scale", "1,4,16"), ','))
      if (int64_t Value = std::atoll(trimString(Part).c_str()); Value > 0)
        Scale.push_back(static_cast<unsigned>(Value));
    if (Scale.empty()) {
      std::fprintf(stderr, "error: bad --retry-scale\n");
      return 1;
    }
    Options.QueryRetryScale = std::move(Scale);
  }
  if (int64_t CorpusSize = Cli.intOption("corpus-size", 0); CorpusSize > 0)
    Options.CorpusCapacity = static_cast<unsigned>(CorpusSize);
  if (int64_t MaxSize = Cli.intOption("max-size", 0); MaxSize > 0)
    for (const GoalInstruction &Goal : Selected.goals())
      const_cast<GoalInstruction &>(Goal).MaxPatternSize =
          static_cast<unsigned>(MaxSize);

  ParallelBuildOptions Build;
  Build.NumThreads = static_cast<unsigned>(Cli.intOption("threads", 0));
  Build.EscalationFactor =
      static_cast<unsigned>(std::max<int64_t>(0, Cli.intOption("escalation", 4)));

  // Out-of-process solver pool: crash isolation for the Z3 work. Off
  // by default — the in-process path stays untouched (and the library
  // is byte-identical either way).
  std::unique_ptr<SolverPool> Pool;
  if (int64_t PoolSize = Cli.intOption("solver-pool", 0); PoolSize > 0) {
    SolverPoolOptions PoolOptions;
    PoolOptions.NumWorkers = static_cast<unsigned>(PoolSize);
    PoolOptions.WorkerPath =
        Cli.stringOption("pool-worker", SolverPool::defaultWorkerPath());
    PoolOptions.RecycleAfterQueries = static_cast<unsigned>(
        std::max<int64_t>(0, Cli.intOption("pool-recycle", 64)));
    if (double Grace = Cli.doubleOption("pool-grace", 15.0); Grace > 0)
      PoolOptions.GraceSeconds = Grace;
    Pool = std::make_unique<SolverPool>(PoolOptions);
    if (!Pool->start()) {
      std::fprintf(stderr,
                   "error: cannot start solver pool worker %s "
                   "(set --pool-worker or $SELGEN_SOLVERD)\n",
                   PoolOptions.WorkerPath.c_str());
      return 1;
    }
    Build.Pool = Pool.get();
    std::printf("solver pool: %u workers (%s)\n", PoolOptions.NumWorkers,
                PoolOptions.WorkerPath.c_str());
  }

  std::unique_ptr<SynthesisCache> Cache;
  if (!Cli.hasFlag("no-cache")) {
    std::string CacheDir =
        Cli.stringOption("cache-dir", SynthesisCache::defaultDirectory());
    Cache = std::make_unique<SynthesisCache>(CacheDir);
    if (Cache->usable())
      Build.Cache = Cache.get();
    else
      std::fprintf(stderr, "warning: cache directory %s unusable, "
                           "continuing without cache\n",
                   CacheDir.c_str());
  }

  // Crash-safe journaling and resume. --resume implies journaling into
  // the same directory, so a resumed run that is itself killed can be
  // resumed again.
  touchRobustnessCounters();
  std::string RunDir = Cli.stringOption("resume", "");
  bool Resuming = !RunDir.empty();
  if (RunDir.empty())
    RunDir = Cli.stringOption("run-dir", "");
  std::unique_ptr<RunJournal> Journal;
  std::map<std::string, GoalSynthesisResult> Resumed;
  std::string ConfigFingerprint = runConfigFingerprint(Selected, Options);
  if (!RunDir.empty()) {
    RunJournal::LoadResult Replay = RunJournal::load(RunDir);
    if (Replay.Existed) {
      if (Replay.ConfigFingerprint != ConfigFingerprint) {
        std::fprintf(stderr,
                     "error: journal in %s was written under a different "
                     "configuration (goals/width/options); refusing to mix "
                     "results. Use a fresh --run-dir.\n",
                     RunDir.c_str());
        return 1;
      }
      if (Resuming) {
        Resumed = std::move(Replay.Finished);
        std::printf("resuming from %s: %zu finished goals journaled, "
                    "%zu in flight re-queued%s\n",
                    RunDir.c_str(), Resumed.size(), Replay.InFlight.size(),
                    Replay.CorruptRecords
                        ? " (corrupt journal tail quarantined)"
                        : "");
      }
    } else if (Resuming) {
      std::printf("note: no journal found in %s, running cold\n",
                  RunDir.c_str());
    }
    Journal = RunJournal::open(RunDir, ConfigFingerprint);
    if (!Journal) {
      std::fprintf(stderr, "error: cannot open journal in %s\n",
                   RunDir.c_str());
      return 1;
    }
    Build.Journal = Journal.get();
    if (!Resumed.empty())
      Build.Resume = &Resumed;
  }

  if (FaultInjector::get().armed())
    std::printf("fault injection armed: %s\n",
                FaultInjector::get().describe().c_str());

  std::printf("synthesizing %zu goals at %u bit (%.0fs budget, %s)\n",
              Selected.goals().size(), Width, Options.TimeBudgetSeconds,
              Options.RequireTotalPatterns ? "total patterns"
                                           : "paper partial semantics");
  Timer Clock;
  LibraryBuildReport Report;
  PatternDatabase Database =
      synthesizeRuleLibraryParallel(Selected, Options, Build, &Report);

  for (const GroupReport &Group : Report.Groups)
    std::printf("  %-10s %3u goals  %4zu patterns  max size %u  %s"
                "  (%u capped)\n",
                Group.Group.c_str(), Group.Goals, Group.Patterns,
                Group.MaxPatternSize,
                formatDuration(Group.Seconds).c_str(),
                Group.IncompleteGoals);
  if (Build.Cache)
    std::printf("  cache: %u hits, %u misses (%s)\n", Report.CacheHits,
                Report.CacheMisses, Build.Cache->directory().c_str());
  if (int64_t Hits = Statistics::get().value("journal.hits"))
    std::printf("  journal: %lld goals served from the previous run\n",
                static_cast<long long>(Hits));

  std::string StatsPath = Cli.stringOption("stats-json", "");
  if (!StatsPath.empty()) {
    Statistics::get().add("driver.wall_ms",
                          static_cast<int64_t>(Clock.elapsedSeconds() * 1e3));
    if (Statistics::get().writeJsonFile(StatsPath))
      std::printf("wrote stats to %s\n", StatsPath.c_str());
    else
      std::fprintf(stderr, "warning: could not write %s\n", StatsPath.c_str());
  }

  std::string FailuresPath = Cli.stringOption("failures-json", "");
  if (!FailuresPath.empty()) {
    if (writeFileAtomic(FailuresPath, buildFailureReport()))
      std::printf("wrote failure report to %s\n", FailuresPath.c_str());
    else
      std::fprintf(stderr, "warning: could not write %s\n",
                   FailuresPath.c_str());
  }

  std::string MergeTarget = Cli.stringOption("merge-into", "");
  if (!MergeTarget.empty()) {
    std::ifstream Probe(MergeTarget);
    PatternDatabase Existing =
        Probe.good() ? PatternDatabase::loadFromFile(MergeTarget)
                     : PatternDatabase();
    size_t Before = Existing.size();
    Existing.merge(std::move(Database));
    Existing.saveToFile(MergeTarget);
    std::printf("merged into %s: %zu -> %zu rules (%s total)\n",
                MergeTarget.c_str(), Before, Existing.size(),
                formatDuration(Clock.elapsedSeconds()).c_str());
    return 0;
  }

  std::string Output = Cli.stringOption("output", "rules.dat");
  Database.saveToFile(Output);
  std::printf("wrote %zu rules to %s in %s\n", Database.size(),
              Output.c_str(), formatDuration(Clock.elapsedSeconds()).c_str());
  return 0;
}
