//===- selgen-synth.cpp - Rule-library synthesis driver -------------------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The command-line face of Algorithm 1's Synthesizer procedure (the
// artifact's full-synthesis.sh): synthesize instruction selection
// rules for a set of goal instructions and write the rule library to
// disk. Libraries from separate runs (different machines, different
// goal subsets) can be merged by re-running with --merge-into.
//
//   selgen-synth --groups Basic,Bmi --output rules.dat
//   selgen-synth --goals andn,blsr --total --width 16 --output bmi.dat
//   selgen-synth --groups Flags --merge-into rules.dat
//
//===----------------------------------------------------------------------===//

#include "pattern/ParallelBuilder.h"
#include "support/CommandLine.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstdio>
#include <fstream>
#include <memory>

using namespace selgen;

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {
      "groups",     "goals",    "width",    "budget",     "total",
      "threads",    "output",   "merge-into", "max-size", "cache-dir",
      "no-cache",   "stats-json", "no-prescreen", "corpus-size", "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help")) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n",
                 CommandLine::usage("selgen-synth", Flags).c_str());
    std::fprintf(stderr,
                 "  --groups   comma list of Basic,LoadStore,Unary,Binary,"
                 "Flags,Bmi (default Basic)\n"
                 "  --goals    comma list of goal names (overrides groups)\n"
                 "  --width    data width in bits (default 8)\n"
                 "  --budget   per-goal budget in seconds (default 10)\n"
                 "  --total    require total patterns\n"
                 "  --threads  worker threads (default hardware)\n"
                 "  --max-size override the iterative-deepening cap\n"
                 "  --output   rule library file (default rules.dat)\n"
                 "  --merge-into  merge results into an existing library\n"
                 "  --cache-dir   persistent synthesis cache directory\n"
                 "                (default $SELGEN_CACHE_DIR or "
                 "~/.cache/selgen)\n"
                 "  --no-cache    disable the persistent synthesis cache\n"
                 "  --stats-json  write counters and per-goal telemetry "
                 "to a JSON file\n"
                 "  --no-prescreen  disable the concrete counterexample "
                 "pre-screen (every candidate goes straight to the "
                 "verifier)\n"
                 "  --corpus-size   per-goal counterexample corpus capacity "
                 "(default 512; LRU-evicted beyond that)\n");
    return Cli.hasFlag("help") ? 0 : 1;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  GoalLibrary All = GoalLibrary::build(Width, GoalLibrary::allGroups());

  GoalLibrary Selected;
  std::string GoalsOption = Cli.stringOption("goals", "");
  if (!GoalsOption.empty()) {
    Selected = GoalLibrary::subset(std::move(All),
                                   splitString(GoalsOption, ','));
  } else {
    std::vector<std::string> Names;
    for (const std::string &Group :
         splitString(Cli.stringOption("groups", "Basic"), ','))
      for (const GoalInstruction *Goal : All.group(Group))
        Names.push_back(Goal->Name);
    if (Names.empty()) {
      std::fprintf(stderr, "error: no goals selected\n");
      return 1;
    }
    Selected = GoalLibrary::subset(std::move(All), Names);
  }

  SynthesisOptions Options;
  Options.Width = Width;
  Options.FindAllMinimal = true;
  Options.RequireTotalPatterns = Cli.hasFlag("total");
  Options.TimeBudgetSeconds = Cli.doubleOption("budget", 10.0);
  Options.QueryTimeoutMs = 30000;
  Options.UsePrescreen = !Cli.hasFlag("no-prescreen");
  if (int64_t CorpusSize = Cli.intOption("corpus-size", 0); CorpusSize > 0)
    Options.CorpusCapacity = static_cast<unsigned>(CorpusSize);
  if (int64_t MaxSize = Cli.intOption("max-size", 0); MaxSize > 0)
    for (const GoalInstruction &Goal : Selected.goals())
      const_cast<GoalInstruction &>(Goal).MaxPatternSize =
          static_cast<unsigned>(MaxSize);

  ParallelBuildOptions Build;
  Build.NumThreads = static_cast<unsigned>(Cli.intOption("threads", 0));

  std::unique_ptr<SynthesisCache> Cache;
  if (!Cli.hasFlag("no-cache")) {
    std::string CacheDir =
        Cli.stringOption("cache-dir", SynthesisCache::defaultDirectory());
    Cache = std::make_unique<SynthesisCache>(CacheDir);
    if (Cache->usable())
      Build.Cache = Cache.get();
    else
      std::fprintf(stderr, "warning: cache directory %s unusable, "
                           "continuing without cache\n",
                   CacheDir.c_str());
  }

  std::printf("synthesizing %zu goals at %u bit (%.0fs budget, %s)\n",
              Selected.goals().size(), Width, Options.TimeBudgetSeconds,
              Options.RequireTotalPatterns ? "total patterns"
                                           : "paper partial semantics");
  Timer Clock;
  LibraryBuildReport Report;
  PatternDatabase Database =
      synthesizeRuleLibraryParallel(Selected, Options, Build, &Report);

  for (const GroupReport &Group : Report.Groups)
    std::printf("  %-10s %3u goals  %4zu patterns  max size %u  %s"
                "  (%u capped)\n",
                Group.Group.c_str(), Group.Goals, Group.Patterns,
                Group.MaxPatternSize,
                formatDuration(Group.Seconds).c_str(),
                Group.IncompleteGoals);
  if (Build.Cache)
    std::printf("  cache: %u hits, %u misses (%s)\n", Report.CacheHits,
                Report.CacheMisses, Build.Cache->directory().c_str());

  std::string StatsPath = Cli.stringOption("stats-json", "");
  if (!StatsPath.empty()) {
    Statistics::get().add("driver.wall_ms",
                          static_cast<int64_t>(Clock.elapsedSeconds() * 1e3));
    if (Statistics::get().writeJsonFile(StatsPath))
      std::printf("wrote stats to %s\n", StatsPath.c_str());
    else
      std::fprintf(stderr, "warning: could not write %s\n", StatsPath.c_str());
  }

  std::string MergeTarget = Cli.stringOption("merge-into", "");
  if (!MergeTarget.empty()) {
    std::ifstream Probe(MergeTarget);
    PatternDatabase Existing =
        Probe.good() ? PatternDatabase::loadFromFile(MergeTarget)
                     : PatternDatabase();
    size_t Before = Existing.size();
    Existing.merge(std::move(Database));
    Existing.saveToFile(MergeTarget);
    std::printf("merged into %s: %zu -> %zu rules (%s total)\n",
                MergeTarget.c_str(), Before, Existing.size(),
                formatDuration(Clock.elapsedSeconds()).c_str());
    return 0;
  }

  std::string Output = Cli.stringOption("output", "rules.dat");
  Database.saveToFile(Output);
  std::printf("wrote %zu rules to %s in %s\n", Database.size(),
              Output.c_str(), formatDuration(Clock.elapsedSeconds()).c_str());
  return 0;
}
