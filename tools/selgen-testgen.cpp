//===- selgen-testgen.cpp - Emit C test programs from a rule library ------------===//
//
// Part of the selgen project (CGO'18 instruction-selection synthesis
// reproduction).
//
// The Section 5.7 test-case generator as a tool (the artifact's
// run-tests.sh front half): one self-contained C translation unit per
// rule, plus an index file, ready to be fed to any C compiler whose
// pattern support you want to probe.
//
//   selgen-testgen --library rules.dat --output-dir tests-out --limit 50
//
//===----------------------------------------------------------------------===//

#include "pattern/PatternDatabase.h"
#include "support/CommandLine.h"
#include "testgen/TestCaseGenerator.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace selgen;

int main(int argc, char **argv) {
  const std::vector<std::string> Flags = {"library", "output-dir", "width",
                                          "limit", "help"};
  CommandLine Cli(argc, argv, Flags);
  if (!Cli.errors().empty() || Cli.hasFlag("help")) {
    for (const std::string &Error : Cli.errors())
      std::fprintf(stderr, "%s\n", Error.c_str());
    std::fprintf(stderr, "%s\n",
                 CommandLine::usage("selgen-testgen", Flags).c_str());
    return Cli.hasFlag("help") ? 0 : 1;
  }

  unsigned Width = static_cast<unsigned>(Cli.intOption("width", 8));
  std::string LibraryPath = Cli.stringOption("library", "rules.dat");
  std::string OutputDir = Cli.stringOption("output-dir", "selgen-tests");
  size_t Limit =
      static_cast<size_t>(Cli.intOption("limit", 1u << 30));

  PatternDatabase Database = PatternDatabase::loadFromFile(LibraryPath);
  std::filesystem::create_directories(OutputDir);

  std::ofstream Indexfile(OutputDir + "/index.txt");
  size_t Count = 0;
  for (const Rule &R : Database.rules()) {
    if (Count >= Limit)
      break;
    std::string Name = "test_" + std::to_string(Count);
    std::string Path = OutputDir + "/" + Name + ".c";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
      return 1;
    }
    Out << emitCTestProgram(R, Width, Name);
    Indexfile << Name << ".c\t" << R.GoalName << "\n";
    ++Count;
  }
  std::printf("wrote %zu C test programs to %s (index.txt lists the goal "
              "per test)\n",
              Count, OutputDir.c_str());
  return 0;
}
